//! End-to-end router tests over real sockets: an external-source fleet
//! fronting two in-process `orex-server` instances, each serving the
//! same two named datasets from a registry. Covers query routing and
//! cache affinity, session stickiness through encoded ids, fleet-wide
//! aggregation of /metrics, /logs, and /debug/status, unknown-dataset
//! 404 passthrough, worker-loss degradation, and clean drain.

use orex_router::{Fleet, Router, RouterConfig, WorkerSource};
use orex_server::{DatasetSpec, HttpClient, Server, ServerConfig, SystemRegistry};
use serde_json::Value;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The tracer ring and logger are process-global; tests serialize so
/// one fleet's records can't be absorbed by another test's workers.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

struct TestWorker {
    addr: String,
    shutdown: orex_server::ShutdownHandle,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

fn spawn_worker() -> TestWorker {
    let specs = vec![
        DatasetSpec::parse("dblp=dblp-top:0.02").expect("spec"),
        DatasetSpec::parse("bio=ds7-cancer:0.02").expect("spec"),
    ];
    let registry = SystemRegistry::new(specs, 64, false).expect("registry");
    let server = Server::bind_registry(
        registry,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind worker");
    let addr = server.local_addr().expect("addr").to_string();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.run());
    TestWorker {
        addr,
        shutdown,
        thread: Some(thread),
    }
}

fn wait_until(deadline: Duration, mut ready: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if ready() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    ready()
}

fn json_body(response: &orex_server::ClientResponse) -> Value {
    serde_json::from_str(response.body_str().expect("utf8 body")).expect("json body")
}

fn session_of(doc: &Value) -> u64 {
    doc.get("session")
        .and_then(Value::as_u64)
        .expect("session id")
}

#[test]
fn router_fronts_a_two_worker_fleet_end_to_end() {
    let _guard = serial();
    let workers = [spawn_worker(), spawn_worker()];
    let fleet = Fleet::start(
        WorkerSource::External {
            addrs: workers.iter().map(|w| w.addr.clone()).collect(),
        },
        Duration::from_millis(50),
    )
    .expect("fleet");
    let router = Router::bind(
        Arc::clone(&fleet),
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    let addr = router.local_addr().expect("addr").to_string();
    let handle = router.shutdown_handle();
    let router_thread = std::thread::spawn(move || router.run());
    let client = HttpClient::new(addr.clone());

    // Workers start ejected; the health loop admits them as their first
    // probes pass, and router readiness follows the fleet's.
    assert!(
        wait_until(Duration::from_secs(10), || fleet.healthy_count() == 2),
        "both workers should pass health checks"
    );
    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    // The datasets listing proxies to a worker's registry.
    let datasets = client.get("/datasets").expect("datasets");
    assert_eq!(datasets.status, 200);
    let listing = json_body(&datasets);
    let names: Vec<&str> = listing
        .get("datasets")
        .and_then(Value::as_array)
        .into_iter()
        .flatten()
        .filter_map(|d| d.get("name").and_then(Value::as_str))
        .collect();
    assert!(
        names.contains(&"dblp") && names.contains(&"bio"),
        "{listing:?}"
    );

    // Queries route by (dataset, query) hash; the session id encodes the
    // serving worker, and repeats stick to the same worker's cache.
    let keyword = orex_datagen::Preset::DblpTop
        .generate(0.02)
        .suggested_keywords
        .first()
        .cloned()
        .expect("keyword");
    let body = format!("{{\"query\": \"{keyword}\", \"k\": 5, \"dataset\": \"dblp\"}}");
    let first = client.post("/query", &body).expect("query");
    assert_eq!(first.status, 200, "{:?}", first.body_str());
    let payload = json_body(&first);
    let session = payload
        .get("session")
        .and_then(Value::as_u64)
        .expect("session id");
    let owner = (session % 2) as usize;
    assert_eq!(payload.get("dataset").and_then(Value::as_str), Some("dblp"));
    let node = payload
        .get("results")
        .and_then(Value::as_array)
        .and_then(|r| r.first())
        .and_then(|r| r.get("node"))
        .and_then(Value::as_u64)
        .expect("top result");

    let second = client.post("/query", &body).expect("repeat query");
    assert_eq!(second.status, 200);
    let second_owner = (session_of(&json_body(&second)) % 2) as usize;
    assert_eq!(
        second_owner, owner,
        "identical queries must stick to one worker's warm cache"
    );

    // Session-sticky endpoints decode the worker from the id and
    // restore the global id in responses.
    let explain = client
        .get(&format!("/explain/{session}/{node}"))
        .expect("explain");
    assert_eq!(explain.status, 200, "{:?}", explain.body_str());
    assert_eq!(session_of(&json_body(&explain)), session);

    let feedback = client
        .post(
            &format!("/feedback/{session}"),
            &format!("{{\"objects\": [{node}], \"k\": 5}}"),
        )
        .expect("feedback");
    assert_eq!(feedback.status, 200, "{:?}", feedback.body_str());
    assert_eq!(session_of(&json_body(&feedback)), session);

    // Unknown datasets pass the worker's typed 404 through unchanged.
    let unknown = client
        .post("/query", "{\"query\": \"x\", \"dataset\": \"nope\"}")
        .expect("unknown dataset");
    assert_eq!(unknown.status, 404);
    assert!(
        json_body(&unknown)
            .get("error")
            .and_then(Value::as_str)
            .is_some_and(|e| e.contains("unknown dataset")),
        "{:?}",
        unknown.body_str()
    );

    // Bad session ids are rejected at the router, not forwarded.
    let bad_sid = client.get("/explain/banana/3").expect("bad sid");
    assert_eq!(bad_sid.status, 400);

    // /metrics aggregates: router series plus worker series labelled
    // worker="i".
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str().expect("utf8 metrics").to_string();
    assert!(text.contains("orex_router_requests"), "router's own series");
    assert!(text.contains("worker=\"0\""), "worker 0 series labelled");
    assert!(text.contains("worker=\"1\""), "worker 1 series labelled");

    // /logs stamps every record with its worker index.
    let logs = client.get("/logs?level=info").expect("logs");
    assert_eq!(logs.status, 200);
    let log_text = logs.body_str().expect("utf8 logs");
    assert!(
        log_text
            .lines()
            .filter(|l| !l.is_empty())
            .all(|l| l.starts_with("{\"worker\":")),
        "every aggregated record carries a worker field"
    );
    // Worker 400s (parameter validation) pass through.
    let bad_logs = client.get("/logs?level=nope").expect("bad logs");
    assert_eq!(bad_logs.status, 400);

    // /debug/status nests per-worker docs under a router summary.
    let status = client.get("/debug/status?format=json").expect("status");
    assert_eq!(status.status, 200);
    let doc = json_body(&status);
    let router_doc = doc.get("router").expect("router summary");
    assert_eq!(router_doc.get("workers").and_then(Value::as_u64), Some(2));
    assert_eq!(router_doc.get("healthy").and_then(Value::as_u64), Some(2));
    let rows = doc
        .get("workers")
        .and_then(Value::as_array)
        .expect("worker rows");
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert_eq!(row.get("healthy").and_then(Value::as_bool), Some(true));
        assert!(
            row.get("status").and_then(Value::as_object).is_some(),
            "healthy workers inline their own status doc"
        );
    }

    // Kill the worker that owns the query. The fleet ejects it, the
    // query re-routes to the survivor, and the dead worker's sessions
    // degrade to 503 (the session table died with the process).
    workers[owner].shutdown.shutdown();
    assert!(
        wait_until(Duration::from_secs(10), || fleet.healthy_count() == 1),
        "the killed worker should be ejected"
    );
    let survivor = 1 - owner;
    let rerouted = client.post("/query", &body).expect("rerouted query");
    assert_eq!(rerouted.status, 200, "{:?}", rerouted.body_str());
    let rerouted_owner = (session_of(&json_body(&rerouted)) % 2) as usize;
    assert_eq!(
        rerouted_owner, survivor,
        "query must fail over to the survivor"
    );

    let lost = client
        .get(&format!("/explain/{session}/{node}"))
        .expect("lost session");
    assert!(
        lost.status == 503 || lost.status == 502,
        "a dead worker's session degrades, got {}",
        lost.status
    );

    // Status reflects the degraded fleet.
    let degraded = json_body(&client.get("/debug/status?format=json").expect("status"));
    assert_eq!(
        degraded
            .get("router")
            .and_then(|r| r.get("healthy"))
            .and_then(Value::as_u64),
        Some(1)
    );

    // Clean drain: router stops accepting, open connections finish, the
    // fleet (external here) is released.
    handle.shutdown();
    router_thread
        .join()
        .expect("router thread")
        .expect("clean router drain");

    // Stop the surviving in-process servers.
    for worker in &workers {
        worker.shutdown.shutdown();
    }
    for mut worker in workers {
        if let Some(thread) = worker.thread.take() {
            let _ = thread.join();
        }
    }
}

#[test]
fn router_stitches_one_trace_across_its_own_and_worker_spans() {
    use orex_telemetry::{SpanId, TraceContext, TraceId};
    if !orex_telemetry::tracer().is_enabled() {
        return;
    }
    let _guard = serial();
    let workers = [spawn_worker(), spawn_worker()];
    let fleet = Fleet::start(
        WorkerSource::External {
            addrs: workers.iter().map(|w| w.addr.clone()).collect(),
        },
        Duration::from_millis(50),
    )
    .expect("fleet");
    let router = Router::bind(
        Arc::clone(&fleet),
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    let addr = router.local_addr().expect("addr").to_string();
    let handle = router.shutdown_handle();
    let router_thread = std::thread::spawn(move || router.run());
    let client = HttpClient::new(addr.clone());
    assert!(
        wait_until(Duration::from_secs(10), || fleet.healthy_count() == 2),
        "both workers should pass health checks"
    );

    // One query, one caller-minted sampled trace context: the router
    // adopts it, its proxy hop re-injects it, and the worker joins it.
    let keyword = orex_datagen::Preset::DblpTop
        .generate(0.02)
        .suggested_keywords
        .first()
        .cloned()
        .expect("keyword");
    let context = TraceContext {
        trace: TraceId(0x000F_1EE7_0001),
        parent: SpanId(42),
        flags: TraceContext::SAMPLED,
    };
    let trace_id = context.trace.0;
    let header_value = context.header_value();
    let body = format!("{{\"query\": \"{keyword}\", \"k\": 5, \"dataset\": \"dblp\"}}");
    let reply = client
        .request_with_headers(
            "POST",
            "/query",
            &[(TraceContext::HEADER, &header_value)],
            Some(body.as_bytes()),
        )
        .expect("traced query");
    assert_eq!(reply.status, 200, "{:?}", reply.body_str());
    assert_eq!(
        json_body(&reply).get("trace").and_then(Value::as_u64),
        Some(trace_id),
        "one id from ingress to worker and back"
    );

    // The stitched export puts the router and the serving worker in
    // separate labelled process lanes, one trace across both.
    let stitched = client
        .get(&format!("/trace/{trace_id}"))
        .expect("stitched trace");
    assert_eq!(stitched.status, 200, "{:?}", stitched.body_str());
    let doc = json_body(&stitched);
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents");
    let lanes: Vec<(u64, &str)> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
        .map(|e| {
            (
                e.get("pid").and_then(Value::as_u64).expect("pid"),
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .expect("lane label"),
            )
        })
        .collect();
    assert!(
        lanes
            .iter()
            .any(|(pid, l)| *pid == 1 && l.starts_with("router")),
        "router lane present: {lanes:?}"
    );
    assert!(
        lanes
            .iter()
            .any(|(pid, l)| *pid >= 2 && l.starts_with("worker-")),
        "worker lane present: {lanes:?}"
    );
    let span_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Value::as_str))
        .collect();
    for expected in ["router.request", "router.proxy", "server.request"] {
        assert!(
            span_names.contains(&expected),
            "missing {expected}: {span_names:?}"
        );
    }
    // The proxy hop records where and why it forwarded.
    let proxy_span = events
        .iter()
        .find(|e| e.get("name").and_then(Value::as_str) == Some("router.proxy"))
        .unwrap();
    let args = proxy_span.get("args").expect("proxy span args");
    assert!(args.get("worker").is_some(), "{args:?}");
    assert_eq!(args.get("attempt").and_then(Value::as_u64), Some(1));
    assert_eq!(args.get("reason").and_then(Value::as_str), Some("route"));

    // Fleet-wide logs filtered to the shared id: every surviving record
    // carries it, and the worker's access record is among them.
    let logs = client
        .get(&format!("/logs?trace={trace_id}"))
        .expect("trace-filtered logs");
    assert_eq!(logs.status, 200);
    let records: Vec<Value> = logs
        .body_str()
        .expect("utf8 logs")
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| serde_json::from_str(l).expect("json record"))
        .collect();
    assert!(!records.is_empty(), "the traced request left log records");
    for v in &records {
        assert_eq!(
            v.get("trace").and_then(Value::as_u64),
            Some(trace_id),
            "{v:?}"
        );
    }
    assert!(
        records
            .iter()
            .any(|v| v.get("target").and_then(Value::as_str) == Some("server.access")),
        "worker access record joins the trace: {records:?}"
    );

    // Unknown ids 404, malformed ids 400.
    let missing = client.get("/trace/999999999999").expect("missing trace");
    assert_eq!(missing.status, 404);
    let bad = client.get("/trace/banana").expect("bad trace id");
    assert_eq!(bad.status, 400);

    handle.shutdown();
    router_thread
        .join()
        .expect("router thread")
        .expect("clean router drain");
    for worker in &workers {
        worker.shutdown.shutdown();
    }
    for mut worker in workers {
        if let Some(thread) = worker.thread.take() {
            let _ = thread.join();
        }
    }
}
