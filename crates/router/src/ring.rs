//! A consistent-hash ring over worker indices.
//!
//! Each worker owns `VNODES` pseudo-random points on a `u64` ring; a
//! key routes to the owner of the first point at or clockwise-after the
//! key's hash. Ejecting a worker removes only *its* points, so only the
//! keys it owned remap (≈ 1/N of the keyspace), and readmitting it
//! restores exactly the original assignment — the property the fleet
//! relies on to keep per-worker result caches warm across the loss and
//! recovery of a single worker.

/// Virtual nodes per worker: enough for the ±the usual √(vnodes)
/// balance bound to keep the worst worker under ~2× the mean share at
/// small fleet sizes.
pub const VNODES: usize = 64;

/// FNV-1a over `bytes` — tiny, dependency-free, and stable across
/// processes (routing decisions must agree between router restarts).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64 finalizer over an FNV-1a hash. Raw FNV-1a of short,
/// near-identical strings (sequential vnode labels, templated query
/// keys) clusters on the ring badly enough to starve whole workers;
/// this avalanche step restores uniformity while staying a pure,
/// process-stable function.
fn spread(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The ring's point/key hash: FNV-1a finalized by SplitMix64.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    spread(fnv1a(bytes))
}

/// Consistent-hash ring; see the module docs.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted `(point, worker)` pairs.
    points: Vec<(u64, usize)>,
    /// `ejected[w]` removes worker `w`'s points from routing without
    /// forgetting them (readmission is exact).
    ejected: Vec<bool>,
}

impl HashRing {
    /// A ring over `workers` indices (`0..workers`), all admitted.
    pub fn new(workers: usize) -> Self {
        let mut points = Vec::with_capacity(workers * VNODES);
        for worker in 0..workers {
            for vnode in 0..VNODES {
                let label = format!("worker-{worker}-vnode-{vnode}");
                points.push((ring_hash(label.as_bytes()), worker));
            }
        }
        points.sort_unstable();
        Self {
            points,
            ejected: vec![false; workers],
        }
    }

    /// Number of workers the ring was built over.
    pub fn workers(&self) -> usize {
        self.ejected.len()
    }

    /// Number of currently admitted workers.
    pub fn admitted(&self) -> usize {
        self.ejected.iter().filter(|e| !**e).count()
    }

    /// Removes `worker` from routing; its keys fall to their clockwise
    /// successors. Idempotent; out-of-range indices are ignored.
    pub fn eject(&mut self, worker: usize) {
        if let Some(slot) = self.ejected.get_mut(worker) {
            *slot = true;
        }
    }

    /// Restores `worker`; the exact pre-ejection assignment returns.
    pub fn readmit(&mut self, worker: usize) {
        if let Some(slot) = self.ejected.get_mut(worker) {
            *slot = false;
        }
    }

    /// True when `worker` is currently routed to.
    pub fn is_admitted(&self, worker: usize) -> bool {
        !self.ejected.get(worker).copied().unwrap_or(true)
    }

    /// The admitted worker owning `key`, or `None` when every worker is
    /// ejected.
    pub fn route(&self, key: &[u8]) -> Option<usize> {
        self.route_excluding(key, usize::MAX)
    }

    /// Routes `key` as if `skip` were also ejected — the retry path: a
    /// request that failed on its owner goes to the next distinct
    /// admitted worker clockwise.
    pub fn route_excluding(&self, key: &[u8], skip: usize) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = ring_hash(key);
        let start = self.points.partition_point(|(p, _)| *p < hash);
        // One full clockwise lap from the key's position.
        for i in 0..self.points.len() {
            let (_, worker) = self.points[(start + i) % self.points.len()];
            if worker != skip && self.is_admitted(worker) {
                return Some(worker);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_are_deterministic_and_in_range() {
        let ring = HashRing::new(3);
        for i in 0..100 {
            let key = format!("key-{i}");
            let a = ring.route(key.as_bytes());
            let b = ring.route(key.as_bytes());
            assert_eq!(a, b);
            assert!(a.is_some_and(|w| w < 3));
        }
    }

    #[test]
    fn single_worker_owns_everything() {
        let ring = HashRing::new(1);
        for i in 0..50 {
            assert_eq!(ring.route(format!("k{i}").as_bytes()), Some(0));
        }
    }

    #[test]
    fn all_ejected_routes_nowhere() {
        let mut ring = HashRing::new(2);
        ring.eject(0);
        ring.eject(1);
        assert_eq!(ring.route(b"anything"), None);
        assert_eq!(ring.admitted(), 0);
        ring.readmit(1);
        assert_eq!(ring.route(b"anything"), Some(1));
    }

    #[test]
    fn route_excluding_avoids_the_owner() {
        let ring = HashRing::new(4);
        for i in 0..50 {
            let key = format!("k{i}");
            let owner = ring.route(key.as_bytes()).unwrap();
            let alt = ring.route_excluding(key.as_bytes(), owner).unwrap();
            assert_ne!(owner, alt, "retry target must be a different worker");
        }
    }

    #[test]
    fn out_of_range_eject_is_ignored() {
        let mut ring = HashRing::new(2);
        ring.eject(99);
        assert_eq!(ring.admitted(), 2);
    }
}
