//! Worker fleet supervision: spawn, health-check, eject/readmit,
//! restart-on-crash with capped backoff, and SIGTERM fan-out.
//!
//! Each worker is one `orex serve` process (or, in tests, an external
//! address) owning its own datasets, sessions, and caches — shared
//! nothing. A background health thread polls every worker's `/healthz`;
//! a worker that fails its check (or whose process exited) is marked
//! unhealthy and ejected from the routing ring, and a crashed spawned
//! process is relaunched with exponential backoff. When the check
//! passes again the worker is readmitted — the ring restores its exact
//! pre-ejection key ownership, so its caches stay useful.

use crate::ring::HashRing;
use orex_server::HttpClient;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Restart backoff: `BACKOFF_BASE << restarts`, capped at [`BACKOFF_CAP`].
const BACKOFF_BASE: Duration = Duration::from_millis(100);
/// Upper bound on the restart backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(5);
/// How long SIGTERM'd workers get to drain before SIGKILL.
const DRAIN_DEADLINE: Duration = Duration::from_secs(15);

/// Where the fleet's worker processes come from.
pub enum WorkerSource {
    /// The fleet spawns and supervises one process per worker:
    /// `argv[0] argv[1..] --addr 127.0.0.1:<base_port + index>`.
    Spawn {
        /// Command template; the fleet appends `--addr`.
        argv: Vec<String>,
        /// First worker's port; worker `i` listens on `base_port + i`.
        base_port: u16,
        /// Number of workers to spawn.
        workers: usize,
    },
    /// Already-running servers (in-process test fixtures): no process
    /// management, health checking and routing only.
    External {
        /// One `host:port` per worker.
        addrs: Vec<String>,
    },
}

/// One supervised worker.
pub struct Worker {
    /// Stable fleet index — also the session-id routing residue.
    pub index: usize,
    /// The worker's `host:port`.
    pub addr: String,
    /// Pooled keep-alive client for proxied traffic.
    pub client: HttpClient,
    /// Short-timeout client for health probes, so a wedged worker
    /// can't stall the health loop for a full proxy timeout.
    probe: HttpClient,
    healthy: AtomicBool,
    restarts: AtomicU64,
    child: Mutex<Option<Child>>,
    /// Earliest instant the next relaunch may happen.
    backoff_until: Mutex<Option<Instant>>,
    /// Estimated offset translating this worker's tracer clock onto the
    /// router's (`router_ns = worker_ns + offset`), refreshed by each
    /// passing health probe from its round trip and the worker's
    /// `X-Orex-Clock` header. Stitched fleet traces shift the worker's
    /// span timestamps by this.
    clock_offset_ns: AtomicI64,
}

impl Worker {
    /// True when the last health probe passed.
    pub fn is_healthy(&self) -> bool {
        // ORDERING: health state is advisory — a stale read just means
        // one request retries; Relaxed suffices.
        self.healthy.load(Ordering::Relaxed)
    }

    /// Times this worker's process was relaunched after a crash.
    pub fn restarts(&self) -> u64 {
        // ORDERING: statistics counter, no synchronization role.
        self.restarts.load(Ordering::Relaxed)
    }

    /// The latest worker-to-router clock-offset estimate, nanoseconds.
    pub fn clock_offset_ns(&self) -> i64 {
        // ORDERING: advisory estimate, no synchronization role.
        self.clock_offset_ns.load(Ordering::Relaxed)
    }
}

/// The supervised worker set plus the routing ring over it.
pub struct Fleet {
    workers: Vec<Arc<Worker>>,
    ring: Mutex<HashRing>,
    /// Restart template (`None` for external fleets).
    argv: Option<Vec<String>>,
    /// `(stopped, wake)`: the health loop waits on the condvar so
    /// shutdown interrupts its sleep immediately.
    stop: Arc<(Mutex<bool>, Condvar)>,
    health_thread: Mutex<Option<JoinHandle<()>>>,
}

impl Fleet {
    /// Builds the fleet — spawning worker processes when `source` is
    /// [`WorkerSource::Spawn`] — and starts the health loop with the
    /// given probe interval. Workers start *unhealthy* and are admitted
    /// by their first passing probe, so the router's `/healthz` flips
    /// ready only once at least one worker actually serves.
    pub fn start(source: WorkerSource, health_interval: Duration) -> std::io::Result<Arc<Self>> {
        let (addrs, argv) = match source {
            WorkerSource::Spawn {
                argv,
                base_port,
                workers,
            } => {
                if workers == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "a fleet needs at least one worker",
                    ));
                }
                let addrs: Vec<String> = (0..workers)
                    .map(|i| format!("127.0.0.1:{}", base_port + i as u16))
                    .collect();
                (addrs, Some(argv))
            }
            WorkerSource::External { addrs } => {
                if addrs.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "a fleet needs at least one worker",
                    ));
                }
                (addrs, None)
            }
        };

        let workers: Vec<Arc<Worker>> = addrs
            .iter()
            .enumerate()
            .map(|(index, addr)| {
                Arc::new(Worker {
                    index,
                    addr: addr.clone(),
                    client: HttpClient::with_timeouts(
                        addr.clone(),
                        Duration::from_secs(1),
                        Duration::from_secs(30),
                    ),
                    probe: HttpClient::with_timeouts(
                        addr.clone(),
                        Duration::from_millis(250),
                        Duration::from_secs(2),
                    ),
                    healthy: AtomicBool::new(false),
                    restarts: AtomicU64::new(0),
                    child: Mutex::new(None),
                    backoff_until: Mutex::new(None),
                    clock_offset_ns: AtomicI64::new(0),
                })
            })
            .collect();

        let mut ring = HashRing::new(workers.len());
        for w in &workers {
            ring.eject(w.index); // admitted by the first passing probe
        }

        let fleet = Arc::new(Self {
            workers,
            ring: Mutex::new(ring),
            argv,
            stop: Arc::new((Mutex::new(false), Condvar::new())),
            health_thread: Mutex::new(None),
        });

        if fleet.argv.is_some() {
            for worker in &fleet.workers {
                fleet.launch(worker)?;
            }
        }

        let loop_fleet = Arc::clone(&fleet);
        let handle = std::thread::Builder::new()
            .name("orex-router-health".into())
            .spawn(move || loop_fleet.health_loop(health_interval))?;
        *lock(&fleet.health_thread) = Some(handle);
        Ok(fleet)
    }

    /// The workers, fleet-indexed.
    pub fn workers(&self) -> &[Arc<Worker>] {
        &self.workers
    }

    /// Number of workers (healthy or not).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Always false — construction rejects empty fleets.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Number of currently healthy workers.
    pub fn healthy_count(&self) -> usize {
        self.workers.iter().filter(|w| w.is_healthy()).count()
    }

    /// Routes `key` on the ring; `None` when no worker is healthy.
    pub fn route(&self, key: &[u8]) -> Option<usize> {
        lock(&self.ring).route(key)
    }

    /// Routes `key` avoiding `skip` — the retry path.
    pub fn route_excluding(&self, key: &[u8], skip: usize) -> Option<usize> {
        lock(&self.ring).route_excluding(key, skip)
    }

    /// One health pass over every worker; returns when the stop flag
    /// flips. Crashed spawned workers are relaunched past their backoff.
    fn health_loop(&self, interval: Duration) {
        loop {
            for worker in &self.workers {
                self.reap_and_restart(worker);
                self.probe(worker);
            }
            let (stopped, wake) = &*self.stop;
            let guard = lock(stopped);
            // The wait doubles as the inter-pass sleep; a shutdown
            // notification ends it (and the loop) immediately.
            let (guard, _) = wake
                .wait_timeout(guard, interval)
                .unwrap_or_else(PoisonError::into_inner);
            if *guard {
                return;
            }
        }
    }

    /// If `worker`'s process exited, record the crash and relaunch it
    /// once the backoff window has passed.
    fn reap_and_restart(&self, worker: &Arc<Worker>) {
        if self.argv.is_none() {
            return;
        }
        let exited = {
            let mut child = lock(&worker.child);
            match child.as_mut().map(Child::try_wait) {
                Some(Ok(Some(_status))) => {
                    *child = None;
                    true
                }
                _ => false,
            }
        };
        if exited {
            self.mark_unhealthy(worker, "process exited");
            // ORDERING: restart count is a statistic; Relaxed suffices.
            let restarts = worker.restarts.fetch_add(1, Ordering::Relaxed);
            let backoff = BACKOFF_CAP.min(BACKOFF_BASE * 2u32.saturating_pow(restarts as u32));
            *lock(&worker.backoff_until) = Some(Instant::now() + backoff);
            orex_telemetry::global()
                .counter("router.worker_restarts")
                .incr();
        }
        let pending = *lock(&worker.backoff_until);
        let due = lock(&worker.child).is_none() && pending.is_some_and(|at| Instant::now() >= at);
        if due {
            *lock(&worker.backoff_until) = None;
            if let Err(e) = self.launch(worker) {
                orex_telemetry::logger()
                    .error(
                        "router.fleet",
                        format!("relaunching worker {}: {e}", worker.index),
                    )
                    .emit();
                // Try again next pass.
                *lock(&worker.backoff_until) = Some(Instant::now() + BACKOFF_BASE);
            }
        }
    }

    /// Spawns `worker`'s process from the argv template.
    fn launch(&self, worker: &Arc<Worker>) -> std::io::Result<()> {
        let Some(argv) = &self.argv else {
            return Ok(());
        };
        let Some((program, rest)) = argv.split_first() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "empty worker command",
            ));
        };
        let child = Command::new(program)
            .args(rest)
            .args(["--addr", &worker.addr])
            .stdin(Stdio::null())
            .spawn()?;
        orex_telemetry::logger()
            .info(
                "router.fleet",
                format!(
                    "worker {} spawned on {} (pid {})",
                    worker.index,
                    worker.addr,
                    child.id()
                ),
            )
            .field_u64("worker", worker.index as u64)
            .emit();
        *lock(&worker.child) = Some(child);
        Ok(())
    }

    /// One `/healthz` probe; flips health state and the ring membership
    /// on transitions, and refreshes the worker's clock-offset estimate
    /// from the probe round trip: the worker's `X-Orex-Clock` reading
    /// is assumed to have happened at the round trip's midpoint, so
    /// `offset = (t0 + t1) / 2 − worker_clock` — the classic
    /// NTP-style estimate, good to half the round trip (microseconds on
    /// loopback, plenty for lane alignment in a stitched trace).
    fn probe(&self, worker: &Arc<Worker>) {
        let tracer = orex_telemetry::tracer();
        let t0 = tracer.now_ns();
        let reply = worker.probe.get("/healthz");
        let t1 = tracer.now_ns();
        let ok = matches!(&reply, Ok(r) if r.status == 200);
        if let Ok(r) = &reply {
            if let Some(clock) = r.header("x-orex-clock").and_then(|v| v.parse::<u64>().ok()) {
                let midpoint = (t0 / 2) + (t1 / 2);
                let offset = midpoint as i64 - clock as i64;
                // ORDERING: advisory estimate read by trace stitching;
                // no synchronization role.
                worker.clock_offset_ns.store(offset, Ordering::Relaxed);
            }
        }
        if ok {
            // ORDERING: swap is the transition edge; health state is
            // advisory so Relaxed suffices (the ring lock orders the
            // membership change itself).
            if !worker.healthy.swap(true, Ordering::Relaxed) {
                lock(&self.ring).readmit(worker.index);
                // The previous incarnation's pooled connections are
                // dead; drop them so proxied requests start clean.
                worker.client.clear_idle();
                orex_telemetry::global()
                    .counter("router.worker_readmissions")
                    .incr();
                orex_telemetry::logger()
                    .info(
                        "router.fleet",
                        format!("worker {} healthy; readmitted to the ring", worker.index),
                    )
                    .field_u64("worker", worker.index as u64)
                    .emit();
            }
        } else {
            // ORDERING: advisory health flag; the ring lock orders the
            // membership change itself. Relaxed suffices.
            let was_healthy = worker.healthy.swap(false, Ordering::Relaxed);
            if was_healthy {
                self.mark_unhealthy(worker, "health probe failed");
            }
        }
    }

    fn mark_unhealthy(&self, worker: &Arc<Worker>, why: &str) {
        // ORDERING: advisory flag; the ring lock orders membership.
        worker.healthy.store(false, Ordering::Relaxed);
        lock(&self.ring).eject(worker.index);
        worker.client.clear_idle();
        orex_telemetry::global()
            .counter("router.worker_ejections")
            .incr();
        orex_telemetry::logger()
            .warn(
                "router.fleet",
                format!("worker {} ejected: {why}", worker.index),
            )
            .field_u64("worker", worker.index as u64)
            .emit();
    }

    /// Stops the health loop, SIGTERMs every spawned worker so each
    /// drains its in-flight requests, and waits (bounded) for them to
    /// exit — SIGKILL only past the deadline.
    pub fn shutdown(&self) {
        {
            let (stopped, wake) = &*self.stop;
            *lock(stopped) = true;
            wake.notify_all();
        }
        if let Some(handle) = lock(&self.health_thread).take() {
            let _ = handle.join();
        }
        if self.argv.is_none() {
            return;
        }
        for worker in &self.workers {
            let child = lock(&worker.child);
            if let Some(child) = child.as_ref() {
                send_sigterm(child.id());
            }
        }
        let deadline = Instant::now() + DRAIN_DEADLINE;
        for worker in &self.workers {
            let mut child_slot = lock(&worker.child);
            let Some(mut child) = child_slot.take() else {
                continue;
            };
            loop {
                match child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() >= deadline => {
                        let _ = child.kill(); // SIGKILL: drain deadline blown
                        let _ = child.wait();
                        break;
                    }
                    Ok(None) => {
                        let (stopped, wake) = &*self.stop;
                        // Re-purpose the stop condvar as a sleeper: the
                        // flag is already true, so this is a plain
                        // bounded wait between exit polls.
                        let guard = lock(stopped);
                        let _ = wake
                            .wait_timeout(guard, Duration::from_millis(50))
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

/// SIGTERM (graceful drain) to `pid`. `Child::kill` sends SIGKILL,
/// which would drop in-flight requests — exactly what drain must not do.
fn send_sigterm(pid: u32) {
    #[cfg(unix)]
    {
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGTERM: i32 = 15;
        // SAFETY: kill(2) with a pid we spawned and still hold a
        // handle to; no memory is touched.
        unsafe {
            kill(pid as i32, SIGTERM);
        }
    }
    #[cfg(not(unix))]
    let _ = pid;
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}
