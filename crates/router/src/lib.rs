//! # orex-router — a shared-nothing router fleet for horizontal scale
//!
//! One process serves only as far as one heap and one socket backlog
//! carry it. This crate scales *out* instead: a router proxies the
//! public HTTP surface onto N independent `orex serve` worker
//! processes, each owning its own datasets, sessions, and caches —
//! shared nothing, so workers never coordinate and a crash takes down
//! 1/N of capacity, not the service.
//!
//! Three layers:
//!
//! - **Routing** ([`ring`]): a consistent-hash ring with virtual nodes
//!   maps `(dataset, query)` keys to workers, keeping repeat queries on
//!   warm result caches; ejecting a crashed worker remaps only its own
//!   ≈1/N key share. Session requests route by the worker index the
//!   router encodes into every session id it hands out.
//! - **Supervision** ([`fleet`]): spawn `--workers N` processes on
//!   `--base-port`..., health-probe them, eject/readmit from the ring,
//!   relaunch crashes with capped backoff, and fan SIGTERM out so
//!   drains cascade.
//! - **Proxy** ([`proxy`]): HTTP/1.1 keep-alive front end that forwards
//!   queries (retrying once on an alternate healthy worker when the
//!   owner is unreachable or saturated), and serves fleet-wide
//!   aggregated `/metrics`, `/logs`, and `/debug/status`.

#![warn(missing_docs)]

pub mod fleet;
pub mod proxy;
pub mod ring;

pub use fleet::{Fleet, Worker, WorkerSource};
pub use proxy::RouterContext;
pub use ring::HashRing;

use orex_server::http::{read_request, ParseError};
use orex_server::{signal_shutdown_requested, Response};
use std::io::{self, BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Read-timeout slice between requests on a kept-alive connection; the
/// loop wakes this often to observe the drain flag.
const CONN_POLL: Duration = Duration::from_millis(100);

/// Router front-end configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Public listen address.
    pub addr: String,
    /// Per-request I/O timeout on the client side.
    pub io_timeout: Duration,
    /// Close a kept-alive connection idle this long.
    pub keepalive_idle: Duration,
    /// Worker health-probe interval.
    pub health_interval: Duration,
    /// Live-connection cap; beyond it new connections get `503` +
    /// `Retry-After` instead of queueing unboundedly.
    pub max_connections: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7470".to_string(),
            io_timeout: Duration::from_secs(30),
            keepalive_idle: Duration::from_secs(5),
            health_interval: Duration::from_millis(250),
            max_connections: 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Signals a running [`Router`] to stop accepting and drain.
#[derive(Clone)]
pub struct RouterShutdown {
    stop: Arc<AtomicBool>,
}

impl RouterShutdown {
    /// Requests shutdown; [`Router::run`] drains and returns.
    pub fn shutdown(&self) {
        // ORDERING: Release pairs with the accept loop's Acquire load;
        // the flag is the only communicated state.
        self.stop.store(true, Ordering::Release);
    }
}

/// Tracks live connections so drain can wait for zero without joining
/// individual threads.
struct ConnGauge {
    live: Mutex<usize>,
    zero: Condvar,
}

impl ConnGauge {
    fn adjust(&self, delta: isize) {
        let mut live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        *live = live.saturating_add_signed(delta);
        if *live == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self, deadline: Instant) {
        let mut live = self.live.lock().unwrap_or_else(PoisonError::into_inner);
        while *live > 0 {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .zero
                .wait_timeout(live, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            live = guard;
        }
    }
}

/// A bound, not-yet-running router; call [`Router::run`] to serve.
pub struct Router {
    listener: TcpListener,
    fleet: Arc<Fleet>,
    config: RouterConfig,
    stop: Arc<AtomicBool>,
}

impl Router {
    /// Binds `config.addr` in front of `fleet`.
    pub fn bind(fleet: Arc<Fleet>, config: RouterConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            fleet,
            config,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops this router from another thread.
    pub fn shutdown_handle(&self) -> RouterShutdown {
        RouterShutdown {
            stop: Arc::clone(&self.stop),
        }
    }

    /// The fleet this router fronts.
    pub fn fleet(&self) -> &Arc<Fleet> {
        &self.fleet
    }

    /// Serves until shutdown is requested (via [`RouterShutdown`] or an
    /// installed signal handler), then drains: stop accepting, wait for
    /// open connections to finish, and cascade the shutdown to the
    /// fleet (SIGTERM to every spawned worker, bounded wait).
    pub fn run(self) -> io::Result<()> {
        let ctx = Arc::new(RouterContext::new(
            Arc::clone(&self.fleet),
            Instant::now(),
            self.local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| self.config.addr.clone()),
        ));
        let gauge = Arc::new(ConnGauge {
            live: Mutex::new(0),
            zero: Condvar::new(),
        });
        let draining = Arc::new(AtomicBool::new(false));

        // ORDERING: Acquire pairs with RouterShutdown's Release store.
        while !self.stop.load(Ordering::Acquire) && !signal_shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let over_cap = {
                        let live = gauge.live.lock().unwrap_or_else(PoisonError::into_inner);
                        *live >= self.config.max_connections
                    };
                    if over_cap {
                        refuse_overloaded(stream);
                        continue;
                    }
                    gauge.adjust(1);
                    let ctx = Arc::clone(&ctx);
                    let gauge2 = Arc::clone(&gauge);
                    let draining = Arc::clone(&draining);
                    let config = self.config.clone();
                    let spawned = std::thread::Builder::new()
                        .name("orex-router-conn".into())
                        .spawn(move || {
                            connection_loop(stream, &ctx, &config, &draining);
                            gauge2.adjust(-1);
                        });
                    if spawned.is_err() {
                        gauge.adjust(-1); // thread never ran; undo
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // orex::allow(ORX005): the listener is nonblocking
                    // so this accept loop must pace its own polling to
                    // keep observing the stop flags; 2ms bounds
                    // shutdown latency without burning a core.
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Drain: no new connections; open ones observe the flag within
        // one CONN_POLL and close after their in-flight response.
        // ORDERING: Release pairs with the connection loops' Acquire.
        draining.store(true, Ordering::Release);
        gauge.wait_zero(Instant::now() + Duration::from_secs(10));
        self.fleet.shutdown();
        orex_telemetry::global()
            .counter("router.clean_shutdowns")
            .incr();
        Ok(())
    }
}

/// Inline 503 for connections over the cap, written on the accept
/// thread; mirrors the worker server's overload behaviour.
fn refuse_overloaded(mut stream: TcpStream) {
    orex_telemetry::global()
        .counter("router.overload_503")
        .incr();
    let response = Response::error(503, "router at connection capacity, retry shortly")
        .with_header("Retry-After", "1");
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = response.write_to(&mut stream, false);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let mut sink = [0u8; 4096];
    for _ in 0..16 {
        match Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// One dedicated thread per client connection: serve keep-alive
/// requests until the client closes, the idle window lapses, a protocol
/// error occurs, or the router drains.
fn connection_loop(
    stream: TcpStream,
    ctx: &RouterContext,
    config: &RouterConfig,
    draining: &AtomicBool,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let _ = writer.set_write_timeout(Some(config.io_timeout));
    let _ = writer.set_read_timeout(Some(CONN_POLL));
    let mut served = 0u64;
    let mut waiting_since = Instant::now();
    loop {
        // ORDERING: Acquire pairs with the drain flag's Release store.
        if draining.load(Ordering::Acquire) {
            return;
        }
        match read_request(&mut reader, config.max_body_bytes) {
            Ok(request) => {
                let keep_alive = request.keep_alive();
                let response = proxy::handle(&request, ctx);
                if response.write_to(&mut writer, keep_alive).is_err() || !keep_alive {
                    return;
                }
                served += 1;
                waiting_since = Instant::now();
            }
            Err(ParseError::Idle) => {
                let budget = if served == 0 {
                    config.io_timeout
                } else {
                    config.keepalive_idle
                };
                if waiting_since.elapsed() >= budget {
                    if served == 0 {
                        let _ = Response::error(408, "timed out waiting for a request")
                            .write_to(&mut writer, false);
                    }
                    return;
                }
            }
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Malformed(why)) => {
                let _ = Response::error(400, why).write_to(&mut writer, false);
                return;
            }
            Err(ParseError::BodyTooLarge(limit)) => {
                let _ = Response::error(413, &format!("body exceeds {limit} bytes"))
                    .write_to(&mut writer, false);
                return;
            }
            Err(ParseError::Io(_)) => {
                let _ = Response::error(408, "request read failed").write_to(&mut writer, false);
                return;
            }
        }
    }
}
