//! Request routing, retry, and fleet-wide aggregation handlers.
//!
//! Queries route by consistent hash of `(dataset, query text)` so
//! repeats of the same query land on the same worker's result cache.
//! Session-scoped requests (`/explain`, `/feedback`) are *sticky*: the
//! router encodes the owning worker into the session id it hands out
//! (`global = local * W + worker`), so the worker is recoverable from
//! the id alone — no routing table to lose. Observability endpoints
//! aggregate across the fleet: `/metrics` re-labels every worker series
//! with `worker="i"`, `/logs` stamps each record with its worker, and
//! `/debug/status` nests per-worker status docs under a router summary.
//!
//! The router is also the fleet's tracing ingress edge: every request
//! runs under a `router.request` span (adopting an incoming
//! `X-Orex-Trace` context when the client sent one, else making the
//! sampling decision here), every proxied hop opens a child span and
//! injects its context so worker spans join the same trace, and
//! `GET /trace/<id>` stitches the router's own archive together with
//! every worker's into one per-process-lane Chrome export.

use crate::fleet::{Fleet, Worker};
use orex_server::{ClientResponse, Request, Response, TraceArchive};
use orex_telemetry::export::{parse_wire, to_chrome_trace_stitched, to_wire, ProcessLane};
use orex_telemetry::TraceContext;
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Traces retained in the router's own span archive.
const MAX_ROUTER_TRACES: usize = 256;
/// Promoted-trace snapshots retained for retro-stitching.
const MAX_RETRO_TRACES: usize = 64;

/// Shared state the connection threads handle requests against.
pub struct RouterContext {
    /// The supervised worker fleet.
    pub fleet: Arc<Fleet>,
    /// Router start time, for `/debug/status` uptime.
    pub started: Instant,
    /// The router's own bound address (shown in status).
    pub addr: String,
    /// The router's own completed spans, the router lane of a stitched
    /// fleet trace.
    pub traces: TraceArchive,
    /// Wire-format snapshots of fleet-promoted slow traces, fetched
    /// from the workers before their archives evict them.
    pub retro: RetroTraces,
}

impl RouterContext {
    /// Context for `fleet` with the trace archive and retro store ready.
    pub fn new(fleet: Arc<Fleet>, started: Instant, addr: String) -> Self {
        Self {
            fleet,
            started,
            addr,
            traces: TraceArchive::new(MAX_ROUTER_TRACES),
            retro: RetroTraces::new(MAX_RETRO_TRACES),
        }
    }
}

/// Bounded store of per-worker wire-format trace snapshots, keyed by
/// trace id — how a slow trace promoted on one worker survives long
/// enough for `GET /trace/<id>` to stitch its sibling spans after the
/// workers' own archives move on. Oldest trace evicted first.
pub struct RetroTraces {
    inner: Mutex<RetroInner>,
    max_traces: usize,
}

struct RetroInner {
    /// Trace ids in first-stored order, driving eviction.
    order: VecDeque<u64>,
    /// Per-trace `(worker index, wire text)` snapshots.
    traces: HashMap<u64, Vec<(usize, String)>>,
}

impl RetroTraces {
    /// A store retaining at most `max_traces` traces (minimum 1).
    pub fn new(max_traces: usize) -> Self {
        Self {
            inner: Mutex::new(RetroInner {
                order: VecDeque::new(),
                traces: HashMap::new(),
            }),
            max_traces: max_traces.max(1),
        }
    }

    /// Stores (or replaces) the snapshots of one trace.
    pub fn insert(&self, trace: u64, snapshots: Vec<(usize, String)>) {
        if snapshots.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.traces.insert(trace, snapshots).is_none() {
            inner.order.push_back(trace);
        }
        while inner.order.len() > self.max_traces {
            if let Some(victim) = inner.order.pop_front() {
                inner.traces.remove(&victim);
            }
        }
    }

    /// The stored `(worker, wire text)` snapshots of `trace`, if any.
    pub fn get(&self, trace: u64) -> Vec<(usize, String)> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .traces
            .get(&trace)
            .cloned()
            .unwrap_or_default()
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .traces
            .len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Dispatches one request to its handler. Every response is accounted
/// under `router.*` telemetry and one `router.access` log record.
///
/// Every request runs inside a `router.request` span: the fleet's
/// ingress root when the client sent no `X-Orex-Trace`, or a
/// remote-parent root continuing the client's trace (whose flags byte
/// then carries the client's sampling decision). The access log is
/// emitted inside the span so it carries the fleet-shared trace id, and
/// the `router.request_us` histogram exemplar points at the same trace.
pub fn handle(request: &Request, ctx: &RouterContext) -> Response {
    let telemetry = orex_telemetry::global();
    telemetry.counter("router.requests").incr();
    let start = Instant::now();
    let tracer = orex_telemetry::tracer();
    let context = request
        .header(TraceContext::HEADER)
        .and_then(TraceContext::parse);
    let response = {
        let mut span = tracer.span_with_context("router.request", context);
        if span.is_recording() {
            span.attr_str("method", &request.method);
            span.attr_str("path", &request.path);
        }
        let sampled_trace = if span.is_sampled() {
            span.trace_id().map(|t| t.0)
        } else {
            None
        };
        let (path, query) = match request.path.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (request.path.as_str(), None),
        };
        let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
        let response = match (request.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => handle_healthz(ctx),
            ("POST", ["query"]) => handle_query(request, ctx),
            ("GET", ["explain", sid, node]) => {
                handle_session(ctx, "GET", sid, |local| format!("/explain/{local}/{node}"))
            }
            ("POST", ["feedback", sid]) => {
                handle_session_with_body(ctx, sid, &request.body, |local| {
                    format!("/feedback/{local}")
                })
            }
            ("GET", ["datasets"]) => proxy_any(ctx, "/datasets"),
            ("GET", ["metrics"]) => handle_metrics(ctx),
            ("GET", ["logs"]) => handle_logs(ctx, query),
            ("GET", ["trace", id]) => handle_trace(ctx, id),
            ("GET", ["profile"]) => proxy_any(ctx, &request.path),
            ("GET", ["debug", "status"]) => handle_status(ctx, query),
            (
                "GET" | "POST",
                ["query" | "explain" | "feedback" | "datasets" | "metrics" | "logs" | "trace"
                | "profile" | "healthz", ..],
            ) => Response::error(405, "method not allowed for this route"),
            _ => Response::error(404, "no such route"),
        };
        let elapsed = start.elapsed();
        telemetry
            .histogram("router.request_us")
            .record_with_exemplar(elapsed.as_micros() as f64, sampled_trace);
        telemetry
            .counter(&format!("router.responses_{}xx", response.status / 100))
            .incr();
        orex_telemetry::logger()
            .info("router.access", "request")
            .field_str("method", &request.method)
            .field_str("path", &request.path)
            .field_u64("status", u64::from(response.status))
            .field_u64("latency_us", elapsed.as_micros() as u64)
            .emit();
        response
    };
    ctx.traces.absorb(tracer.drain());
    response
}

/// One traced proxied hop: a child span of the enclosing
/// `router.request` (carrying `worker`, `attempt`, and `reason` attrs)
/// whose context is injected as `X-Orex-Trace` so the worker's spans
/// parent under it. A worker that reports fleet-promoted slow traces
/// via `X-Orex-Promoted` triggers a retro-fetch of their sibling spans
/// before the worker archives evict them.
fn traced_hop(
    ctx: &RouterContext,
    worker: &Worker,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    attempt: u64,
    reason: &str,
) -> std::io::Result<ClientResponse> {
    let tracer = orex_telemetry::tracer();
    let mut span = tracer.span("router.proxy");
    if span.is_recording() {
        span.attr_u64("worker", worker.index as u64);
        span.attr_u64("attempt", attempt);
        span.attr_str("reason", reason);
    }
    let result = match span.context() {
        Some(hop) => {
            let value = hop.header_value();
            worker.client.request_with_headers(
                method,
                path,
                &[(TraceContext::HEADER, value.as_str())],
                body,
            )
        }
        None => worker.client.request(method, path, body),
    };
    if let Ok(response) = &result {
        note_promotions(ctx, response);
    }
    result
}

/// Acts on a worker's `X-Orex-Promoted` response header: for every
/// reported trace id, snapshots the wire-format spans from every
/// healthy worker into the retro store. Promotions only happen for
/// slow traces, so the extra fan-out is rare by construction.
fn note_promotions(ctx: &RouterContext, response: &ClientResponse) {
    let Some(value) = response.header("x-orex-promoted") else {
        return;
    };
    let ids: Vec<u64> = value
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    for id in ids {
        orex_telemetry::global()
            .counter("router.trace_promotions")
            .incr();
        let mut snapshots = Vec::new();
        for worker in ctx.fleet.workers() {
            if !worker.is_healthy() {
                continue;
            }
            let Ok(reply) = worker.client.get(&format!("/trace/{id}?format=wire")) else {
                continue;
            };
            if reply.status != 200 {
                continue;
            }
            if let Some(text) = reply.body_str() {
                if !text.is_empty() {
                    snapshots.push((worker.index, text.to_string()));
                }
            }
        }
        ctx.retro.insert(id, snapshots);
    }
}

/// Ready when at least one worker serves; the fleet degrades, it does
/// not binarize.
fn handle_healthz(ctx: &RouterContext) -> Response {
    if ctx.fleet.healthy_count() >= 1 {
        Response::text(200, "ok\n")
    } else {
        no_healthy_workers()
    }
}

/// Saturation 503, logged so the record (stamped with the in-flight
/// request's trace id) is greppable by trace.
fn no_healthy_workers() -> Response {
    orex_telemetry::logger()
        .warn("router.saturated", "no healthy workers")
        .emit();
    Response::error(503, "no healthy workers").with_header("Retry-After", "1")
}

/// `POST /query`: consistent-hash on `(dataset, query)`, forward, and
/// encode the serving worker into the returned session id. A request
/// that fails on its owner (connection error, or the worker itself
/// saturated with 503) is retried once on the next distinct healthy
/// worker — `router.retries` counts those.
fn handle_query(request: &Request, ctx: &RouterContext) -> Response {
    // The routing key prefers (dataset, query text) so identical
    // queries hit the same worker's result cache; an unparseable body
    // hashes raw (the worker will 400 it, any worker is fine).
    let parsed = request
        .body_str()
        .and_then(|s| serde_json::from_str(s).ok());
    let key: Vec<u8> = match &parsed {
        Some(v) => {
            let dataset = v.get("dataset").and_then(Value::as_str).unwrap_or("");
            let query = v.get("query").and_then(Value::as_str).unwrap_or("");
            let mut key = Vec::with_capacity(dataset.len() + 1 + query.len());
            key.extend_from_slice(dataset.as_bytes());
            key.push(0);
            key.extend_from_slice(query.as_bytes());
            key
        }
        None => request.body.clone(),
    };
    let Some(owner) = ctx.fleet.route(&key) else {
        return no_healthy_workers();
    };
    let workers = ctx.fleet.workers();
    let attempt = |index: usize, number: u64, reason: &str| {
        traced_hop(
            ctx,
            &workers[index],
            "POST",
            "/query",
            Some(&request.body),
            number,
            reason,
        )
    };
    let (served_by, result) = match attempt(owner, 1, "route") {
        Ok(r) if r.status != 503 => (owner, Ok(r)),
        first => match ctx.fleet.route_excluding(&key, owner) {
            Some(alternate) => {
                orex_telemetry::global().counter("router.retries").incr();
                let reason = match &first {
                    Ok(_) => "worker_503",
                    Err(_) => "worker_unreachable",
                };
                // Stamped with the request's trace id (the span is
                // open), so retry diagnostics grep by trace.
                orex_telemetry::logger()
                    .warn("router.retry", "retrying query on alternate worker")
                    .field_u64("from", owner as u64)
                    .field_u64("to", alternate as u64)
                    .field_str("reason", reason)
                    .emit();
                (alternate, attempt(alternate, 2, reason))
            }
            None => (owner, first),
        },
    };
    match result {
        Ok(response) => {
            let encoded = rewrite_session(&response, |local| {
                local * ctx.fleet.len() as u64 + served_by as u64
            });
            encoded.unwrap_or_else(|| to_response(&response))
        }
        Err(e) => Response::error(502, &format!("worker {served_by} unreachable: {e}")),
    }
}

/// Session-sticky GET (`/explain`): decode the owning worker from the
/// id, forward with the worker-local id, restore the global id in the
/// response.
fn handle_session(
    ctx: &RouterContext,
    method: &str,
    sid: &str,
    local_path: impl Fn(u64) -> String,
) -> Response {
    let Some((worker, local, global)) = decode_session(ctx, sid) else {
        return Response::error(400, "session id must be an integer");
    };
    forward_session(ctx, worker, method, &local_path(local), None, global)
}

/// Session-sticky POST (`/feedback`).
fn handle_session_with_body(
    ctx: &RouterContext,
    sid: &str,
    body: &[u8],
    local_path: impl Fn(u64) -> String,
) -> Response {
    let Some((worker, local, global)) = decode_session(ctx, sid) else {
        return Response::error(400, "session id must be an integer");
    };
    forward_session(ctx, worker, "POST", &local_path(local), Some(body), global)
}

/// Splits a global session id into `(worker index, worker-local id,
/// global id)`.
fn decode_session(ctx: &RouterContext, sid: &str) -> Option<(usize, u64, u64)> {
    let global: u64 = sid.parse().ok()?;
    let fleet_size = ctx.fleet.len() as u64;
    Some(((global % fleet_size) as usize, global / fleet_size, global))
}

fn forward_session(
    ctx: &RouterContext,
    worker: usize,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    global_sid: u64,
) -> Response {
    let workers = ctx.fleet.workers();
    if !workers[worker].is_healthy() {
        // The owner is down; its session table is gone with it. 503 so
        // the client retries after the worker returns (and then gets an
        // honest 404 for the lost session).
        return no_healthy_workers();
    }
    match traced_hop(
        ctx,
        &workers[worker],
        method,
        path,
        body,
        1,
        "session_sticky",
    ) {
        Ok(response) => {
            rewrite_session(&response, |_| global_sid).unwrap_or_else(|| to_response(&response))
        }
        Err(e) => Response::error(502, &format!("worker {worker} unreachable: {e}")),
    }
}

/// Re-writes the `"session"` field of a JSON 200 response through
/// `encode`; `None` when the response isn't a rewritable JSON object.
fn rewrite_session(response: &ClientResponse, encode: impl Fn(u64) -> u64) -> Option<Response> {
    if response.status != 200 {
        return None;
    }
    let mut doc: Value = serde_json::from_str(response.body_str()?).ok()?;
    let local = doc.get("session").and_then(Value::as_u64)?;
    doc.as_object_mut()?
        .insert("session".to_string(), Value::from(encode(local)));
    let body = serde_json::to_string(&doc).ok()?;
    Some(Response::json(200, body))
}

/// Forwards `path` (with its query string) to the first healthy worker.
fn proxy_any(ctx: &RouterContext, path: &str) -> Response {
    for worker in ctx.fleet.workers() {
        if !worker.is_healthy() {
            continue;
        }
        if let Ok(response) = worker.client.get(path) {
            return to_response(&response);
        }
    }
    no_healthy_workers()
}

/// `GET /metrics`: the router's own series (with `# TYPE` comments),
/// then every healthy worker's series re-labelled `worker="i"` (their
/// comment lines dropped so types aren't re-declared per worker).
fn handle_metrics(ctx: &RouterContext) -> Response {
    let mut out = orex_telemetry::global().snapshot().to_prometheus();
    for worker in ctx.fleet.workers() {
        if !worker.is_healthy() {
            continue;
        }
        let Ok(response) = worker.client.get("/metrics") else {
            continue;
        };
        if response.status != 200 {
            continue;
        }
        let Some(text) = response.body_str() else {
            continue;
        };
        for line in text.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            relabel_series(line, worker.index, &mut out);
        }
    }
    Response::new(200, "text/plain; version=0.0.4; charset=utf-8", out)
}

/// Injects `worker="i"` as the first label of a Prometheus series line,
/// preserving any ` # {...} v` exemplar suffix.
fn relabel_series(line: &str, worker: usize, out: &mut String) {
    use std::fmt::Write as _;
    let (series, exemplar) = match line.split_once(" # ") {
        Some((series, exemplar)) => (series, Some(exemplar)),
        None => (line, None),
    };
    match (series.find('{'), series.find(' ')) {
        // `name{labels} value` — worker joins the existing label set.
        (Some(brace), Some(space)) if brace < space => {
            let _ = write!(
                out,
                "{}{{worker=\"{worker}\",{}",
                &series[..brace],
                &series[brace + 1..]
            );
        }
        // `name value` — worker becomes the only label.
        (_, Some(space)) => {
            let _ = write!(
                out,
                "{}{{worker=\"{worker}\"}}{}",
                &series[..space],
                &series[space..]
            );
        }
        _ => out.push_str(series),
    }
    if let Some(exemplar) = exemplar {
        let _ = write!(out, " # {exemplar}");
    }
    out.push('\n');
}

/// `GET /logs`: fans the query out to every healthy worker and stamps
/// each NDJSON record with its `"worker"` index. Parameter errors from
/// a worker (400) pass through so validation behaves like one server.
fn handle_logs(ctx: &RouterContext, query: Option<&str>) -> Response {
    let path = match query {
        Some(q) => format!("/logs?{q}"),
        None => "/logs".to_string(),
    };
    let mut out = String::new();
    let mut served_any = false;
    for worker in ctx.fleet.workers() {
        if !worker.is_healthy() {
            continue;
        }
        let Ok(response) = worker.client.get(&path) else {
            continue;
        };
        if response.status == 400 {
            return to_response(&response);
        }
        if response.status != 200 {
            continue;
        }
        served_any = true;
        let Some(text) = response.body_str() else {
            continue;
        };
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix('{') {
                out.push_str(&format!("{{\"worker\":{},", worker.index));
                out.push_str(rest);
                out.push('\n');
            }
        }
    }
    if !served_any {
        return no_healthy_workers();
    }
    Response::new(200, "application/x-ndjson; charset=utf-8", out)
}

/// `GET /trace/<id>`: stitches one fleet-wide trace. The router's own
/// archived spans form lane `pid 1`; every worker is asked for its
/// share in the wire format and becomes lane `pid index + 2`, its
/// timestamps shifted onto the router's clock by the health-probe
/// offset estimate. A worker that already evicted the trace (or is
/// down) falls back to the retro store's snapshot, so fleet-promoted
/// slow traces stitch even after worker-side eviction.
fn handle_trace(ctx: &RouterContext, id: &str) -> Response {
    let Ok(trace_id) = id.parse::<u64>() else {
        return Response::error(400, "trace id must be an integer");
    };
    // The router's own spans may still sit in the tracer ring (this
    // very request is absorbed only after `handle` returns).
    ctx.traces.absorb(orex_telemetry::tracer().drain());
    let mut lanes = Vec::new();
    if let Some(spans) = ctx.traces.get(trace_id) {
        lanes.push(ProcessLane {
            pid: 1,
            label: format!("router {}", ctx.addr),
            offset_ns: 0,
            spans: parse_wire(&to_wire(&spans)),
        });
    }
    let retro = ctx.retro.get(trace_id);
    for worker in ctx.fleet.workers() {
        let live = if worker.is_healthy() {
            worker
                .client
                .get(&format!("/trace/{trace_id}?format=wire"))
                .ok()
                .filter(|r| r.status == 200)
                .and_then(|r| r.body_str().map(String::from))
        } else {
            None
        };
        let text = live.or_else(|| {
            retro
                .iter()
                .find(|(index, _)| *index == worker.index)
                .map(|(_, text)| text.clone())
        });
        let Some(text) = text else { continue };
        let spans = parse_wire(&text);
        if spans.is_empty() {
            continue;
        }
        lanes.push(ProcessLane {
            pid: worker.index as u64 + 2,
            label: format!("worker-{} {}", worker.index, worker.addr),
            offset_ns: worker.clock_offset_ns(),
            spans,
        });
    }
    if lanes.is_empty() {
        return Response::error(404, "no process holds that trace");
    }
    Response::json(200, to_chrome_trace_stitched(&lanes))
}

/// `GET /debug/status`: the fleet view `orex top` renders — a router
/// summary plus one row per worker with its own status doc inlined.
fn handle_status(ctx: &RouterContext, query: Option<&str>) -> Response {
    let format = match query {
        None => "json",
        Some("format=json") => "json",
        Some(other) => {
            return Response::error(400, &format!("unknown parameters: {other:?}"));
        }
    };
    let snapshot = orex_telemetry::global().snapshot();
    let counter = |name: &str| snapshot.counters.get(name).copied().unwrap_or(0);
    let workers: Vec<Value> = ctx
        .fleet
        .workers()
        .iter()
        .map(|worker| {
            let status = worker_status(worker);
            serde_json::json!({
                "index": worker.index as u64,
                "addr": worker.addr.clone(),
                "healthy": worker.is_healthy(),
                "restarts": worker.restarts(),
                "status": status,
            })
        })
        .collect();
    let doc = serde_json::json!({
        "router": serde_json::json!({
            "addr": ctx.addr.clone(),
            "workers": ctx.fleet.len() as u64,
            "healthy": ctx.fleet.healthy_count() as u64,
            "requests": counter("router.requests"),
            "retries": counter("router.retries"),
            "worker_restarts": counter("router.worker_restarts"),
            "uptime_s": ctx.started.elapsed().as_secs_f64(),
        }),
        "workers": Value::Array(workers),
    });
    let _ = format; // only JSON exists; the match gates unknown params
    Response::json(200, serde_json::to_string(&doc).unwrap_or_default())
}

/// One worker's `/debug/status?format=json` doc, or `Null` when the
/// worker is down or answers garbage.
fn worker_status(worker: &Arc<Worker>) -> Value {
    if !worker.is_healthy() {
        return Value::Null;
    }
    worker
        .client
        .get("/debug/status?format=json")
        .ok()
        .filter(|r| r.status == 200)
        .and_then(|r| r.body_str().and_then(|s| serde_json::from_str(s).ok()))
        .unwrap_or(Value::Null)
}

/// Converts a worker's [`ClientResponse`] into a front-end [`Response`],
/// carrying status, content type, and body through.
fn to_response(response: &ClientResponse) -> Response {
    let declared = response.header("content-type").unwrap_or("");
    let content_type = if declared.contains("json") && declared.contains("ndjson") {
        "application/x-ndjson; charset=utf-8"
    } else if declared.contains("json") {
        "application/json"
    } else if declared.contains("html") {
        "text/html; charset=utf-8"
    } else {
        "text/plain; charset=utf-8"
    };
    Response::new(response.status, content_type, response.body.clone())
}
