//! Property-based tests for the tracing layer: random span programs must
//! always produce well-formed traces (strict nesting, ordered
//! timestamps, in-span events), the bounded ring must evict oldest-first,
//! and the Chrome trace-event export must round-trip through a JSON
//! parser with matched B/E pairs.

use orex_telemetry::export::to_chrome_trace;
use orex_telemetry::{SpanId, SpanRecord, TraceId, Tracer};
use proptest::prelude::*;
use std::collections::HashMap;

/// Span names are `&'static str`; index into a fixed pool.
const NAMES: [&str; 8] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
];

/// Interprets a byte program against a tracer: each byte either opens a
/// child span, closes the innermost open span, or records an event on it.
/// Returns the drained records.
fn run_program(tracer: &Tracer, program: &[u8]) -> Vec<SpanRecord> {
    let mut open: Vec<orex_telemetry::ActiveSpan> = Vec::new();
    for (i, &op) in program.iter().enumerate() {
        match op % 4 {
            0 | 1 => {
                let mut span = tracer.span(NAMES[(op as usize / 4) % NAMES.len()]);
                span.attr_u64("step", i as u64);
                open.push(span);
            }
            2 => {
                open.pop();
            }
            _ => {
                if let Some(span) = open.last_mut() {
                    span.event("tick");
                }
            }
        }
    }
    // Close innermost-first: a Vec drops front-to-back, which would end
    // parents before their children and (correctly) violate nesting.
    while open.pop().is_some() {}
    tracer.drain()
}

fn by_id(records: &[SpanRecord]) -> HashMap<(TraceId, SpanId), &SpanRecord> {
    records.iter().map(|r| ((r.trace, r.id), r)).collect()
}

proptest! {
    /// Every record a random program produces is well-formed: end after
    /// start, events inside the span window, and each child strictly
    /// nested inside its parent (same trace, window contained).
    #[test]
    fn traces_are_well_formed(program in proptest::collection::vec(any::<u8>(), 0..200)) {
        let tracer = Tracer::new(1024);
        let records = run_program(&tracer, &program);
        let index = by_id(&records);
        for r in &records {
            prop_assert!(r.end_ns >= r.start_ns, "span {} ends before it starts", r.name);
            for e in &r.events {
                prop_assert!(
                    e.at_ns >= r.start_ns && e.at_ns <= r.end_ns,
                    "event outside its span window"
                );
            }
            if let Some(parent_id) = r.parent {
                // The program closes spans strictly LIFO, so every parent
                // outlives its children and must be present in the drain.
                let parent = index
                    .get(&(r.trace, parent_id))
                    .expect("parent drained alongside child");
                prop_assert!(parent.start_ns <= r.start_ns, "child starts before parent");
                prop_assert!(parent.end_ns >= r.end_ns, "child ends after parent");
            }
        }
    }

    /// Roots never carry a parent, and children inherit their root's
    /// trace id: all spans reachable from one root share one trace.
    #[test]
    fn trace_ids_partition_by_root(program in proptest::collection::vec(any::<u8>(), 0..200)) {
        let tracer = Tracer::new(1024);
        let records = run_program(&tracer, &program);
        let index = by_id(&records);
        for r in &records {
            match r.parent {
                None => {}
                Some(p) => {
                    let parent = index.get(&(r.trace, p)).expect("parent present");
                    prop_assert_eq!(parent.trace, r.trace, "child crossed traces");
                }
            }
        }
    }

    /// A ring of capacity `cap` keeps exactly the `cap` most recent
    /// records, in ticket order.
    #[test]
    fn ring_keeps_newest_in_order(cap in 1usize..16, n in 0usize..48) {
        let tracer = Tracer::new(cap);
        for i in 0..n {
            let mut span = tracer.span("seq");
            span.attr_u64("seq", i as u64);
        }
        let records = tracer.drain();
        prop_assert_eq!(records.len(), n.min(cap));
        let seqs: Vec<u64> = records
            .iter()
            .map(|r| match r.attrs.iter().find(|(k, _)| *k == "seq") {
                Some((_, orex_telemetry::AttrValue::U64(v))) => *v,
                other => panic!("missing seq attr: {other:?}"),
            })
            .collect();
        let expected: Vec<u64> = (n.saturating_sub(cap)..n).map(|i| i as u64).collect();
        prop_assert_eq!(seqs, expected, "survivors must be the newest, oldest-first");
    }

    /// The Chrome export of any random program parses as JSON and closes
    /// every B event with a matching E at the same nesting position.
    #[test]
    fn chrome_export_round_trips(program in proptest::collection::vec(any::<u8>(), 0..120)) {
        let tracer = Tracer::new(1024);
        let records = run_program(&tracer, &program);
        let json = to_chrome_trace(&records);
        let value = serde_json::from_str(&json).expect("chrome trace is valid JSON");
        let events = value
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // Per (pid, tid) lane, B/E events must balance like parentheses.
        let mut depth: HashMap<(u64, u64), Vec<String>> = HashMap::new();
        for e in events {
            let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph");
            let lane = (
                e.get("pid").and_then(|p| p.as_u64()).expect("pid"),
                e.get("tid").and_then(|t| t.as_u64()).expect("tid"),
            );
            let name = e.get("name").and_then(|n| n.as_str()).expect("name");
            match ph {
                "B" => depth.entry(lane).or_default().push(name.to_string()),
                "E" => {
                    let open = depth.get_mut(&lane).and_then(Vec::pop);
                    prop_assert_eq!(open.as_deref(), Some(name), "E without matching B");
                }
                "i" => {}
                other => prop_assert!(false, "unexpected phase {}", other),
            }
        }
        for (lane, stack) in depth {
            prop_assert!(stack.is_empty(), "unclosed spans in lane {lane:?}: {stack:?}");
        }
    }

    /// Any well-formed trace context survives the wire: rendering the
    /// `X-Orex-Trace` header value and parsing it back is the identity.
    #[test]
    fn context_header_round_trips(
        trace in 1u64..u64::MAX,
        parent in any::<u64>(),
        flags in 0u8..4,
    ) {
        let context = orex_telemetry::TraceContext {
            trace: TraceId(trace),
            parent: SpanId(parent),
            flags,
        };
        let parsed = orex_telemetry::TraceContext::parse(&context.header_value());
        prop_assert_eq!(parsed, Some(context));
    }

    /// A propagated "sampled" flag overrides the worker's local 1-in-N
    /// draw: no matter how aggressive the local rate, every remote span
    /// whose context carries SAMPLED commits to the ring — and every
    /// remote span whose context says "unsampled" stays out, even when
    /// the local counter would have picked it.
    #[test]
    fn propagated_decision_overrides_local_sampling(
        every in 2u64..64,
        n in 1usize..32,
        trace in 1u64..u64::MAX,
    ) {
        let tracer = Tracer::new(1024);
        tracer.set_sample_every(every);
        tracer.set_slow_threshold(None);
        for i in 0..n {
            // Alternate: even spans propagate SAMPLED, odd spans carry
            // flags 0 (unsampled-but-promotable).
            let context = orex_telemetry::TraceContext {
                trace: TraceId(trace),
                parent: SpanId(900 + i as u64),
                flags: if i % 2 == 0 { orex_telemetry::TraceContext::SAMPLED } else { 0 },
            };
            let span = tracer.span_with_context("ingress", Some(context));
            prop_assert_eq!(span.is_sampled(), i % 2 == 0, "local 1-in-{} draw leaked through", every);
            drop(span);
        }
        // Exactly the SAMPLED-flagged spans survive, regardless of `every`.
        prop_assert_eq!(tracer.drain().len(), n.div_ceil(2));
        prop_assert!(tracer.take_promoted().is_empty());
    }

    /// Slow-trace promotion must not resurrect an explicitly-unsampled
    /// trace: with a zero slow threshold (everything is "slow"), a
    /// NO_PROMOTE context still discards root and children, while an
    /// unsampled-but-promotable one is promoted and reported.
    #[test]
    fn no_promote_is_never_resurrected_by_slow_promotion(
        trace in 1u64..u64::MAX,
        children in 0usize..8,
    ) {
        let tracer = Tracer::new(1024);
        tracer.set_sample_every(u64::MAX);
        tracer.set_slow_threshold(Some(std::time::Duration::ZERO));

        // NO_PROMOTE: the caller explicitly opted this trace out.
        let context = orex_telemetry::TraceContext {
            trace: TraceId(trace),
            parent: SpanId(7),
            flags: orex_telemetry::TraceContext::NO_PROMOTE,
        };
        let root = tracer.span_with_context("ingress", Some(context));
        for _ in 0..children {
            drop(tracer.span("child"));
        }
        drop(root);
        prop_assert!(tracer.drain().is_empty(), "NO_PROMOTE trace was resurrected");
        prop_assert!(tracer.take_promoted().is_empty());

        // Control: the same shape without NO_PROMOTE promotes everything
        // and queues the id for the ingress edge.
        let context = orex_telemetry::TraceContext {
            trace: TraceId(trace),
            parent: SpanId(7),
            flags: 0,
        };
        let root = tracer.span_with_context("ingress", Some(context));
        for _ in 0..children {
            drop(tracer.span("child"));
        }
        drop(root);
        prop_assert_eq!(tracer.drain().len(), children + 1);
        prop_assert_eq!(tracer.take_promoted(), vec![trace]);
    }
}

/// A disabled tracer records nothing regardless of the program thrown at
/// it — the `OREX_TELEMETRY=0` path.
#[test]
fn disabled_tracer_records_nothing() {
    let tracer = Tracer::disabled();
    let mut span = tracer.span("root");
    assert!(!span.is_recording());
    span.attr_u64("ignored", 1);
    span.event("ignored");
    let child = tracer.span("child");
    drop(child);
    drop(span);
    assert!(tracer.drain().is_empty());
    assert_eq!(tracer.capacity(), 0);
}
