//! Property-based tests for the structured logging layer: the bounded
//! ring must keep exactly the newest records in sequence order, the
//! level/target filter must admit exactly what a reference model admits,
//! the per-callsite rate limiter must admit exactly every `N`-th draw,
//! and the JSON-lines export must round-trip through a JSON parser.

use orex_telemetry::export::log_json_lines;
use orex_telemetry::{FieldValue, Level, LogFilter, Logger, RateLimit};
use proptest::prelude::*;

/// Targets are `&'static str`; index into a fixed dot-hierarchy pool so
/// prefix filters have something to bite on.
const TARGETS: [&str; 6] = [
    "server",
    "server.access",
    "server.access.slow",
    "authority",
    "authority.power",
    "ir.index",
];

fn level(i: u8) -> Level {
    Level::ALL[(i as usize) % Level::ALL.len()]
}

proptest! {
    /// A ring of capacity `cap` keeps exactly the `cap` most recent
    /// records, oldest-first, with strictly increasing sequence numbers.
    #[test]
    fn ring_evicts_oldest_keeps_newest(cap in 1usize..24, n in 0usize..72) {
        let logger = Logger::new(cap);
        for i in 0..n {
            logger.info("t", format!("m{i}")).field_u64("i", i as u64).emit();
        }
        let records = logger.drain();
        prop_assert_eq!(records.len(), n.min(cap));
        let ids: Vec<u64> = records
            .iter()
            .map(|r| match r.fields.first() {
                Some((_, FieldValue::U64(v))) => *v,
                other => panic!("missing i field: {other:?}"),
            })
            .collect();
        let expected: Vec<u64> = (n.saturating_sub(cap)..n).map(|i| i as u64).collect();
        prop_assert_eq!(ids, expected, "survivors must be the newest, oldest-first");
        prop_assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        prop_assert!(logger.drain().is_empty(), "drain is destructive");
    }

    /// The captured set under a random filter equals the reference
    /// model: per-target longest-prefix override, else the default.
    /// Levels are drawn from `0..6` with 5 encoding "off"/`None`.
    #[test]
    fn filter_admits_exactly_the_model(
        default_code in 0u8..6,
        override_codes in proptest::collection::vec((0usize..TARGETS.len(), 0u8..6), 0..4),
        emissions in proptest::collection::vec((0usize..TARGETS.len(), 0u8..5), 0..64),
    ) {
        let opt_level = |code: u8| -> Option<Level> { (code < 5).then(|| level(code)) };
        let default = opt_level(default_code);
        let overrides: Vec<(usize, Option<Level>)> = override_codes
            .iter()
            .map(|(t, code)| (*t, opt_level(*code)))
            .collect();
        let mut filter = match default {
            Some(l) => LogFilter::at(l),
            None => LogFilter::off(),
        };
        for (t, l) in &overrides {
            filter = filter.with_target(TARGETS[*t], *l);
        }
        let logger = Logger::new(256);
        logger.set_filter(filter.clone());

        // Reference model: the effective level for a target is the
        // longest matching override prefix, else the default.
        let effective = |target: &str| -> Option<Level> {
            let mut best: Option<(usize, Option<Level>)> = None;
            for (t, l) in &overrides {
                let prefix = TARGETS[*t];
                let matches = target == prefix
                    || (target.starts_with(prefix)
                        && target.as_bytes().get(prefix.len()) == Some(&b'.'));
                // Strictly longer prefixes win; on a duplicate prefix
                // the first-inserted override is kept (stable sort).
                if matches && best.is_none_or(|(len, _)| prefix.len() > len) {
                    best = Some((prefix.len(), *l));
                }
            }
            match best {
                Some((_, l)) => l,
                None => default,
            }
        };

        let mut expected = Vec::new();
        for (t, l) in &emissions {
            let (target, lv) = (TARGETS[*t], level(*l));
            logger.record(lv, target, "m").emit();
            prop_assert_eq!(
                logger.enabled(lv, target),
                effective(target).is_some_and(|max| lv <= max),
                "enabled() disagrees with the model for {} at {:?}", target, lv
            );
            if effective(target).is_some_and(|max| lv <= max) {
                expected.push((target, lv));
            }
        }
        let captured: Vec<(&str, Level)> =
            logger.drain().iter().map(|r| (r.target, r.level)).collect();
        prop_assert_eq!(captured, expected);
    }

    /// `admit(every)` is true exactly for draws 0, every, 2*every, ...,
    /// and the draw counter counts every call.
    #[test]
    fn rate_limiter_admits_every_nth(every in 0u64..20, draws in 1usize..200) {
        let limit = RateLimit::new();
        let mut admitted = Vec::new();
        for i in 0..draws {
            if limit.admit(every) {
                admitted.push(i as u64);
            }
        }
        let expected: Vec<u64> = if every <= 1 {
            (0..draws as u64).collect()
        } else {
            (0..draws as u64).filter(|i| i % every == 0).collect()
        };
        prop_assert_eq!(admitted, expected);
        prop_assert_eq!(limit.count(), draws as u64);
    }

    /// Every JSON-lines export parses line-by-line and round-trips the
    /// record's level, target, message, seq and typed fields.
    #[test]
    fn json_lines_round_trip(
        emissions in proptest::collection::vec(
            (
                (0usize..TARGETS.len(), 0u8..5, any::<u64>()),
                (any::<i64>(), -1.0e12f64..1.0e12, any::<bool>(), "[ -~]{0,24}"),
            ),
            0..32,
        ),
    ) {
        let logger = Logger::new(256);
        logger.set_filter(LogFilter::at(Level::Trace));
        for ((t, l, u), (i, f, b, s)) in &emissions {
            logger
                .record(level(*l), TARGETS[*t], s.clone())
                .field_u64("u", *u)
                .field_i64("i", *i)
                .field_f64("f", *f)
                .field_bool("b", *b)
                .field_str("s", s)
                .emit();
        }
        let records = logger.drain();
        let exported = log_json_lines(&records);
        let lines: Vec<&str> = exported.lines().collect();
        prop_assert_eq!(lines.len(), records.len());
        for (line, record) in lines.iter().zip(&records) {
            let v = serde_json::from_str(line).expect("every line is valid JSON");
            prop_assert_eq!(v.get("level").and_then(|x| x.as_str()), Some(record.level.as_str()));
            prop_assert_eq!(v.get("target").and_then(|x| x.as_str()), Some(record.target));
            prop_assert_eq!(
                v.get("message").and_then(|x| x.as_str()),
                Some(record.message.as_str())
            );
            prop_assert_eq!(v.get("seq").and_then(|x| x.as_u64()), Some(record.seq));
            let fields = v.get("fields").expect("fields object");
            for (key, value) in &record.fields {
                match value {
                    FieldValue::U64(u) => {
                        prop_assert_eq!(fields.get(key).and_then(|x| x.as_u64()), Some(*u));
                    }
                    FieldValue::I64(i) => {
                        prop_assert_eq!(fields.get(key).and_then(|x| x.as_f64()), Some(*i as f64));
                    }
                    FieldValue::F64(f) if f.is_finite() => {
                        prop_assert_eq!(fields.get(key).and_then(|x| x.as_f64()), Some(*f));
                    }
                    FieldValue::F64(_) => {
                        // Non-finite floats have no JSON literal; they
                        // serialize as null.
                        prop_assert!(fields.get(key).is_some_and(|x| x.is_null()));
                    }
                    FieldValue::Bool(b) => {
                        prop_assert_eq!(fields.get(key).and_then(|x| x.as_bool()), Some(*b));
                    }
                    FieldValue::Str(s) => {
                        prop_assert_eq!(fields.get(key).and_then(|x| x.as_str()), Some(s.as_str()));
                    }
                }
            }
        }
    }
}

/// A disabled logger records nothing and allocates no builders that
/// survive — the `OREX_TELEMETRY=0` path.
#[test]
fn disabled_logger_records_nothing() {
    let logger = Logger::disabled();
    assert!(!logger.is_enabled());
    let builder = logger.error("t", "ignored");
    assert!(!builder.is_recording());
    builder.field_u64("k", 1).emit();
    assert!(logger.drain().is_empty());
    assert_eq!(logger.capacity(), 0);
}
