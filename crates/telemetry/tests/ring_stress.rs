//! Real-thread exercises of the trace ring, sized to run under Miri
//! (the CI `miri` job) and ThreadSanitizer (the CI `tsan` job) as well
//! as natively. The exhaustive protocol-level counterpart lives in
//! `crates/analyze/tests/ring_interleave.rs`.

use orex_telemetry::trace::Tracer;
use std::collections::HashSet;
use std::thread;

// Small iteration counts: Miri executes these interpreted, roughly
// 1000x slower than native, and the interesting schedules appear within
// a handful of overlapping operations.
const PUSHERS: usize = 2;
const SPANS_PER_PUSHER: usize = 8;

#[test]
fn concurrent_push_push_eviction_stays_bounded_and_ordered() {
    let tracer = Tracer::new(4);
    thread::scope(|scope| {
        for _ in 0..PUSHERS {
            let tracer = tracer.clone();
            scope.spawn(move || {
                for _ in 0..SPANS_PER_PUSHER {
                    drop(tracer.span("w"));
                }
            });
        }
    });
    let records = tracer.drain();
    assert!(!records.is_empty(), "something must survive eviction");
    assert!(records.len() <= 4, "ring is bounded by its capacity");
    // Drain returns completion (ticket) order, and concurrent pushes
    // never duplicate a span.
    for pair in records.windows(2) {
        assert!(pair[0].ticket < pair[1].ticket, "tickets strictly increase");
    }
    let ids: HashSet<_> = records.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), records.len(), "no span recorded twice");
}

#[test]
fn concurrent_push_drain_tear_never_duplicates_a_span() {
    let tracer = Tracer::new(8);
    let mut seen = thread::scope(|scope| {
        let drainer = {
            let tracer = tracer.clone();
            scope.spawn(move || {
                let mut seen = Vec::new();
                // Drain repeatedly while the pushers run, tearing drains
                // across in-flight pushes.
                for _ in 0..PUSHERS * SPANS_PER_PUSHER {
                    seen.extend(tracer.drain());
                    thread::yield_now();
                }
                seen
            })
        };
        for _ in 0..PUSHERS {
            let tracer = tracer.clone();
            scope.spawn(move || {
                for _ in 0..SPANS_PER_PUSHER {
                    drop(tracer.span("p"));
                }
            });
        }
        drainer.join().expect("drainer thread")
    });
    // Whatever the racing drains missed is still in the ring.
    seen.extend(tracer.drain());
    assert!(seen.len() <= PUSHERS * SPANS_PER_PUSHER);
    let ids: HashSet<_> = seen.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), seen.len(), "a span must drain at most once");
    let tickets: HashSet<_> = seen.iter().map(|r| r.ticket).collect();
    assert_eq!(tickets.len(), seen.len(), "tickets are unique");
}

#[test]
fn sampling_config_published_to_other_threads() {
    // The set_sample_every/set_slow_threshold stores are Release and the
    // hot-path loads Acquire; a reader thread must observe a coherent
    // configuration (this is the pairing TSan would flag if weakened).
    let tracer = Tracer::new(16);
    tracer.set_sample_every(3);
    thread::scope(|scope| {
        let tracer = tracer.clone();
        scope
            .spawn(move || {
                assert_eq!(tracer.sample_every(), 3);
                drop(tracer.span("sampled-or-not"));
            })
            .join()
            .expect("reader thread");
    });
}
