//! Service-level objectives over metric [`Snapshot`]s.
//!
//! An [`SloSpec`] names an objective (availability or latency) defined
//! entirely in terms of metrics the recorder already exports, so SLO
//! evaluation needs no new instrumentation: availability reads a
//! total/bad counter pair, latency reads a histogram's bucket counts
//! against a threshold. An [`SloTracker`] keeps a short history of
//! (good, total) event counts and computes multi-window **burn rates**
//! — the rate the error budget is being consumed, where 1.0 means
//! "exactly exhausting the budget". Following the classic multi-window
//! alerting recipe, an objective is *burning* only when **both** the
//! short and the long window burn above 1.0: the short window makes
//! alerts fast to clear, the long window suppresses blips.
//!
//! Trackers are driven externally (the server's status collector calls
//! [`SloTracker::observe`] on its own cadence) and publish
//! `slo.<name>.*` gauges back into the recorder, which `/metrics`
//! exposes as `orex_slo_*` series.

use std::collections::VecDeque;
use std::time::Duration;

use crate::{bucket_upper_bound, Recorder, Snapshot, BUCKETS};

/// What an objective measures.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloKind {
    /// Good events = `total - bad`, read from two counters.
    Availability {
        /// Counter counting all events (e.g. `server.requests`).
        total: &'static str,
        /// Counter counting failed events (e.g. `server.responses_5xx`).
        /// Missing counters read as 0 — no failures yet.
        bad: &'static str,
    },
    /// Good events = histogram samples at or below a threshold.
    Latency {
        /// Histogram name (e.g. `server.request_us`).
        histogram: &'static str,
        /// Samples ≤ this value (same unit as the histogram) are good.
        /// Align to a [`bucket_upper_bound`] — the histogram only knows
        /// bucket boundaries, so a mid-bucket threshold rounds down.
        threshold_us: f64,
    },
}

/// One service-level objective.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSpec {
    /// Stable identifier used in gauge names and reports.
    pub name: &'static str,
    /// Fraction of events that must be good, e.g. `0.999`.
    pub objective: f64,
    /// How good/total events are read from a snapshot.
    pub kind: SloKind,
}

impl SloSpec {
    /// Extracts cumulative `(good, total)` event counts from a snapshot.
    pub fn good_total(&self, snap: &Snapshot) -> (u64, u64) {
        match self.kind {
            SloKind::Availability { total, bad } => {
                let total = snap.counters.get(total).copied().unwrap_or(0);
                let bad = snap.counters.get(bad).copied().unwrap_or(0);
                (total.saturating_sub(bad), total)
            }
            SloKind::Latency {
                histogram,
                threshold_us,
            } => match snap.histograms.get(histogram) {
                Some(h) => {
                    let good = h
                        .buckets
                        .iter()
                        .take(BUCKETS - 1)
                        .enumerate()
                        .filter(|(i, _)| bucket_upper_bound(*i) <= threshold_us)
                        .map(|(_, b)| b)
                        .sum();
                    (good, h.count)
                }
                None => (0, 0),
            },
        }
    }
}

/// Evaluation window pair for burn rates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloWindows {
    /// Fast-reacting window (default 1 minute).
    pub short: Duration,
    /// Blip-suppressing window (default 5 minutes).
    pub long: Duration,
}

impl Default for SloWindows {
    fn default() -> Self {
        Self {
            short: Duration::from_secs(60),
            long: Duration::from_secs(300),
        }
    }
}

/// One objective's evaluated state; see [`SloTracker::statuses`].
#[derive(Clone, Debug, PartialEq)]
pub struct SloStatus {
    /// Spec this status evaluates.
    pub name: &'static str,
    /// The objective fraction, copied from the spec.
    pub objective: f64,
    /// Burn rate over the short window (1.0 = budget exactly consumed).
    pub burn_short: f64,
    /// Burn rate over the long window.
    pub burn_long: f64,
    /// True when both windows burn above 1.0.
    pub burning: bool,
    /// Cumulative good events at the latest observation.
    pub good: u64,
    /// Cumulative total events at the latest observation.
    pub total: u64,
}

/// Cumulative (good, total) at one observation instant.
#[derive(Clone, Copy, Debug)]
struct SloSample {
    at: Duration,
    good: u64,
    total: u64,
}

/// Tracks burn rates for a set of objectives from periodic snapshots.
///
/// Timestamps are caller-supplied offsets from an arbitrary epoch
/// (typically server start), which keeps the tracker deterministic in
/// tests. Observations must be monotonically non-decreasing in `at`.
#[derive(Debug)]
pub struct SloTracker {
    specs: Vec<SloSpec>,
    windows: SloWindows,
    history: Vec<VecDeque<SloSample>>,
}

impl SloTracker {
    /// Creates a tracker over `specs` with the given windows.
    pub fn new(specs: Vec<SloSpec>, windows: SloWindows) -> Self {
        let history = specs.iter().map(|_| VecDeque::new()).collect();
        Self {
            specs,
            windows,
            history,
        }
    }

    /// The tracked specs, in status order.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Records one snapshot taken `at` after the epoch.
    pub fn observe(&mut self, at: Duration, snap: &Snapshot) {
        // Keep enough history to cover the long window with one sample
        // of slack before it, so window deltas have a baseline.
        let horizon = at.saturating_sub(self.windows.long * 2);
        for (spec, hist) in self.specs.iter().zip(self.history.iter_mut()) {
            let (good, total) = spec.good_total(snap);
            hist.push_back(SloSample { at, good, total });
            while hist.len() > 2 && hist[1].at <= horizon {
                hist.pop_front();
            }
        }
    }

    /// Evaluates every objective at the latest observation.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.specs
            .iter()
            .zip(self.history.iter())
            .map(|(spec, hist)| {
                let latest = hist.back().copied().unwrap_or(SloSample {
                    at: Duration::ZERO,
                    good: 0,
                    total: 0,
                });
                let burn = |window: Duration| -> f64 {
                    // Baseline = oldest sample inside the window; early in
                    // a run that clamps the window to the data we have.
                    let from = latest.at.saturating_sub(window);
                    let base = hist
                        .iter()
                        .find(|s| s.at >= from)
                        .copied()
                        .unwrap_or(latest);
                    let total = latest.total.saturating_sub(base.total);
                    let good = latest.good.saturating_sub(base.good);
                    if total == 0 {
                        return 0.0;
                    }
                    let error_rate = (total - good.min(total)) as f64 / total as f64;
                    let budget = 1.0 - spec.objective;
                    if budget <= 0.0 {
                        if error_rate > 0.0 {
                            f64::INFINITY
                        } else {
                            0.0
                        }
                    } else {
                        error_rate / budget
                    }
                };
                let burn_short = burn(self.windows.short);
                let burn_long = burn(self.windows.long);
                SloStatus {
                    name: spec.name,
                    objective: spec.objective,
                    burn_short,
                    burn_long,
                    burning: burn_short > 1.0 && burn_long > 1.0,
                    good: latest.good,
                    total: latest.total,
                }
            })
            .collect()
    }

    /// Publishes `slo.<name>.burn_short/.burn_long/.burning` gauges so
    /// `/metrics` exports them as `orex_slo_*` series.
    pub fn publish(&self, recorder: &Recorder) -> Vec<SloStatus> {
        let statuses = self.statuses();
        for s in &statuses {
            recorder
                .gauge(&format!("slo.{}.burn_short", s.name))
                .set(s.burn_short);
            recorder
                .gauge(&format!("slo.{}.burn_long", s.name))
                .set(s.burn_long);
            recorder
                .gauge(&format!("slo.{}.burning", s.name))
                .set(if s.burning { 1.0 } else { 0.0 });
        }
        statuses
    }
}

/// The serving SLOs the status board and loadgen gate on: availability
/// per endpoint (non-5xx responses) and latency for the request path.
/// Latency thresholds sit on power-of-two bucket bounds (2^18 µs ≈
/// 262 ms) because the histogram only resolves bucket edges.
pub fn default_slos() -> Vec<SloSpec> {
    vec![
        SloSpec {
            name: "request_availability",
            objective: 0.999,
            kind: SloKind::Availability {
                total: "server.requests",
                bad: "server.responses_5xx",
            },
        },
        SloSpec {
            name: "query_availability",
            objective: 0.999,
            kind: SloKind::Availability {
                total: "server.query_requests",
                bad: "server.query_5xx",
            },
        },
        SloSpec {
            name: "explain_availability",
            objective: 0.999,
            kind: SloKind::Availability {
                total: "server.explain_requests",
                bad: "server.explain_5xx",
            },
        },
        SloSpec {
            name: "feedback_availability",
            objective: 0.999,
            kind: SloKind::Availability {
                total: "server.feedback_requests",
                bad: "server.feedback_5xx",
            },
        },
        SloSpec {
            name: "request_latency",
            objective: 0.99,
            kind: SloKind::Latency {
                histogram: "server.request_us",
                threshold_us: 262144.0,
            },
        },
        SloSpec {
            name: "query_latency",
            objective: 0.99,
            kind: SloKind::Latency {
                histogram: "server.query_us",
                threshold_us: 262144.0,
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(requests: u64, bad: u64) -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("server.requests".into(), requests);
        s.counters.insert("server.responses_5xx".into(), bad);
        s
    }

    fn avail_spec() -> SloSpec {
        SloSpec {
            name: "request_availability",
            objective: 0.999,
            kind: SloKind::Availability {
                total: "server.requests",
                bad: "server.responses_5xx",
            },
        }
    }

    fn tracker() -> SloTracker {
        SloTracker::new(vec![avail_spec()], SloWindows::default())
    }

    #[test]
    fn no_traffic_is_not_burning() {
        let mut t = tracker();
        t.observe(Duration::from_secs(0), &snap(0, 0));
        t.observe(Duration::from_secs(60), &snap(0, 0));
        let s = &t.statuses()[0];
        assert_eq!(s.burn_short, 0.0);
        assert_eq!(s.burn_long, 0.0);
        assert!(!s.burning);
    }

    #[test]
    fn clean_traffic_is_not_burning() {
        let mut t = tracker();
        for i in 0..=10u64 {
            t.observe(Duration::from_secs(i * 30), &snap(i * 1000, 0));
        }
        let s = &t.statuses()[0];
        assert_eq!(s.burn_short, 0.0);
        assert!(!s.burning);
        assert_eq!(s.total, 10_000);
    }

    #[test]
    fn sustained_errors_burn_both_windows() {
        // 1% errors against a 0.1% budget → burn rate 10 in both windows.
        let mut t = tracker();
        for i in 0..=10u64 {
            t.observe(Duration::from_secs(i * 60), &snap(i * 1000, i * 10));
        }
        let s = &t.statuses()[0];
        assert!((s.burn_short - 10.0).abs() < 1e-9, "{}", s.burn_short);
        assert!((s.burn_long - 10.0).abs() < 1e-9, "{}", s.burn_long);
        assert!(s.burning);
    }

    #[test]
    fn old_burst_clears_once_windows_pass() {
        // Errors only in the first minute; after 10 clean minutes both
        // windows look clean again.
        let mut t = tracker();
        t.observe(Duration::from_secs(0), &snap(0, 0));
        t.observe(Duration::from_secs(60), &snap(1000, 100));
        for i in 2..=12u64 {
            t.observe(Duration::from_secs(i * 60), &snap(i * 1000, 100));
        }
        let s = &t.statuses()[0];
        assert_eq!(s.burn_short, 0.0);
        assert_eq!(s.burn_long, 0.0);
        assert!(!s.burning);
    }

    #[test]
    fn short_blip_does_not_burn_long_window() {
        // A burst confined to the newest minute burns the short window
        // hard but dilutes across the long window below 1.0.
        let mut t = tracker();
        for i in 0..=4u64 {
            t.observe(Duration::from_secs(i * 60), &snap(i * 100_000, 0));
        }
        // Minute 5: 100k more requests, 150 errors (0.15% of the burst,
        // but only 0.03% of the 500k long-window total).
        t.observe(Duration::from_secs(300), &snap(500_000, 150));
        let s = &t.statuses()[0];
        assert!(s.burn_short > 1.0, "short {}", s.burn_short);
        assert!(s.burn_long < 1.0, "long {}", s.burn_long);
        assert!(!s.burning);
    }

    #[test]
    fn latency_slo_counts_buckets_at_or_below_threshold() {
        let spec = SloSpec {
            name: "request_latency",
            objective: 0.99,
            kind: SloKind::Latency {
                histogram: "server.request_us",
                threshold_us: 262144.0,
            },
        };
        let r = Recorder::new();
        let h = r.histogram("server.request_us");
        for _ in 0..99 {
            h.record(1000.0); // well under threshold
        }
        h.record(1e9); // one sample far over
        let (good, total) = spec.good_total(&r.snapshot());
        assert_eq!(total, 100);
        assert_eq!(good, 99);
    }

    #[test]
    fn latency_slo_burns_when_tail_exceeds_budget() {
        let spec = SloSpec {
            name: "request_latency",
            objective: 0.99,
            kind: SloKind::Latency {
                histogram: "server.request_us",
                threshold_us: 262144.0,
            },
        };
        let r = Recorder::new();
        let h = r.histogram("server.request_us");
        let mut t = SloTracker::new(vec![spec], SloWindows::default());
        t.observe(Duration::from_secs(0), &r.snapshot());
        for _ in 0..90 {
            h.record(1000.0);
        }
        for _ in 0..10 {
            h.record(1e9); // 10% slow — 10× the 1% budget
        }
        t.observe(Duration::from_secs(60), &r.snapshot());
        let s = &t.statuses()[0];
        assert!((s.burn_short - 10.0).abs() < 1e-9, "{}", s.burn_short);
        assert!(s.burning);
    }

    #[test]
    fn missing_metrics_read_as_zero_traffic() {
        let mut t = tracker();
        t.observe(Duration::from_secs(0), &Snapshot::default());
        t.observe(Duration::from_secs(60), &Snapshot::default());
        let s = &t.statuses()[0];
        assert_eq!(s.total, 0);
        assert!(!s.burning);
    }

    #[test]
    fn history_stays_bounded() {
        let mut t = tracker();
        for i in 0..10_000u64 {
            t.observe(Duration::from_secs(i * 2), &snap(i, 0));
        }
        // 2× the 5-minute long window at one sample per 2s ≈ 300 + slack.
        assert!(t.history[0].len() < 400, "{}", t.history[0].len());
    }

    #[test]
    fn publish_exports_gauges() {
        let r = Recorder::new();
        let mut t = tracker();
        for i in 0..=5u64 {
            t.observe(Duration::from_secs(i * 60), &snap(i * 1000, i * 10));
        }
        let statuses = t.publish(&r);
        assert!(statuses[0].burning);
        let snap = r.snapshot();
        assert_eq!(
            snap.gauges
                .get("slo.request_availability.burning")
                .copied()
                .unwrap_or(0.0),
            1.0
        );
        assert!(snap
            .to_prometheus()
            .contains("orex_slo_request_availability_burn_short"));
    }

    #[test]
    fn default_slos_cover_request_and_query_paths() {
        let slos = default_slos();
        assert!(slos.iter().any(|s| s.name == "request_availability"));
        assert!(slos.iter().any(|s| s.name == "request_latency"));
        for s in &slos {
            assert!(s.objective > 0.9 && s.objective < 1.0);
        }
    }
}
