//! Per-query hierarchical tracing.
//!
//! A [`Tracer`] mints a fresh [`TraceId`] for every root span and nests
//! child spans under whatever span is active on the current thread, so
//! engines get parent/child structure without threading context through
//! public signatures. Completed spans — start/end timestamps, key=value
//! attributes, instant events — land in a bounded lock-free ring buffer:
//! steady-state memory is fixed (oldest spans are evicted first) and a
//! disabled tracer costs exactly one branch per span with no allocation
//! and no ring write.
//!
//! Drain the ring with [`Tracer::drain`] and render it with the
//! [`crate::export`] module (Chrome trace-event JSON or folded
//! flamegraph stacks).
//!
//! Under real traffic, recording *every* trace just fills the ring with
//! the most recent queries rather than the most interesting ones. Per
//! the 1-in-N sampling of [`Tracer::set_sample_every`] (or the
//! `OREX_TRACE_SAMPLE` environment variable), unsampled traces buffer
//! their spans until the root completes and are then discarded — unless
//! the root ran at least [`Tracer::set_slow_threshold`]
//! (`OREX_TRACE_SLOW_US`), in which case the whole trace is promoted to
//! the ring anyway. Slow outliers are always retained.

use std::cell::RefCell;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use crate::ring::{Ring, Sequenced};

/// Identifies one query's trace; every root span mints a fresh id and
/// its descendants inherit it.
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub struct TraceId(pub u64);

/// Identifies one span within a tracer.
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub struct SpanId(pub u64);

/// Distributed trace context carried across process boundaries in the
/// `X-Orex-Trace` header, W3C-traceparent style:
/// `<trace:016x>-<parent_span:016x>-<flags:02x>`.
///
/// The flags byte carries the ingress edge's sampling decision so every
/// process in the request path agrees on it:
///
/// - [`TraceContext::SAMPLED`] (0x01): the trace won the sampling draw
///   at the ingress edge; every hop records unconditionally, overriding
///   its local 1-in-N draw.
/// - [`TraceContext::NO_PROMOTE`] (0x02): the trace is *explicitly*
///   unsampled — a slow span downstream must not resurrect it via the
///   slow-trace promotion path.
/// - neither bit: unsampled but promotable — a hop whose root crosses
///   its slow threshold promotes the trace and reports the id (see
///   [`Tracer::take_promoted`]) so the ingress edge can retro-fetch
///   sibling spans.
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct TraceContext {
    /// Trace the remote caller is inside.
    pub trace: TraceId,
    /// The caller's span, adopted as the local root's parent.
    pub parent: SpanId,
    /// Sampling flags; see the type docs.
    pub flags: u8,
}

impl TraceContext {
    /// Header name the context travels in (lower-cased, the form header
    /// lookups use).
    pub const HEADER: &'static str = "x-orex-trace";
    /// Flags bit: the ingress edge sampled this trace.
    pub const SAMPLED: u8 = 0x01;
    /// Flags bit: explicitly unsampled; slow-trace promotion is
    /// suppressed fleet-wide.
    pub const NO_PROMOTE: u8 = 0x02;

    /// Whether the ingress edge sampled this trace.
    pub fn sampled(&self) -> bool {
        self.flags & Self::SAMPLED != 0
    }

    /// Whether slow-trace promotion is suppressed for this trace.
    pub fn no_promote(&self) -> bool {
        self.flags & Self::NO_PROMOTE != 0
    }

    /// Parses a header value of the form
    /// `<trace:016x>-<parent:016x>-<flags:02x>`. Unknown flag bits are
    /// preserved; a zero trace id (no trace) and malformed input parse
    /// as `None`.
    pub fn parse(value: &str) -> Option<Self> {
        let mut parts = value.trim().splitn(3, '-');
        let trace = u64::from_str_radix(parts.next()?, 16).ok()?;
        let parent = u64::from_str_radix(parts.next()?, 16).ok()?;
        let flags = u8::from_str_radix(parts.next()?, 16).ok()?;
        if trace == 0 {
            return None;
        }
        Some(Self {
            trace: TraceId(trace),
            parent: SpanId(parent),
            flags,
        })
    }

    /// Renders the header value [`TraceContext::parse`] reads.
    pub fn header_value(&self) -> String {
        format!(
            "{:016x}-{:016x}-{:02x}",
            self.trace.0, self.parent.0, self.flags
        )
    }
}

/// A typed span attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
}

/// A point-in-time marker recorded inside a span.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event name.
    pub name: &'static str,
    /// Nanoseconds since the tracer's epoch.
    pub at_ns: u64,
}

/// A completed span drained from the ring buffer.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace: TraceId,
    /// This span's id, unique within the tracer.
    pub id: SpanId,
    /// Parent span, `None` for roots. The parent may have been evicted
    /// from the ring; exporters treat such orphans as roots.
    pub parent: Option<SpanId>,
    /// Span name (`crate.component.phase` by convention).
    pub name: &'static str,
    /// Start time, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// End time, nanoseconds since the tracer's epoch.
    pub end_ns: u64,
    /// Attributes attached via [`ActiveSpan::attr_u64`] and friends.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Instant events attached via [`ActiveSpan::event`].
    pub events: Vec<TraceEvent>,
    /// Logical id of the thread the span ran on (small dense integers,
    /// not OS thread ids).
    pub tid: u64,
    /// Completion order: the ring ticket assigned when the span ended.
    /// [`Tracer::drain`] returns records sorted by this.
    pub ticket: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

// The span sink is the shared bounded lock-free ring (see
// [`crate::ring`]); records restore completion order via their ticket.
impl Sequenced for SpanRecord {
    fn set_seq(&mut self, seq: u64) {
        self.ticket = seq;
    }

    fn seq(&self) -> u64 {
        self.ticket
    }
}

/// 1-in-N trace sampling state; see [`Tracer::set_sample_every`].
struct Sampling {
    /// Record 1-in-`every` root spans (and their descendants); `<= 1`
    /// means every trace is recorded.
    every: AtomicU64,
    /// Unsampled traces whose root runs at least this long are promoted
    /// to the ring anyway; `u64::MAX` = never promote.
    slow_ns: AtomicU64,
    /// Root spans seen, driving the 1-in-N decision.
    roots: AtomicU64,
    /// Completed spans of still-open *unsampled* traces, keyed by trace
    /// id and held until their root decides promote-or-discard.
    pending: Mutex<HashMap<u64, Vec<SpanRecord>>>,
    /// Trace ids promoted by the slow threshold since the last
    /// [`Tracer::take_promoted`] — how a worker tells its ingress edge
    /// to retro-fetch sibling spans before they evict.
    promoted: Mutex<Vec<u64>>,
}

/// At most this many unsampled traces buffer pending spans at once —
/// a leak guard, since well-formed traces drain when their root drops.
const MAX_PENDING_TRACES: usize = 256;

/// At most this many promoted trace ids queue for reporting; beyond it
/// the oldest unreported id is dropped (the trace stays in the ring).
const MAX_PROMOTED_IDS: usize = 64;

/// Entropy-derived base for trace ids, so independently started
/// processes (router and each worker) almost surely mint from disjoint
/// ranges — a fleet stitches traces by id, and two processes both
/// counting up from 1 would collide on every query. SplitMix64 over the
/// process id and the wall clock; deterministic under miri, which
/// isolates the clock.
fn trace_id_seed() -> u64 {
    #[cfg(miri)]
    {
        1
    }
    #[cfg(not(miri))]
    {
        static SEED_SALT: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_nanos() as u64);
        // ORDERING: Relaxed — pure salt allocation; only uniqueness matters.
        let salt = SEED_SALT.fetch_add(1, Ordering::Relaxed);
        let mut x = nanos
            ^ (u64::from(std::process::id()) << 32)
            ^ salt.wrapping_mul(0xA076_1D64_78BD_642F);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        // Nonzero: TraceContext::parse treats trace id 0 as "no trace".
        (x ^ (x >> 31)) | 1
    }
}

struct TracerInner {
    /// Distinguishes tracers on the shared thread-local span stack.
    id: u64,
    /// All timestamps are offsets from this instant.
    epoch: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    ring: Ring<SpanRecord>,
    sampling: Sampling,
}

impl TracerInner {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

#[derive(Clone, Copy)]
struct StackEntry {
    tracer: u64,
    trace: u64,
    span: u64,
    /// Span name, mirrored to the continuous profiler's per-thread
    /// slot (see [`crate::profile`]) on every push/pop.
    name: &'static str,
    /// Whether this trace won the 1-in-N sampling draw (children
    /// inherit the root's decision).
    sampled: bool,
    /// Whether slow-trace promotion is suppressed for this trace
    /// (propagated from an explicitly-unsampled remote context).
    no_promote: bool,
}

thread_local! {
    /// Active-span stack shared by all tracers on this thread; entries
    /// are tagged with their tracer's id so independent tracers (e.g. a
    /// test's private tracer next to the global one) never adopt each
    /// other's spans as parents.
    static SPAN_STACK: RefCell<Vec<StackEntry>> = const { RefCell::new(Vec::new()) };
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // ORDERING: Relaxed — pure id allocation; only uniqueness matters.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Mints per-query trace ids and nested spans; see the module docs.
/// Cloning shares the underlying ring.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// Ring capacity used by the global [`tracer`].
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An enabled tracer whose ring holds up to `capacity` completed
    /// spans (minimum 1); older spans are evicted oldest-first.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(TracerInner {
                // ORDERING: Relaxed — pure id allocation.
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                next_trace: AtomicU64::new(trace_id_seed()),
                next_span: AtomicU64::new(1),
                ring: Ring::new(capacity),
                sampling: Sampling {
                    every: AtomicU64::new(1),
                    slow_ns: AtomicU64::new(u64::MAX),
                    roots: AtomicU64::new(0),
                    pending: Mutex::new(HashMap::new()),
                    promoted: Mutex::new(Vec::new()),
                },
            })),
        }
    }

    /// A tracer whose every operation is a no-op: spans cost one branch,
    /// allocate nothing, and never touch a ring.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// False for a [`Tracer::disabled`] tracer.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.ring.capacity())
    }

    /// Samples 1-in-`every` traces: only every `every`-th root span (and
    /// its descendants) commits to the ring; the rest buffer until their
    /// root completes and are discarded — unless promoted by the slow
    /// threshold. `0` and `1` both mean "record every trace" (the
    /// default). No-op on a disabled tracer.
    pub fn set_sample_every(&self, every: u64) {
        if let Some(inner) = &self.inner {
            // Release-publish the new rate so a thread that observes it
            // (Acquire loads in `span`/`sample_every`) also observes any
            // configuration written before this call.
            inner.sampling.every.store(every.max(1), Ordering::Release);
        }
    }

    /// The current 1-in-N sampling rate (1 = every trace).
    pub fn sample_every(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(1, |i| i.sampling.every.load(Ordering::Acquire).max(1))
    }

    /// Unsampled traces whose *root* span runs at least `threshold` are
    /// committed to the ring anyway, so slow outliers are always
    /// retained under sampling. `None` (the default) never promotes.
    pub fn set_slow_threshold(&self, threshold: Option<Duration>) {
        if let Some(inner) = &self.inner {
            let ns = threshold.map_or(u64::MAX, |d| {
                u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
            });
            // Release-publish, pairing with the Acquire loads in
            // `slow_threshold` and the root-drop promotion check.
            inner.sampling.slow_ns.store(ns, Ordering::Release);
        }
    }

    /// The always-trace slow threshold, when one is set.
    pub fn slow_threshold(&self) -> Option<Duration> {
        let ns = self
            .inner
            .as_ref()
            .map_or(u64::MAX, |i| i.sampling.slow_ns.load(Ordering::Acquire));
        (ns != u64::MAX).then(|| Duration::from_nanos(ns))
    }

    /// Opens a span. If this thread already has an active span from this
    /// tracer, the new span becomes its child and joins its trace;
    /// otherwise it becomes the root of a freshly minted trace. The span
    /// closes (and its record enters the ring) when the guard drops.
    pub fn span(&self, name: &'static str) -> ActiveSpan {
        self.open(name, None)
    }

    /// Opens a span under a remote trace context (the server's request
    /// path adopting an incoming `X-Orex-Trace` header). With
    /// `Some(context)` the span becomes a *remote-parent root*: it joins
    /// the caller's trace, records the caller's span as its parent, and
    /// takes the propagated sampling decision instead of drawing
    /// locally — but it still runs the root-side promote-or-discard
    /// decision when it closes, so an unsampled-but-promotable remote
    /// trace whose local work is slow gets promoted (and reported, see
    /// [`Tracer::take_promoted`]) while a [`TraceContext::NO_PROMOTE`]
    /// one never is. With `None` this is exactly [`Tracer::span`].
    pub fn span_with_context(
        &self,
        name: &'static str,
        context: Option<TraceContext>,
    ) -> ActiveSpan {
        self.open(name, context)
    }

    fn open(&self, name: &'static str, context: Option<TraceContext>) -> ActiveSpan {
        let Some(inner) = &self.inner else {
            return ActiveSpan {
                inner: None,
                _not_send: PhantomData,
            };
        };
        // ORDERING: Relaxed — pure id allocation; only uniqueness matters.
        let id = SpanId(inner.next_span.fetch_add(1, Ordering::Relaxed));
        let (trace, parent, sampled, no_promote, root) = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // A remote context wins over local nesting: it only arrives
            // at ingress points where no local span is open, and the
            // propagated decision must not be re-drawn.
            let decided = match context {
                Some(ctx) => Some((
                    ctx.trace,
                    Some(ctx.parent),
                    ctx.sampled(),
                    ctx.no_promote(),
                    true,
                )),
                None => stack.iter().rev().find(|e| e.tracer == inner.id).map(|e| {
                    (
                        TraceId(e.trace),
                        Some(SpanId(e.span)),
                        e.sampled,
                        e.no_promote,
                        false,
                    )
                }),
            };
            let (trace, parent, sampled, no_promote, root) = decided.unwrap_or_else(|| {
                // Acquire pairs with the Release store in
                // `set_sample_every`: a root that sees the new rate also
                // sees every config write that preceded it.
                let every = inner.sampling.every.load(Ordering::Acquire);
                let sampled =
                    every <= 1 || inner.sampling.roots.fetch_add(1, Ordering::Relaxed) % every == 0; // ORDERING: Relaxed — monotone draw counter; no data published.
                (
                    TraceId(inner.next_trace.fetch_add(1, Ordering::Relaxed)), // ORDERING: Relaxed — pure id allocation.
                    None,
                    sampled,
                    false,
                    true,
                )
            });
            stack.push(StackEntry {
                tracer: inner.id,
                trace: trace.0,
                span: id.0,
                name,
                sampled,
                no_promote,
            });
            crate::profile::mirror(stack.iter().map(|e| e.name));
            (trace, parent, sampled, no_promote, root)
        });
        let record = SpanRecord {
            trace,
            id,
            parent,
            name,
            start_ns: inner.now_ns(),
            end_ns: 0,
            attrs: Vec::new(),
            events: Vec::new(),
            tid: TID.with(|t| *t),
            ticket: 0,
        };
        ActiveSpan {
            inner: Some(Box::new(ActiveInner {
                tracer: Arc::clone(inner),
                record,
                sampled,
                no_promote,
                root,
            })),
            _not_send: PhantomData,
        }
    }

    /// Removes and returns every completed span in the ring, oldest
    /// first. Spans still open stay untracked until their guards drop.
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.ring.drain())
    }

    /// Nanoseconds since this tracer's epoch — the clock every span's
    /// `start_ns`/`end_ns` is stamped with. Exposed so processes can
    /// exchange clock readings (`X-Orex-Clock` on health probes) and a
    /// stitching ingress can align per-process span timestamps. 0 when
    /// disabled.
    pub fn now_ns(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.now_ns())
    }

    /// Removes and returns the trace ids promoted by the slow threshold
    /// since the last call. A worker surfaces these to its ingress edge
    /// (the `X-Orex-Promoted` response header) so the router can
    /// retro-fetch the sibling spans of a fleet-promoted trace before
    /// they evict.
    pub fn take_promoted(&self) -> Vec<u64> {
        self.inner.as_ref().map_or_else(Vec::new, |i| {
            std::mem::take(
                &mut *i
                    .sampling
                    .promoted
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            )
        })
    }

    /// The innermost span of this tracer still open on the current
    /// thread, as `(trace, span)` ids — how the log module stamps each
    /// record with its trace context. `None` when no span is open here
    /// (or the tracer is disabled).
    pub fn current_span(&self) -> Option<(TraceId, SpanId)> {
        let inner = self.inner.as_ref()?;
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|e| e.tracer == inner.id)
                .map(|e| (TraceId(e.trace), SpanId(e.span)))
        })
    }

    /// The trace the current thread is inside, but only when that trace
    /// won the sampling draw and will be retained in the ring — the id
    /// exemplars should point at, since an unsampled trace's id would
    /// 404 on `GET /trace/<id>`. `None` when no span is open here, the
    /// trace is unsampled, or the tracer is disabled.
    pub fn current_sampled_trace(&self) -> Option<TraceId> {
        let inner = self.inner.as_ref()?;
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|e| e.tracer == inner.id)
                .and_then(|e| e.sampled.then_some(TraceId(e.trace)))
        })
    }

    /// The current thread's innermost open span of this tracer as a
    /// propagation context — what an outbound hop, or a job handed off
    /// to a background thread, should carry so remote (or deferred)
    /// spans join this trace. `None` when no span is open here or the
    /// tracer is disabled.
    pub fn current_context(&self) -> Option<TraceContext> {
        let inner = self.inner.as_ref()?;
        SPAN_STACK.with(|s| {
            s.borrow()
                .iter()
                .rev()
                .find(|e| e.tracer == inner.id)
                .map(|e| TraceContext {
                    trace: TraceId(e.trace),
                    parent: SpanId(e.span),
                    flags: if e.sampled {
                        TraceContext::SAMPLED
                    } else if e.no_promote {
                        TraceContext::NO_PROMOTE
                    } else {
                        0
                    },
                })
        })
    }
}

/// Logical id of the current thread (the same small dense integers
/// stamped into [`SpanRecord::tid`]), for the log module.
pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

struct ActiveInner {
    tracer: Arc<TracerInner>,
    record: SpanRecord,
    sampled: bool,
    /// Slow-trace promotion suppressed (explicitly-unsampled context).
    no_promote: bool,
    /// Whether this span runs the root-side promote-or-discard decision
    /// on drop. Local roots have no parent; a *remote-parent* root has
    /// `record.parent == Some(remote span)` yet is still the outermost
    /// span of this process's part of the trace, so `parent.is_some()`
    /// cannot distinguish the two.
    root: bool,
}

/// Guard for an open span; see [`Tracer::span`]. Dropping it stamps the
/// end timestamp and commits the record to the tracer's ring.
///
/// Deliberately `!Send`: parenting lives in a thread-local stack, so a
/// guard must drop on the thread that opened it.
pub struct ActiveSpan {
    inner: Option<Box<ActiveInner>>,
    _not_send: PhantomData<*const ()>,
}

impl ActiveSpan {
    /// True when this span will be recorded (its tracer is enabled) —
    /// lets callers skip computing expensive attribute values.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace this span belongs to (`None` when disabled).
    pub fn trace_id(&self) -> Option<TraceId> {
        self.inner.as_ref().map(|i| i.record.trace)
    }

    /// True when this span's trace won the sampling draw and will land
    /// in the ring — the condition under which its trace id is worth
    /// exposing as an exemplar.
    pub fn is_sampled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.sampled)
    }

    /// The trace context a downstream hop should adopt: this trace,
    /// this span as the remote parent, and the trace's sampling
    /// decision in the flags byte. Inject it as the `X-Orex-Trace`
    /// header ([`TraceContext::HEADER`]) on outbound requests. `None`
    /// when the tracer is disabled.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|i| TraceContext {
            trace: i.record.trace,
            parent: i.record.id,
            flags: if i.sampled {
                TraceContext::SAMPLED
            } else if i.no_promote {
                TraceContext::NO_PROMOTE
            } else {
                0
            },
        })
    }

    /// Attaches an unsigned-integer attribute.
    #[inline]
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner.record.attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attaches a float attribute.
    #[inline]
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            inner.record.attrs.push((key, AttrValue::F64(value)));
        }
    }

    /// Attaches a string attribute. The value is only materialised when
    /// the span is recording.
    #[inline]
    pub fn attr_str(&mut self, key: &'static str, value: impl AsRef<str>) {
        if let Some(inner) = &mut self.inner {
            inner
                .record
                .attrs
                .push((key, AttrValue::Str(value.as_ref().to_string())));
        }
    }

    /// Records an instant event at the current time inside this span.
    #[inline]
    pub fn event(&mut self, name: &'static str) {
        if let Some(inner) = &mut self.inner {
            let at_ns = inner.tracer.now_ns();
            inner.record.events.push(TraceEvent { name, at_ns });
        }
    }
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let ActiveInner {
            tracer,
            mut record,
            sampled,
            no_promote,
            root,
        } = *inner;
        record.end_ns = tracer.now_ns();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Usually the top of the stack, but search downward so an
            // out-of-order drop (e.g. guards stored in a struct) can't
            // corrupt unrelated entries.
            if let Some(pos) = stack
                .iter()
                .rposition(|e| e.tracer == tracer.id && e.span == record.id.0)
            {
                stack.remove(pos);
            }
            crate::profile::mirror(stack.iter().map(|e| e.name));
        });
        if sampled {
            tracer.ring.push(Box::new(record));
            return;
        }
        if !root {
            // Unsampled child: hold it until the root decides whether
            // the trace is promoted (slow) or discarded. A poisoned
            // lock is recovered — every mutation of the pending map
            // completes or never starts, so the map stays structurally
            // valid, and a span guard's Drop must never panic.
            let mut pending = tracer
                .sampling
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let at_cap =
                pending.len() >= MAX_PENDING_TRACES && !pending.contains_key(&record.trace.0);
            if !at_cap {
                let buf = pending.entry(record.trace.0).or_default();
                if buf.len() < tracer.ring.capacity() {
                    buf.push(record);
                }
            }
            return;
        }
        // Unsampled root (local or remote-parent): this process's part
        // of the trace is complete. Promote everything if the root
        // crossed the slow threshold — unless the context explicitly
        // forbids promotion — otherwise drop it all.
        let buffered = tracer
            .sampling
            .pending
            .lock()
            .unwrap_or_else(PoisonError::into_inner) // recovered: see above, Drop must not panic
            .remove(&record.trace.0);
        // Acquire pairs with the Release store in `set_slow_threshold`.
        if !no_promote && record.duration_ns() >= tracer.sampling.slow_ns.load(Ordering::Acquire) {
            let trace = record.trace.0;
            for span in buffered.into_iter().flatten() {
                tracer.ring.push(Box::new(span));
            }
            tracer.ring.push(Box::new(record));
            // Queue the id for take_promoted so the ingress edge learns
            // a slow trace was locally promoted. Recovered poison: see
            // above, Drop must not panic.
            let mut promoted = tracer
                .sampling
                .promoted
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if promoted.len() < MAX_PROMOTED_IDS {
                promoted.push(trace);
            }
        }
    }
}

static GLOBAL_TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-wide tracer the engine crates open spans on. Enabled by
/// default with a [`Tracer::DEFAULT_CAPACITY`]-span ring; setting
/// `OREX_TELEMETRY=0|off|false` starts it disabled, making every span a
/// single-branch no-op. `OREX_TRACE_SAMPLE=N` starts it sampling 1-in-N
/// traces and `OREX_TRACE_SLOW_US=T` promotes any unsampled trace whose
/// root ran at least `T` microseconds.
pub fn tracer() -> &'static Tracer {
    GLOBAL_TRACER.get_or_init(|| {
        // Piggy-back continuous profiling on tracer initialization, so
        // `OREX_PROFILE_HZ=97` profiles any orex process that opens a
        // span, with no per-binary wiring.
        crate::profile::init_from_env();
        if crate::env_disabled() {
            Tracer::disabled()
        } else {
            let t = Tracer::new(Tracer::DEFAULT_CAPACITY);
            if let Some(every) = std::env::var("OREX_TRACE_SAMPLE")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
            {
                t.set_sample_every(every);
            }
            if let Some(us) = std::env::var("OREX_TRACE_SLOW_US")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
            {
                t.set_slow_threshold(Some(Duration::from_micros(us)));
            }
            t
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_then_children_share_a_trace() {
        let t = Tracer::new(16);
        {
            let root = t.span("root");
            let root_trace = root.trace_id().unwrap();
            {
                let child = t.span("child");
                assert_eq!(child.trace_id(), Some(root_trace));
                drop(t.span("grandchild"));
            }
        }
        let records = t.drain();
        assert_eq!(records.len(), 3);
        // Completion order: grandchild, child, root.
        assert_eq!(records[0].name, "grandchild");
        assert_eq!(records[2].name, "root");
        let root = &records[2];
        let child = &records[1];
        let grandchild = &records[0];
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(grandchild.parent, Some(child.id));
        assert!(records.iter().all(|r| r.trace == root.trace));
        assert!(child.start_ns >= root.start_ns && child.end_ns <= root.end_ns);
    }

    #[test]
    fn separate_roots_get_separate_traces() {
        let t = Tracer::new(16);
        drop(t.span("a"));
        drop(t.span("b"));
        let records = t.drain();
        assert_eq!(records.len(), 2);
        assert_ne!(records[0].trace, records[1].trace);
        assert!(records.iter().all(|r| r.parent.is_none()));
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let t = Tracer::new(2);
        drop(t.span("one"));
        drop(t.span("two"));
        drop(t.span("three"));
        let names: Vec<_> = t.drain().iter().map(|r| r.name).collect();
        assert_eq!(names, ["two", "three"]);
        assert!(t.drain().is_empty(), "drain removes records");
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let mut span = t.span("root");
        assert!(!span.is_recording());
        assert_eq!(span.trace_id(), None);
        span.attr_u64("k", 1);
        span.event("e");
        drop(span);
        assert!(t.drain().is_empty());
        // The shared stack stays untouched for other tracers.
        SPAN_STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn attributes_and_events_survive_the_ring() {
        let t = Tracer::new(4);
        {
            let mut span = t.span("work");
            span.attr_u64("n", 7);
            span.attr_f64("residual", 0.125);
            span.attr_str("query", "multicast");
            span.event("pruned");
        }
        let records = t.drain();
        let r = &records[0];
        assert_eq!(r.attrs[0], ("n", AttrValue::U64(7)));
        assert_eq!(r.attrs[1], ("residual", AttrValue::F64(0.125)));
        assert_eq!(r.attrs[2], ("query", AttrValue::Str("multicast".into())));
        assert_eq!(r.events.len(), 1);
        assert_eq!(r.events[0].name, "pruned");
        assert!(r.events[0].at_ns >= r.start_ns && r.events[0].at_ns <= r.end_ns);
    }

    #[test]
    fn private_tracers_do_not_adopt_each_others_spans() {
        let a = Tracer::new(4);
        let b = Tracer::new(4);
        let _outer = a.span("a.root");
        drop(b.span("b.root"));
        let b_records = b.drain();
        assert_eq!(b_records[0].parent, None, "b must not parent under a");
    }

    #[test]
    fn sampling_records_one_in_n_traces() {
        let t = Tracer::new(64);
        t.set_sample_every(2);
        assert_eq!(t.sample_every(), 2);
        for _ in 0..4 {
            let _root = t.span("root");
            drop(t.span("child"));
        }
        let records = t.drain();
        // Roots 0 and 2 win the draw (0 % 2 == 0), each with one child.
        assert_eq!(records.len(), 4);
        let traces: std::collections::HashSet<_> = records.iter().map(|r| r.trace).collect();
        assert_eq!(traces.len(), 2);
        assert_eq!(records.iter().filter(|r| r.name == "root").count(), 2);
        // Discarded traces left nothing pending.
        let inner = t.inner.as_ref().unwrap();
        assert!(inner.sampling.pending.lock().unwrap().is_empty());
    }

    #[test]
    fn slow_unsampled_traces_are_promoted() {
        let t = Tracer::new(64);
        t.set_sample_every(u64::MAX); // only root 0 samples; everything after loses
        t.set_slow_threshold(Some(Duration::ZERO)); // ...but everything is "slow"
        assert_eq!(t.slow_threshold(), Some(Duration::ZERO));
        drop(t.span("first")); // sampled (draw 0)
        {
            let _root = t.span("slow.root"); // unsampled, promoted on drop
            drop(t.span("slow.child"));
        }
        let records = t.drain();
        let names: Vec<_> = records.iter().map(|r| r.name).collect();
        assert_eq!(names, ["first", "slow.child", "slow.root"]);
        let root = records.iter().find(|r| r.name == "slow.root").unwrap();
        let child = records.iter().find(|r| r.name == "slow.child").unwrap();
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(child.trace, root.trace);
    }

    #[test]
    fn discarded_traces_clear_their_pending_buffer() {
        let t = Tracer::new(64);
        t.set_sample_every(u64::MAX);
        drop(t.span("winner")); // draw 0: sampled
        {
            let _root = t.span("loser.root");
            drop(t.span("loser.child"));
        }
        let names: Vec<_> = t.drain().iter().map(|r| r.name).collect();
        assert_eq!(names, ["winner"], "unsampled trace fully discarded");
        let inner = t.inner.as_ref().unwrap();
        assert!(
            inner.sampling.pending.lock().unwrap().is_empty(),
            "root drop must free the buffered children"
        );
    }

    #[test]
    fn sampling_disabled_by_default() {
        let t = Tracer::new(16);
        assert_eq!(t.sample_every(), 1);
        assert_eq!(t.slow_threshold(), None);
        for _ in 0..5 {
            drop(t.span("root"));
        }
        assert_eq!(t.drain().len(), 5);
    }

    #[test]
    fn context_header_roundtrips() {
        let ctx = TraceContext {
            trace: TraceId(0xDEAD_BEEF_1234_5678),
            parent: SpanId(42),
            flags: TraceContext::SAMPLED,
        };
        let value = ctx.header_value();
        assert_eq!(value, "deadbeef12345678-000000000000002a-01");
        assert_eq!(TraceContext::parse(&value), Some(ctx));
        assert!(ctx.sampled());
        assert!(!ctx.no_promote());
        let unsampled = TraceContext {
            flags: TraceContext::NO_PROMOTE,
            ..ctx
        };
        let parsed = TraceContext::parse(&unsampled.header_value()).unwrap();
        assert!(!parsed.sampled());
        assert!(parsed.no_promote());
    }

    #[test]
    fn context_parse_rejects_malformed() {
        for bad in [
            "",
            "nothex-0000000000000001-01",
            "0000000000000001-nothex-01",
            "0000000000000001-0000000000000002-zz",
            "0000000000000001-0000000000000002",
            "0000000000000000-0000000000000002-01", // zero trace id
            "00000000000000010000000000000002-01",
        ] {
            assert!(TraceContext::parse(bad).is_none(), "{bad:?} must not parse");
        }
        // Whitespace around a well-formed value is tolerated (header
        // values arrive trimmed, but be safe).
        assert!(TraceContext::parse(" 0000000000000001-0000000000000002-00 ").is_some());
    }

    #[test]
    fn remote_context_adopts_trace_and_parent() {
        let t = Tracer::new(16);
        let ctx = TraceContext {
            trace: TraceId(777),
            parent: SpanId(12),
            flags: TraceContext::SAMPLED,
        };
        {
            let root = t.span_with_context("server.request", Some(ctx));
            assert_eq!(root.trace_id(), Some(TraceId(777)));
            assert!(root.is_sampled());
            drop(t.span("child"));
        }
        let records = t.drain();
        assert_eq!(records.len(), 2);
        let root = records.iter().find(|r| r.name == "server.request").unwrap();
        let child = records.iter().find(|r| r.name == "child").unwrap();
        assert_eq!(root.trace, TraceId(777));
        assert_eq!(root.parent, Some(SpanId(12)), "remote parent preserved");
        assert_eq!(child.trace, TraceId(777));
        assert_eq!(child.parent, Some(root.id));
    }

    #[test]
    fn span_with_context_none_is_a_plain_span() {
        let t = Tracer::new(16);
        drop(t.span_with_context("root", None));
        let records = t.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].parent, None);
    }

    #[test]
    fn propagated_sampled_flag_overrides_local_draw() {
        let t = Tracer::new(64);
        t.set_sample_every(u64::MAX);
        drop(t.span("winner")); // consume draw 0: every later local root loses
        drop(t.span("local.loser"));
        let ctx = TraceContext {
            trace: TraceId(5000),
            parent: SpanId(1),
            flags: TraceContext::SAMPLED,
        };
        {
            let _root = t.span_with_context("remote.request", Some(ctx));
            drop(t.span("remote.child"));
        }
        let names: Vec<_> = t.drain().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            ["winner", "remote.child", "remote.request"],
            "the propagated decision records despite the lost local draw"
        );
    }

    #[test]
    fn propagated_unsampled_context_does_not_consume_a_local_draw() {
        let t = Tracer::new(64);
        t.set_sample_every(2); // draws 0, 2, 4... win
        let ctx = TraceContext {
            trace: TraceId(6000),
            parent: SpanId(1),
            flags: 0,
        };
        drop(t.span_with_context("remote", Some(ctx))); // no draw consumed
        drop(t.span("local.a")); // draw 0: sampled
        drop(t.span("local.b")); // draw 1: unsampled
        let names: Vec<_> = t.drain().iter().map(|r| r.name).collect();
        assert_eq!(names, ["local.a"]);
    }

    #[test]
    fn slow_promotion_does_not_resurrect_an_explicitly_unsampled_trace() {
        let t = Tracer::new(64);
        t.set_slow_threshold(Some(Duration::ZERO)); // everything is "slow"
        let ctx = TraceContext {
            trace: TraceId(7000),
            parent: SpanId(1),
            flags: TraceContext::NO_PROMOTE,
        };
        {
            let _root = t.span_with_context("remote.request", Some(ctx));
            drop(t.span("remote.child"));
        }
        assert!(
            t.drain().is_empty(),
            "an explicitly-unsampled trace must stay discarded"
        );
        assert!(t.take_promoted().is_empty());
        let inner = t.inner.as_ref().unwrap();
        assert!(inner.sampling.pending.lock().unwrap().is_empty());
    }

    #[test]
    fn promotable_remote_trace_promotes_and_reports_its_id() {
        let t = Tracer::new(64);
        t.set_slow_threshold(Some(Duration::ZERO));
        let ctx = TraceContext {
            trace: TraceId(8000),
            parent: SpanId(1),
            flags: 0, // unsampled but promotable
        };
        {
            let _root = t.span_with_context("remote.request", Some(ctx));
            drop(t.span("remote.child"));
        }
        let names: Vec<_> = t.drain().iter().map(|r| r.name).collect();
        assert_eq!(names, ["remote.child", "remote.request"]);
        assert_eq!(t.take_promoted(), vec![8000]);
        assert!(t.take_promoted().is_empty(), "take drains the queue");
    }

    #[test]
    fn local_slow_promotions_report_their_ids_too() {
        let t = Tracer::new(64);
        t.set_sample_every(u64::MAX);
        t.set_slow_threshold(Some(Duration::ZERO));
        drop(t.span("sampled")); // draw 0 wins: recorded, not "promoted"
        drop(t.span("slow"));
        assert_eq!(t.drain().len(), 2);
        assert_eq!(t.take_promoted().len(), 1);
    }

    #[test]
    fn active_span_context_carries_the_sampling_decision() {
        let t = Tracer::new(16);
        let span = t.span("root");
        let ctx = span.context().unwrap();
        assert_eq!(Some(ctx.trace), span.trace_id());
        assert!(ctx.sampled(), "default sampling records everything");
        assert_eq!(TraceContext::parse(&ctx.header_value()), Some(ctx));
        drop(span);

        t.set_sample_every(u64::MAX);
        drop(t.span("consume-draw-0"));
        let loser = t.span("unsampled");
        let ctx = loser.context().unwrap();
        assert!(!ctx.sampled());
        assert!(!ctx.no_promote(), "locally-unsampled stays promotable");
        drop(loser);

        let remote = t.span_with_context(
            "remote",
            Some(TraceContext {
                trace: TraceId(9000),
                parent: SpanId(3),
                flags: TraceContext::NO_PROMOTE,
            }),
        );
        let ctx = remote.context().unwrap();
        assert!(ctx.no_promote(), "no-promote propagates downstream");
        assert_eq!(ctx.trace, TraceId(9000));

        assert!(Tracer::disabled().span("x").context().is_none());
    }

    #[test]
    fn trace_ids_are_entropy_seeded_per_tracer() {
        // Under miri the seed is pinned; elsewhere two tracers created in
        // the same process at (almost) the same time still differ because
        // the clock advances between seeds — and any collision here would
        // mean the whole fleet collides by construction.
        let a = Tracer::new(4);
        let b = Tracer::new(4);
        drop(a.span("a"));
        drop(b.span("b"));
        let ta = a.drain()[0].trace;
        let tb = b.drain()[0].trace;
        assert_ne!(ta.0, 0);
        assert_ne!(tb.0, 0);
        if !cfg!(miri) {
            assert_ne!(ta, tb, "independent tracers mint from disjoint ranges");
        }
    }

    #[test]
    fn concurrent_spans_keep_per_thread_parenting() {
        let t = Tracer::new(256);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = t.clone();
                scope.spawn(move || {
                    for _ in 0..8 {
                        let _root = t.span("outer");
                        drop(t.span("inner"));
                    }
                });
            }
        });
        let records = t.drain();
        assert_eq!(records.len(), 64);
        for r in records.iter().filter(|r| r.name == "inner") {
            let parent = records
                .iter()
                .find(|p| Some(p.id) == r.parent)
                .expect("parent present");
            assert_eq!(parent.name, "outer");
            assert_eq!(parent.tid, r.tid, "parent chosen from the same thread");
            assert_eq!(parent.trace, r.trace);
        }
    }
}
