//! Zero-dependency runtime telemetry for the orex engines.
//!
//! Every engine crate records into a [`Recorder`] — counters, gauges,
//! histograms, and scoped [`Span`] timers — and anything holding a
//! recorder can export a point-in-time [`Snapshot`] as JSON. The hot-path
//! cost is one `RwLock` read + hash lookup per op and a handful of atomic
//! adds; a disabled recorder hands out no-op handles so instrumented code
//! pays only a branch.
//!
//! Engines use the process-wide [`global()`] recorder so instrumentation
//! never changes public engine signatures; tests and overhead
//! measurements construct private recorders or toggle
//! [`Recorder::set_enabled`].
//!
//! Naming convention: `crate.component.metric`, lowercase, with the unit
//! as a suffix where one applies (`session.rank_us`). Span timers record
//! elapsed microseconds into the histogram of the same name.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Number of exponential histogram buckets; bucket `i` holds values in
/// `(2^(i-BUCKET_BIAS-1), 2^(i-BUCKET_BIAS)]`, spanning ~1e-10 .. ~1e9.
const BUCKETS: usize = 64;
const BUCKET_BIAS: i32 = 32;

// Metrics are always boxed behind `Arc<Metric>`, so the size spread
// between Counter (8 bytes) and Histogram is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Metric {
    Counter(AtomicU64),
    /// Last-written f64, stored as bits.
    Gauge(AtomicU64),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Lock-free histogram over non-negative f64 samples: exact count / sum /
/// min / max plus exponential buckets for approximate quantiles.
struct Histogram {
    count: AtomicU64,
    /// Compensated-free f64 accumulation via CAS on the bit pattern.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        (value.log2().ceil() as i32 + BUCKET_BIAS).clamp(0, BUCKETS as i32 - 1) as usize
    }

    fn record(&self, value: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        update_f64(&self.sum_bits, |cur| cur + value);
        update_f64(&self.min_bits, |cur| cur.min(value));
        update_f64(&self.max_bits, |cur| cur.max(value));
    }

    fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed));
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
            let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
            let target = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    // Upper bound of the bucket, clamped to the observed
                    // range so e.g. an all-zeros histogram reports 0, not
                    // the lowest bucket's tiny upper bound.
                    return 2f64.powi(i as i32 - BUCKET_BIAS).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: quantile(0.50),
            p95: quantile(0.95),
        }
    }
}

fn update_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

struct Registry {
    enabled: AtomicBool,
    metrics: RwLock<HashMap<String, Arc<Metric>>>,
}

/// A cheaply cloneable handle to a metric registry.
///
/// Handles returned by [`counter`](Recorder::counter) /
/// [`gauge`](Recorder::gauge) / [`histogram`](Recorder::histogram) /
/// [`span`](Recorder::span) are no-ops when the recorder is (or was, at
/// handle creation) disabled.
#[derive(Clone)]
pub struct Recorder {
    registry: Arc<Registry>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, enabled recorder.
    pub fn new() -> Self {
        Self {
            registry: Arc::new(Registry {
                enabled: AtomicBool::new(true),
                metrics: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// A fresh recorder that starts disabled: every handle it hands out
    /// is a no-op and its snapshot stays empty until re-enabled.
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    /// Turns recording on or off. Off, the recorder hands out no-op
    /// handles; already-issued live handles keep recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.registry.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether new handles will record.
    pub fn is_enabled(&self) -> bool {
        self.registry.enabled.load(Ordering::Relaxed)
    }

    /// Drops every registered metric.
    pub fn reset(&self) {
        self.registry.metrics.write().unwrap().clear();
    }

    fn metric(&self, name: &str, make: fn() -> Metric) -> Option<Arc<Metric>> {
        if !self.is_enabled() {
            return None;
        }
        if let Some(m) = self.registry.metrics.read().unwrap().get(name) {
            return Some(Arc::clone(m));
        }
        let mut metrics = self.registry.metrics.write().unwrap();
        let m = metrics
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(make()));
        Some(Arc::clone(m))
    }

    /// A monotonically increasing counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let m = self.metric(name, || Metric::Counter(AtomicU64::new(0)));
        if let Some(m) = &m {
            assert!(
                matches!(**m, Metric::Counter(_)),
                "telemetry metric {name:?} already registered as a {}",
                m.kind()
            );
        }
        Counter(m)
    }

    /// A last-value-wins gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let m = self.metric(name, || Metric::Gauge(AtomicU64::new(0f64.to_bits())));
        if let Some(m) = &m {
            assert!(
                matches!(**m, Metric::Gauge(_)),
                "telemetry metric {name:?} already registered as a {}",
                m.kind()
            );
        }
        Gauge(m)
    }

    /// A distribution of non-negative samples.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let m = self.metric(name, || Metric::Histogram(Histogram::new()));
        if let Some(m) = &m {
            assert!(
                matches!(**m, Metric::Histogram(_)),
                "telemetry metric {name:?} already registered as a {}",
                m.kind()
            );
        }
        HistogramHandle(m)
    }

    /// Starts a scoped timer; on drop it records elapsed microseconds
    /// into the histogram named `name`.
    pub fn span(&self, name: &str) -> Span {
        let hist = self.histogram(name);
        Span {
            start: hist.0.is_some().then(Instant::now),
            hist,
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for (name, metric) in self.registry.metrics.read().unwrap().iter() {
            match &**metric {
                Metric::Counter(v) => {
                    snap.counters
                        .insert(name.clone(), v.load(Ordering::Relaxed));
                }
                Metric::Gauge(bits) => {
                    snap.gauges
                        .insert(name.clone(), f64::from_bits(bits.load(Ordering::Relaxed)));
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.summary());
                }
            }
        }
        snap
    }
}

/// Counter handle; see [`Recorder::counter`].
#[derive(Clone)]
pub struct Counter(Option<Arc<Metric>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(m) = &self.0 {
            if let Metric::Counter(v) = &**m {
                v.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// Gauge handle; see [`Recorder::gauge`].
#[derive(Clone)]
pub struct Gauge(Option<Arc<Metric>>);

impl Gauge {
    /// Overwrites the gauge value.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(m) = &self.0 {
            if let Metric::Gauge(bits) = &**m {
                bits.store(value.to_bits(), Ordering::Relaxed);
            }
        }
    }
}

/// Histogram handle; see [`Recorder::histogram`].
#[derive(Clone)]
pub struct HistogramHandle(Option<Arc<Metric>>);

impl HistogramHandle {
    /// True when samples go somewhere — lets hot loops skip building the
    /// sample (e.g. reading the clock) on disabled recorders.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: f64) {
        if let Some(m) = &self.0 {
            if let Metric::Histogram(h) = &**m {
                h.record(value);
            }
        }
    }
}

/// Scoped timer; see [`Recorder::span`]. Records elapsed microseconds on
/// drop.
pub struct Span {
    start: Option<Instant>,
    hist: HistogramHandle,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_secs_f64() * 1e6);
        }
    }
}

/// Aggregate statistics for one histogram at snapshot time. Quantiles are
/// approximate (upper bound of the containing power-of-two bucket); the
/// rest are exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
}

/// A point-in-time copy of a recorder's metrics, name-sorted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Compact JSON: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        self.write_json(None)
    }

    /// Two-space-indented JSON.
    pub fn to_json_pretty(&self) -> String {
        self.write_json(Some(0))
    }

    fn write_json(&self, indent: Option<usize>) -> String {
        type Section<'a> = (&'a str, Box<dyn Fn(&mut String, Option<usize>) + 'a>);
        let mut out = String::new();
        let sections: [Section<'_>; 3] = [
            (
                "counters",
                Box::new(|out: &mut String, ind| {
                    json_object(out, ind, self.counters.iter(), |out, v, _| {
                        let _ = write!(out, "{v}");
                    })
                }),
            ),
            (
                "gauges",
                Box::new(|out: &mut String, ind| {
                    json_object(out, ind, self.gauges.iter(), |out, v, _| json_f64(out, *v))
                }),
            ),
            (
                "histograms",
                Box::new(|out: &mut String, ind| {
                    json_object(out, ind, self.histograms.iter(), |out, h, ind| {
                        let fields: [(&str, f64); 6] = [
                            ("sum", h.sum),
                            ("min", h.min),
                            ("max", h.max),
                            ("mean", h.mean),
                            ("p50", h.p50),
                            ("p95", h.p95),
                        ];
                        out.push('{');
                        newline_indent(out, ind.map(|d| d + 1));
                        let _ = write!(out, "\"count\":{}{}", json_space(ind), h.count);
                        for (k, v) in fields {
                            out.push(',');
                            newline_indent(out, ind.map(|d| d + 1));
                            let _ = write!(out, "\"{k}\":{}", json_space(ind));
                            json_f64(out, v);
                        }
                        newline_indent(out, ind);
                        out.push('}');
                    })
                }),
            ),
        ];
        out.push('{');
        for (i, (name, write_section)) in sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            newline_indent(&mut out, indent.map(|d| d + 1));
            let _ = write!(out, "\"{name}\":{}", json_space(indent));
            write_section(&mut out, indent.map(|d| d + 1));
        }
        newline_indent(&mut out, indent);
        out.push('}');
        out
    }
}

fn json_space(indent: Option<usize>) -> &'static str {
    if indent.is_some() {
        " "
    } else {
        ""
    }
}

fn newline_indent(out: &mut String, depth: Option<usize>) {
    if let Some(d) = depth {
        out.push('\n');
        for _ in 0..d {
            out.push_str("  ");
        }
    }
}

fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn json_object<'a, V: 'a>(
    out: &mut String,
    indent: Option<usize>,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    write_value: impl Fn(&mut String, &V, Option<usize>),
) {
    let entries: Vec<_> = entries.collect();
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent.map(|d| d + 1));
        // Metric names are restricted to a JSON-safe alphabet by
        // convention; escape the two structural characters anyway.
        let _ = write!(
            out,
            "\"{}\":{}",
            key.replace('\\', "\\\\").replace('"', "\\\""),
            json_space(indent)
        );
        write_value(out, value, indent.map(|d| d + 1));
    }
    newline_indent(out, indent);
    out.push('}');
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// The process-wide recorder the engine crates record into. Enabled by
/// default; disable with `global().set_enabled(false)`, or set the
/// `OREX_TELEMETRY` environment variable to `0`, `off`, or `false` to
/// start the process with recording off (handy for overhead A/B runs).
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(|| {
        let disabled = std::env::var("OREX_TELEMETRY")
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false"))
            .unwrap_or(false);
        if disabled {
            Recorder::disabled()
        } else {
            Recorder::new()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_basics() {
        let r = Recorder::new();
        r.counter("c").add(5);
        r.counter("c").incr();
        r.gauge("g").set(1.5);
        r.gauge("g").set(-2.5);
        let h = r.histogram("h");
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 6);
        assert_eq!(snap.gauges["g"], -2.5);
        let hs = &snap.histograms["h"];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 16.0);
        assert_eq!(hs.min, 1.0);
        assert_eq!(hs.max, 10.0);
        assert_eq!(hs.mean, 4.0);
        assert!(hs.p50 >= 1.0 && hs.p50 <= 4.0, "p50 = {}", hs.p50);
        assert!(hs.p95 >= 4.0 && hs.p95 <= 16.0, "p95 = {}", hs.p95);
    }

    #[test]
    fn concurrent_counters_are_exact() {
        const THREADS: usize = 8;
        const OPS: u64 = 10_000;
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let r = r.clone();
                scope.spawn(move || {
                    let c = r.counter("hits");
                    let h = r.histogram("latency");
                    for i in 0..OPS {
                        c.incr();
                        h.record((i % 7) as f64);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters["hits"], THREADS as u64 * OPS);
        let hs = &snap.histograms["latency"];
        assert_eq!(hs.count, THREADS as u64 * OPS);
        // Sum of 0..7 cycling: OPS/7 full cycles of 21 per thread, exact
        // because every sample is a small integer (f64-exact adds).
        let per_thread: f64 = (0..OPS).map(|i| (i % 7) as f64).sum();
        assert_eq!(hs.sum, per_thread * THREADS as f64);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.counter("c").add(3);
        r.gauge("g").set(1.0);
        r.histogram("h").record(2.0);
        drop(r.span("s"));
        assert!(r.snapshot().is_empty(), "disabled recorder must stay empty");
        // Re-enabled, the same recorder starts collecting.
        r.set_enabled(true);
        r.counter("c").incr();
        assert_eq!(r.snapshot().counters["c"], 1);
    }

    #[test]
    fn span_records_elapsed_micros() {
        let r = Recorder::new();
        {
            let _span = r.span("work_us");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let hs = r.snapshot().histograms["work_us"];
        assert_eq!(hs.count, 1);
        assert!(hs.sum >= 1_000.0, "expected ≥1ms recorded, got {}", hs.sum);
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Recorder::new();
        r.counter("b.count").incr();
        r.counter("a.count").add(2);
        r.gauge("g.val").set(0.5);
        r.histogram("h.us").record(3.0);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Name-sorted within each section.
        let a = json.find("a.count").unwrap();
        let b = json.find("b.count").unwrap();
        assert!(a < b, "counters must be name-sorted: {json}");
        assert!(
            json.contains(r#""counters":{"a.count":2,"b.count":1}"#),
            "{json}"
        );
        assert!(json.contains(r#""g.val":0.5"#), "{json}");
        assert!(json.contains(r#""count":1"#), "{json}");
        assert!(json.contains(r#""p95":"#), "{json}");
        let pretty = r.snapshot().to_json_pretty();
        assert!(pretty.contains("\n  \"counters\": {\n"), "{pretty}");
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = Recorder::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(
            snap.to_json(),
            r#"{"counters":{},"gauges":{},"histograms":{}}"#
        );
    }

    #[test]
    fn reset_clears_metrics() {
        let r = Recorder::new();
        r.counter("c").incr();
        assert!(!r.snapshot().is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Recorder::new();
        r.counter("m").incr();
        r.gauge("m").set(1.0);
    }

    #[test]
    fn global_is_shared() {
        global().counter("test.global").incr();
        assert!(global().snapshot().counters.contains_key("test.global"));
    }
}
