//! Zero-dependency runtime telemetry for the orex engines.
//!
//! Every engine crate records into a [`Recorder`] — counters, gauges,
//! histograms, and scoped [`Span`] timers — and anything holding a
//! recorder can export a point-in-time [`Snapshot`] as JSON. The hot-path
//! cost is one `RwLock` read + hash lookup per op and a handful of atomic
//! adds; a disabled recorder hands out no-op handles so instrumented code
//! pays only a branch.
//!
//! Engines use the process-wide [`global()`] recorder so instrumentation
//! never changes public engine signatures; tests and overhead
//! measurements construct private recorders or toggle
//! [`Recorder::set_enabled`].
//!
//! Naming convention: `crate.component.metric`, lowercase, with the unit
//! as a suffix where one applies (`session.rank_us`). Span timers record
//! elapsed microseconds into the histogram of the same name.
//!
//! Beyond aggregates, the [`trace`] module provides per-query
//! hierarchical tracing — a [`Tracer`] minting nested spans collected
//! into a bounded lock-free ring buffer — and the [`log`] module the
//! third pillar: a [`Logger`] capturing leveled, structured
//! [`LogRecord`]s into the same kind of ring, each stamped with the
//! trace/span ids active on the logging thread (`OREX_LOG` configures
//! its per-target filter). [`export`] renders drained traces as Chrome
//! trace-event JSON or folded flamegraph stacks, and drained logs as
//! JSON-lines or human-readable text.

#![warn(missing_docs)]

pub mod export;
pub mod log;
pub mod profile;
mod ring;
pub mod slo;
pub mod trace;

pub use log::{logger, FieldValue, Level, LogFilter, LogRecord, Logger, RateLimit, RecordBuilder};
pub use profile::{profiler, profiler_at, HotSpan, ProfileSnapshot, Profiler};
pub use slo::{default_slos, SloKind, SloSpec, SloStatus, SloTracker, SloWindows};
pub use trace::{
    tracer, ActiveSpan, AttrValue, SpanId, SpanRecord, TraceContext, TraceEvent, TraceId, Tracer,
};

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

/// Number of exponential histogram buckets; bucket `i` holds values in
/// `(2^(i-BUCKET_BIAS-1), 2^(i-BUCKET_BIAS)]`, spanning ~1e-10 .. ~1e9.
pub const BUCKETS: usize = 64;
const BUCKET_BIAS: i32 = 32;

/// Upper bound of histogram bucket `i` (inclusive). The last bucket also
/// absorbs everything larger, so exporters should label it `+Inf`.
pub fn bucket_upper_bound(i: usize) -> f64 {
    2f64.powi(i as i32 - BUCKET_BIAS)
}

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double quote, and line feed become `\\`, `\"`, and `\n`.
pub fn prom_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

// Each variant holds its storage behind its own `Arc`, so resolving a
// metric once yields a typed handle that bumps a bare atomic with no
// registry lock, hash, or enum match on the hot path.
#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    /// Last-written f64, stored as bits.
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Lock-free histogram over non-negative f64 samples: exact count / sum /
/// min / max plus exponential buckets for approximate quantiles.
struct Histogram {
    count: AtomicU64,
    /// Compensated-free f64 accumulation via CAS on the bit pattern.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    /// Per-bucket exemplars: the most recent trace id whose sample
    /// landed in the bucket (0 = none; real trace ids start at 1) and
    /// that sample's value, as f64 bits.
    exemplar_trace: [AtomicU64; BUCKETS],
    exemplar_value: [AtomicU64; BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_trace: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_value: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        (value.log2().ceil() as i32 + BUCKET_BIAS).clamp(0, BUCKETS as i32 - 1) as usize
    }

    fn record(&self, value: f64) {
        self.record_with_exemplar(value, None);
    }

    fn record_with_exemplar(&self, value: f64, trace: Option<u64>) {
        // ORDERING: each cell is an independent statistic; readers
        // tolerate torn cross-cell views (a snapshot racing a record may
        // see the count without the bucket), so no publication ordering
        // is needed.
        self.count.fetch_add(1, Ordering::Relaxed);
        let bucket = Self::bucket_index(value);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed); // ORDERING: as above
        if let Some(trace) = trace {
            // ORDERING: last-writer-wins exemplar cells; a racing reader
            // may pair one sample's trace with another's value, which
            // still names a real recent trace in this bucket — the only
            // guarantee exemplars promise.
            self.exemplar_value[bucket].store(value.to_bits(), Ordering::Relaxed);
            self.exemplar_trace[bucket].store(trace, Ordering::Relaxed); // ORDERING: as above
        }
        update_f64(&self.sum_bits, |cur| cur + value);
        update_f64(&self.min_bits, |cur| cur.min(value));
        update_f64(&self.max_bits, |cur| cur.max(value));
    }

    fn summary(&self) -> HistogramSummary {
        // ORDERING: statistics reads; see `record` — a summary racing
        // concurrent records is approximate by design.
        let count = self.count.load(Ordering::Relaxed);
        let sum = f64::from_bits(self.sum_bits.load(Ordering::Relaxed)); // ORDERING: as above
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)); // ORDERING: as above
        let quantile = |q: f64| -> f64 {
            if count == 0 {
                return 0.0;
            }
            // ORDERING: statistics reads, as above.
            let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
            let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed)); // ORDERING: as above
            let target = (q * count as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    // Upper bound of the bucket, clamped to the observed
                    // range so e.g. an all-zeros histogram reports 0, not
                    // the lowest bucket's tiny upper bound.
                    return 2f64.powi(i as i32 - BUCKET_BIAS).clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            min: if count == 0 {
                0.0
            } else {
                // ORDERING: statistics reads, as above.
                f64::from_bits(self.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                // ORDERING: statistics reads, as above.
                f64::from_bits(self.max_bits.load(Ordering::Relaxed))
            },
            mean: if count == 0 { 0.0 } else { sum / count as f64 },
            p50: quantile(0.50),
            p95: quantile(0.95),
            buckets,
            exemplars: std::array::from_fn(|i| {
                // ORDERING: statistics reads, as above; 0 = no exemplar.
                let trace = self.exemplar_trace[i].load(Ordering::Relaxed);
                (trace != 0).then(|| Exemplar {
                    trace,
                    value: f64::from_bits(self.exemplar_value[i].load(Ordering::Relaxed)), // ORDERING: as above
                })
            }),
        }
    }
}

fn update_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    // ORDERING: single-cell read-modify-write; the CAS itself guarantees
    // atomicity of the update and nothing else is published under it.
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        // ORDERING: as above.
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

struct Registry {
    enabled: AtomicBool,
    /// Bumped on every [`Recorder::reset`] and on re-enabling, so
    /// pre-resolved handles ([`CounterHandle`], [`HistogramHandle`]) know
    /// to re-resolve instead of going permanently stale in a long-lived
    /// process; see [`HandleCore`].
    generation: AtomicU64,
    metrics: RwLock<HashMap<String, Metric>>,
}

impl Registry {
    /// Looks a metric up, registering it when absent. `None` while the
    /// registry is disabled.
    fn resolve(&self, name: &str, make: fn() -> Metric) -> Option<Metric> {
        // ORDERING: on/off flag only — all shared metric state is
        // reached through the RwLock below, which does its own
        // synchronization; a momentarily stale flag read just delays
        // the switch by one resolve.
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        // A poisoned registry lock is recovered everywhere in this
        // crate: the map is structurally sound (inserts happen-or-don't
        // under the guard) and telemetry must keep working after an
        // unrelated thread panicked mid-resolve.
        if let Some(m) = self
            .metrics
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Some(m.clone());
        }
        let mut metrics = self.metrics.write().unwrap_or_else(PoisonError::into_inner);
        Some(metrics.entry(name.to_string()).or_insert_with(make).clone())
    }
}

/// Shared core of the pre-resolved handle types: a raw pointer to the
/// metric's storage plus the registry generation it was resolved under.
/// When the generation moves ([`Recorder::reset`] or re-enabling after
/// [`Recorder::set_enabled`]`(false)`), the next operation re-resolves
/// through the registry — so a handle cached in a `OnceLock` by a
/// long-lived server keeps recording across resets instead of silently
/// going stale. The fast path is two atomic loads, a compare, and the
/// metric update itself.
struct HandleCore<T> {
    registry: Arc<Registry>,
    name: String,
    resolve: fn(&Registry, &str) -> Option<Arc<T>>,
    dummy: fn() -> Arc<T>,
    /// Registry generation `target` was resolved under.
    generation: AtomicU64,
    /// True when `target` points at registry-owned storage (samples show
    /// up in snapshots), false when it points at a detached dummy.
    live: AtomicBool,
    target: AtomicPtr<T>,
    /// Every storage Arc this handle has ever pointed at, kept alive so
    /// the raw `target` pointer stays valid without per-op locking.
    /// Generations only move on reset/re-enable, so this stays tiny.
    retained: Mutex<Vec<Arc<T>>>,
}

impl<T> HandleCore<T> {
    fn new(
        registry: Arc<Registry>,
        name: String,
        resolve: fn(&Registry, &str) -> Option<Arc<T>>,
        dummy: fn() -> Arc<T>,
    ) -> Self {
        let core = Self {
            registry,
            name,
            resolve,
            dummy,
            generation: AtomicU64::new(0),
            live: AtomicBool::new(false),
            target: AtomicPtr::new(std::ptr::null_mut()),
            retained: Mutex::new(Vec::new()),
        };
        core.re_resolve();
        core
    }

    #[inline]
    fn check_generation(&self) {
        let gen = self.registry.generation.load(Ordering::Acquire);
        if gen != self.generation.load(Ordering::Acquire) {
            self.re_resolve();
        }
    }

    /// The current storage target, re-resolving first when the registry
    /// generation moved. A detached handle's target is a private dummy
    /// no snapshot ever reads.
    #[inline]
    fn target(&self) -> &T {
        self.check_generation();
        // SAFETY: `target` always points into an Arc held by `retained`
        // for as long as this core lives (see `re_resolve`).
        unsafe { &*self.target.load(Ordering::Acquire) }
    }

    /// The target only when live — lets callers skip building samples
    /// for a detached handle.
    #[inline]
    fn live_target(&self) -> Option<&T> {
        self.check_generation();
        if !self.live.load(Ordering::Acquire) {
            return None;
        }
        // SAFETY: as in `target`.
        Some(unsafe { &*self.target.load(Ordering::Acquire) })
    }

    /// True when operations reach registry-owned storage.
    fn is_live(&self) -> bool {
        self.check_generation();
        self.live.load(Ordering::Acquire)
    }

    #[cold]
    fn re_resolve(&self) {
        // Poison recovery: the Vec is only ever pushed to under the
        // guard, so it is structurally sound, and a handle that stops
        // re-resolving would silently drop samples forever.
        let mut retained = self.retained.lock().unwrap_or_else(PoisonError::into_inner);
        let gen = self.registry.generation.load(Ordering::Acquire);
        // Another thread may have re-resolved while we waited on the
        // lock; the null check covers the very first resolution.
        if gen == self.generation.load(Ordering::Acquire)
            && !self.target.load(Ordering::Acquire).is_null()
        {
            return;
        }
        let (arc, live) = match (self.resolve)(&self.registry, &self.name) {
            Some(arc) => (arc, true),
            None => ((self.dummy)(), false),
        };
        // Publish target before generation: a fast path that observes the
        // new generation (Acquire) is therefore guaranteed to also see
        // the new target.
        self.target
            .store(Arc::as_ptr(&arc) as *mut T, Ordering::Release);
        self.live.store(live, Ordering::Release);
        retained.push(arc);
        self.generation.store(gen, Ordering::Release);
    }
}

/// A cheaply cloneable handle to a metric registry.
///
/// Handles returned by [`counter`](Recorder::counter) /
/// [`gauge`](Recorder::gauge) / [`histogram`](Recorder::histogram) /
/// [`span`](Recorder::span) are no-ops when the recorder is (or was, at
/// handle creation) disabled.
#[derive(Clone)]
pub struct Recorder {
    registry: Arc<Registry>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A fresh, enabled recorder.
    pub fn new() -> Self {
        Self {
            registry: Arc::new(Registry {
                enabled: AtomicBool::new(true),
                generation: AtomicU64::new(1),
                metrics: RwLock::new(HashMap::new()),
            }),
        }
    }

    /// A fresh recorder that starts disabled: every handle it hands out
    /// is a no-op and its snapshot stays empty until re-enabled.
    pub fn disabled() -> Self {
        let r = Self::new();
        r.set_enabled(false);
        r
    }

    /// Turns recording on or off. Off, the recorder hands out no-op
    /// handles; already-issued live handles keep recording. Enabling
    /// bumps the handle generation, so pre-resolved handles that were
    /// minted while disabled attach to real storage on their next op.
    pub fn set_enabled(&self, enabled: bool) {
        // ORDERING: on/off flag; nothing is published under it (see
        // `Registry::resolve`). The generation bump below carries its
        // own Release.
        self.registry.enabled.store(enabled, Ordering::Relaxed);
        if enabled {
            self.registry.generation.fetch_add(1, Ordering::Release);
        }
    }

    /// Whether new handles will record.
    pub fn is_enabled(&self) -> bool {
        // ORDERING: on/off flag, as in `set_enabled`.
        self.registry.enabled.load(Ordering::Relaxed)
    }

    /// Drops every registered metric and bumps the handle generation:
    /// pre-resolved [`CounterHandle`]s / [`HistogramHandle`]s re-resolve
    /// (and re-register their metric) on their next operation instead of
    /// recording into orphaned storage forever.
    pub fn reset(&self) {
        self.registry
            .metrics
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.registry.generation.fetch_add(1, Ordering::Release);
    }

    fn metric(&self, name: &str, make: fn() -> Metric) -> Option<Metric> {
        self.registry.resolve(name, make)
    }

    /// A monotonically increasing counter.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.metric(name, || Metric::Counter(Arc::new(AtomicU64::new(0)))) {
            Some(Metric::Counter(v)) => Counter(Some(v)),
            // orex::allow(ORX002): documented `# Panics` contract — a
            // kind collision is a programmer error at the call site, not
            // a runtime condition, and every caller passes a literal.
            Some(m) => panic!(
                "telemetry metric {name:?} already registered as a {}",
                m.kind()
            ),
            None => Counter(None),
        }
    }

    /// A pre-resolved counter for hot loops: bumping it is a generation
    /// check (two atomic loads and a compare) plus one atomic add — no
    /// registry lock, hash, or enum match. While the recorder is disabled
    /// the handle bumps a private dummy atomic that no snapshot reads.
    ///
    /// Resolve once (e.g. in a `OnceLock`) and reuse. The handle never
    /// goes permanently stale: after [`Recorder::reset`], or when a
    /// handle minted while disabled sees recording re-enabled, the next
    /// op transparently re-resolves (re-registering the metric if
    /// needed) — the property a long-lived server front end relies on.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter_handle(&self, name: &str) -> CounterHandle {
        CounterHandle(Arc::new(HandleCore::new(
            Arc::clone(&self.registry),
            name.to_string(),
            resolve_counter,
            || Arc::new(AtomicU64::new(0)),
        )))
    }

    /// A last-value-wins gauge.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.metric(name, || {
            Metric::Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
        }) {
            Some(Metric::Gauge(v)) => Gauge(Some(v)),
            // orex::allow(ORX002): documented `# Panics` contract, as in
            // `counter`.
            Some(m) => panic!(
                "telemetry metric {name:?} already registered as a {}",
                m.kind()
            ),
            None => Gauge(None),
        }
    }

    /// A distribution of non-negative samples. The returned handle is
    /// pre-resolved: recording costs a generation check plus a handful of
    /// atomic ops, with no registry lock or hash on the hot path, and —
    /// like [`Recorder::counter_handle`] — it re-resolves transparently
    /// after [`Recorder::reset`] or re-enabling instead of going stale.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(Arc::new(HandleCore::new(
            Arc::clone(&self.registry),
            name.to_string(),
            resolve_histogram,
            || Arc::new(Histogram::new()),
        )))
    }

    /// Starts a scoped timer; on drop it records elapsed microseconds
    /// into the histogram named `name`.
    pub fn span(&self, name: &str) -> Span {
        let hist = self.histogram(name);
        Span {
            start: hist.is_recording().then(Instant::now),
            hist,
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        let metrics = self
            .registry
            .metrics
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(v) => {
                    // ORDERING: statistics read; snapshots racing
                    // updates are approximate by design.
                    let count = v.load(Ordering::Relaxed);
                    snap.counters.insert(name.clone(), count);
                }
                Metric::Gauge(bits) => {
                    // ORDERING: statistics read, as above.
                    let bits = bits.load(Ordering::Relaxed);
                    snap.gauges.insert(name.clone(), f64::from_bits(bits));
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.summary());
                }
            }
        }
        snap
    }
}

/// Counter handle; see [`Recorder::counter`]. One `Option` branch per op.
#[derive(Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(v) = &self.0 {
            // ORDERING: monotonic statistic; readers only ever sum it.
            v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

/// Pre-resolved counter handle; see [`Recorder::counter_handle`]. Every
/// op is a generation check plus one atomic add — a detached handle
/// bumps a private dummy, and a stale handle re-resolves itself.
#[derive(Clone)]
pub struct CounterHandle(Arc<HandleCore<AtomicU64>>);

impl CounterHandle {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: monotonic statistic, as in `Counter::add`; the
        // target pointer itself was acquired in `HandleCore::target`.
        self.0.target().fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }
}

fn resolve_counter(registry: &Registry, name: &str) -> Option<Arc<AtomicU64>> {
    match registry.resolve(name, || Metric::Counter(Arc::new(AtomicU64::new(0))))? {
        Metric::Counter(v) => Some(v),
        // orex::allow(ORX002): documented `# Panics` contract of
        // `Recorder::counter_handle` — kind collision is programmer
        // error.
        m => panic!(
            "telemetry metric {name:?} already registered as a {}",
            m.kind()
        ),
    }
}

fn resolve_histogram(registry: &Registry, name: &str) -> Option<Arc<Histogram>> {
    match registry.resolve(name, || Metric::Histogram(Arc::new(Histogram::new())))? {
        Metric::Histogram(h) => Some(h),
        // orex::allow(ORX002): documented `# Panics` contract of
        // `Recorder::histogram` — kind collision is programmer error.
        m => panic!(
            "telemetry metric {name:?} already registered as a {}",
            m.kind()
        ),
    }
}

/// Gauge handle; see [`Recorder::gauge`].
#[derive(Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Overwrites the gauge value.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(bits) = &self.0 {
            // ORDERING: last-value-wins statistic; readers take any
            // recent value.
            bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }
}

/// Pre-resolved histogram handle; see [`Recorder::histogram`]. Recording
/// touches the histogram's atomics directly — no lock, hash, or match —
/// after a generation check that re-resolves a stale handle.
#[derive(Clone)]
pub struct HistogramHandle(Arc<HandleCore<Histogram>>);

impl HistogramHandle {
    /// True when samples go somewhere — lets hot loops skip building the
    /// sample (e.g. reading the clock) on disabled recorders.
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.0.is_live()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: f64) {
        if let Some(h) = self.0.live_target() {
            h.record(value);
        }
    }

    /// Records one sample and, when `trace` is set, stamps it as the
    /// containing bucket's exemplar so tail-latency buckets resolve to a
    /// concrete trace id.
    #[inline]
    pub fn record_with_exemplar(&self, value: f64, trace: Option<u64>) {
        if let Some(h) = self.0.live_target() {
            h.record_with_exemplar(value, trace);
        }
    }
}

/// Scoped timer; see [`Recorder::span`]. Records elapsed microseconds on
/// drop.
pub struct Span {
    start: Option<Instant>,
    hist: HistogramHandle,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            // Stamp the sample with the current sampled trace (if any) so
            // histogram buckets carry exemplar trace ids for free.
            let trace = crate::tracer().current_sampled_trace().map(|t| t.0);
            self.hist
                .record_with_exemplar(start.elapsed().as_secs_f64() * 1e6, trace);
        }
    }
}

/// One histogram bucket's exemplar: the most recent sampled trace whose
/// sample landed in the bucket, and that sample's value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exemplar {
    /// Trace id of the exemplar sample (never 0).
    pub trace: u64,
    /// The recorded sample value.
    pub value: f64,
}

/// Aggregate statistics for one histogram at snapshot time. Quantiles are
/// approximate (upper bound of the containing power-of-two bucket); the
/// rest are exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Raw exponential bucket counts (see [`bucket_upper_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Per-bucket exemplars (`None` when no sampled trace landed there).
    pub exemplars: [Option<Exemplar>; BUCKETS],
}

// `[u64; 64]` has no std `Default`, so derive won't do.
impl Default for HistogramSummary {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            mean: 0.0,
            p50: 0.0,
            p95: 0.0,
            buckets: [0; BUCKETS],
            exemplars: [None; BUCKETS],
        }
    }
}

/// A point-in-time copy of a recorder's metrics, name-sorted.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// One metric's change between a baseline and a current snapshot; see
/// [`Snapshot::diff`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// Metric name.
    pub name: String,
    /// `"counter"`, `"gauge"`, or `"histogram_mean"` — what was compared.
    pub kind: &'static str,
    /// Baseline value (counter value, gauge value, or histogram mean).
    pub baseline: f64,
    /// Current value on the same scale as `baseline`.
    pub current: f64,
    /// `(current - baseline) / baseline`; `+Inf` when the baseline is 0
    /// and the current value is not.
    pub relative: f64,
}

/// Per-metric relative deltas between two snapshots; see
/// [`Snapshot::diff`]. Only metrics present in both snapshots appear.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotDiff {
    /// Deltas, name-sorted.
    pub deltas: Vec<MetricDelta>,
}

impl SnapshotDiff {
    /// Looks up one metric's delta by name.
    pub fn get(&self, name: &str) -> Option<&MetricDelta> {
        self.deltas.iter().find(|d| d.name == name)
    }

    /// Deltas whose relative increase exceeds `threshold` (e.g. `0.2`
    /// flags >20% regressions). Timings and counters both regress
    /// upward, so only positive deltas count.
    pub fn regressions(&self, threshold: f64) -> Vec<&MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.relative > threshold)
            .collect()
    }
}

impl Snapshot {
    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Compares this snapshot against a baseline, producing one relative
    /// delta per metric present in both: counters and gauges by value,
    /// histograms by mean (`sum / count`) so sample-count differences
    /// between runs don't masquerade as timing changes.
    pub fn diff(&self, baseline: &Snapshot) -> SnapshotDiff {
        fn delta(name: &str, kind: &'static str, baseline: f64, current: f64) -> MetricDelta {
            let relative = if baseline == 0.0 {
                if current == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (current - baseline) / baseline
            };
            MetricDelta {
                name: name.to_string(),
                kind,
                baseline,
                current,
                relative,
            }
        }
        let mut deltas = Vec::new();
        for (name, cur) in &self.counters {
            if let Some(base) = baseline.counters.get(name) {
                deltas.push(delta(name, "counter", *base as f64, *cur as f64));
            }
        }
        for (name, cur) in &self.gauges {
            if let Some(base) = baseline.gauges.get(name) {
                deltas.push(delta(name, "gauge", *base, *cur));
            }
        }
        for (name, cur) in &self.histograms {
            if let Some(base) = baseline.histograms.get(name) {
                deltas.push(delta(name, "histogram_mean", base.mean, cur.mean));
            }
        }
        deltas.sort_by(|a, b| a.name.cmp(&b.name));
        SnapshotDiff { deltas }
    }

    /// Element-wise median across snapshots — the robust baseline for CI
    /// regression gates. A metric appears in the result if any input has
    /// it; each field takes the median of the values that are present.
    pub fn median(snapshots: &[Snapshot]) -> Snapshot {
        fn median_u64(mut v: Vec<u64>) -> u64 {
            v.sort_unstable();
            v[v.len() / 2]
        }
        fn median_f64(mut v: Vec<f64>) -> f64 {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            v[v.len() / 2]
        }
        let mut out = Snapshot::default();
        let mut counter_names: Vec<&String> =
            snapshots.iter().flat_map(|s| s.counters.keys()).collect();
        counter_names.sort();
        counter_names.dedup();
        for name in counter_names {
            let vals: Vec<u64> = snapshots
                .iter()
                .filter_map(|s| s.counters.get(name).copied())
                .collect();
            out.counters.insert(name.clone(), median_u64(vals));
        }
        let mut gauge_names: Vec<&String> =
            snapshots.iter().flat_map(|s| s.gauges.keys()).collect();
        gauge_names.sort();
        gauge_names.dedup();
        for name in gauge_names {
            let vals: Vec<f64> = snapshots
                .iter()
                .filter_map(|s| s.gauges.get(name).copied())
                .collect();
            out.gauges.insert(name.clone(), median_f64(vals));
        }
        let mut hist_names: Vec<&String> =
            snapshots.iter().flat_map(|s| s.histograms.keys()).collect();
        hist_names.sort();
        hist_names.dedup();
        for name in hist_names {
            let hs: Vec<&HistogramSummary> = snapshots
                .iter()
                .filter_map(|s| s.histograms.get(name))
                .collect();
            let field =
                |f: fn(&HistogramSummary) -> f64| median_f64(hs.iter().map(|h| f(h)).collect());
            let summary = HistogramSummary {
                count: median_u64(hs.iter().map(|h| h.count).collect()),
                sum: field(|h| h.sum),
                min: field(|h| h.min),
                max: field(|h| h.max),
                mean: field(|h| h.mean),
                p50: field(|h| h.p50),
                p95: field(|h| h.p95),
                buckets: std::array::from_fn(|i| {
                    median_u64(hs.iter().map(|h| h.buckets[i]).collect())
                }),
                // Exemplars are point-in-time trace links, meaningless to
                // median across runs.
                exemplars: [None; BUCKETS],
            };
            out.histograms.insert(name.clone(), summary);
        }
        out
    }

    /// Renders the snapshot in Prometheus text exposition format.
    /// Metric names are prefixed `orex_` with dots mapped to underscores;
    /// histograms become cumulative `_bucket{le="..."}` series (empty
    /// buckets elided) plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 5);
            out.push_str("orex_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        fn prom_f64(v: f64) -> String {
            if v == f64::INFINITY {
                "+Inf".to_string()
            } else if v == f64::NEG_INFINITY {
                "-Inf".to_string()
            } else if v.is_nan() {
                "NaN".to_string()
            } else {
                format!("{v}")
            }
        }
        // Decimal trace ids match `GET /trace/<id>`; the id is numeric but
        // still goes through the label escaper like every label value.
        fn exemplar_suffix(e: Option<Exemplar>) -> String {
            match e {
                Some(e) => format!(
                    " # {{trace_id=\"{}\"}} {}",
                    prom_label_value(&e.trace.to_string()),
                    prom_f64(e.value)
                ),
                None => String::new(),
            }
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {}", prom_f64(*value));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cumulative += b;
                // The last bucket also absorbs clamped larger values, so
                // its honest label is the `+Inf` series below.
                if b == 0 || i == BUCKETS - 1 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}{}",
                    prom_f64(bucket_upper_bound(i)),
                    exemplar_suffix(h.exemplars[i])
                );
            }
            let _ = writeln!(
                out,
                "{n}_bucket{{le=\"+Inf\"}} {}{}",
                h.count,
                exemplar_suffix(h.exemplars[BUCKETS - 1])
            );
            let _ = writeln!(out, "{n}_sum {}", prom_f64(h.sum));
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }

    /// Compact JSON: `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        self.write_json(None)
    }

    /// Two-space-indented JSON.
    pub fn to_json_pretty(&self) -> String {
        self.write_json(Some(0))
    }

    fn write_json(&self, indent: Option<usize>) -> String {
        type Section<'a> = (&'a str, Box<dyn Fn(&mut String, Option<usize>) + 'a>);
        let mut out = String::new();
        let sections: [Section<'_>; 3] = [
            (
                "counters",
                Box::new(|out: &mut String, ind| {
                    json_object(out, ind, self.counters.iter(), |out, v, _| {
                        let _ = write!(out, "{v}");
                    })
                }),
            ),
            (
                "gauges",
                Box::new(|out: &mut String, ind| {
                    json_object(out, ind, self.gauges.iter(), |out, v, _| json_f64(out, *v))
                }),
            ),
            (
                "histograms",
                Box::new(|out: &mut String, ind| {
                    json_object(out, ind, self.histograms.iter(), |out, h, ind| {
                        let fields: [(&str, f64); 6] = [
                            ("sum", h.sum),
                            ("min", h.min),
                            ("max", h.max),
                            ("mean", h.mean),
                            ("p50", h.p50),
                            ("p95", h.p95),
                        ];
                        out.push('{');
                        newline_indent(out, ind.map(|d| d + 1));
                        let _ = write!(out, "\"count\":{}{}", json_space(ind), h.count);
                        for (k, v) in fields {
                            out.push(',');
                            newline_indent(out, ind.map(|d| d + 1));
                            let _ = write!(out, "\"{k}\":{}", json_space(ind));
                            json_f64(out, v);
                        }
                        out.push(',');
                        newline_indent(out, ind.map(|d| d + 1));
                        // Buckets stay on one line even in pretty mode —
                        // 64 entries would drown the rest of the report.
                        let _ = write!(out, "\"buckets\":{}[", json_space(ind));
                        for (i, b) in h.buckets.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            let _ = write!(out, "{b}");
                        }
                        out.push(']');
                        out.push(',');
                        newline_indent(out, ind.map(|d| d + 1));
                        // Sparse: only buckets that hold an exemplar.
                        let _ = write!(out, "\"exemplars\":{}[", json_space(ind));
                        let mut first = true;
                        for (i, e) in h.exemplars.iter().enumerate() {
                            if let Some(e) = e {
                                if !first {
                                    out.push(',');
                                }
                                first = false;
                                let _ = write!(
                                    out,
                                    "{{\"bucket\":{i},\"trace\":{},\"value\":",
                                    e.trace
                                );
                                json_f64(out, e.value);
                                out.push('}');
                            }
                        }
                        out.push(']');
                        newline_indent(out, ind);
                        out.push('}');
                    })
                }),
            ),
        ];
        out.push('{');
        for (i, (name, write_section)) in sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            newline_indent(&mut out, indent.map(|d| d + 1));
            let _ = write!(out, "\"{name}\":{}", json_space(indent));
            write_section(&mut out, indent.map(|d| d + 1));
        }
        newline_indent(&mut out, indent);
        out.push('}');
        out
    }
}

fn json_space(indent: Option<usize>) -> &'static str {
    if indent.is_some() {
        " "
    } else {
        ""
    }
}

fn newline_indent(out: &mut String, depth: Option<usize>) {
    if let Some(d) = depth {
        out.push('\n');
        for _ in 0..d {
            out.push_str("  ");
        }
    }
}

fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn json_object<'a, V: 'a>(
    out: &mut String,
    indent: Option<usize>,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    write_value: impl Fn(&mut String, &V, Option<usize>),
) {
    let entries: Vec<_> = entries.collect();
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (key, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent.map(|d| d + 1));
        // Metric names are restricted to a JSON-safe alphabet by
        // convention; escape the two structural characters anyway.
        let _ = write!(
            out,
            "\"{}\":{}",
            key.replace('\\', "\\\\").replace('"', "\\\""),
            json_space(indent)
        );
        write_value(out, value, indent.map(|d| d + 1));
    }
    newline_indent(out, indent);
    out.push('}');
}

static GLOBAL: OnceLock<Recorder> = OnceLock::new();

/// True when `OREX_TELEMETRY` asks for telemetry (metrics *and* trace
/// collection) to start disabled.
pub(crate) fn env_disabled() -> bool {
    std::env::var("OREX_TELEMETRY")
        .map(|v| matches!(v.to_ascii_lowercase().as_str(), "0" | "off" | "false"))
        .unwrap_or(false)
}

/// The process-wide recorder the engine crates record into. Enabled by
/// default; disable with `global().set_enabled(false)`, or set the
/// `OREX_TELEMETRY` environment variable to `0`, `off`, or `false` to
/// start the process with recording off (handy for overhead A/B runs).
/// The same variable also disables the global [`tracer`].
pub fn global() -> &'static Recorder {
    GLOBAL.get_or_init(|| {
        if env_disabled() {
            Recorder::disabled()
        } else {
            Recorder::new()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_basics() {
        let r = Recorder::new();
        r.counter("c").add(5);
        r.counter("c").incr();
        r.gauge("g").set(1.5);
        r.gauge("g").set(-2.5);
        let h = r.histogram("h");
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 6);
        assert_eq!(snap.gauges["g"], -2.5);
        let hs = &snap.histograms["h"];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 16.0);
        assert_eq!(hs.min, 1.0);
        assert_eq!(hs.max, 10.0);
        assert_eq!(hs.mean, 4.0);
        assert!(hs.p50 >= 1.0 && hs.p50 <= 4.0, "p50 = {}", hs.p50);
        assert!(hs.p95 >= 4.0 && hs.p95 <= 16.0, "p95 = {}", hs.p95);
    }

    #[test]
    fn concurrent_counters_are_exact() {
        const THREADS: usize = 8;
        const OPS: u64 = 10_000;
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let r = r.clone();
                scope.spawn(move || {
                    let c = r.counter("hits");
                    let h = r.histogram("latency");
                    for i in 0..OPS {
                        c.incr();
                        h.record((i % 7) as f64);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters["hits"], THREADS as u64 * OPS);
        let hs = &snap.histograms["latency"];
        assert_eq!(hs.count, THREADS as u64 * OPS);
        // Sum of 0..7 cycling: OPS/7 full cycles of 21 per thread, exact
        // because every sample is a small integer (f64-exact adds).
        let per_thread: f64 = (0..OPS).map(|i| (i % 7) as f64).sum();
        assert_eq!(hs.sum, per_thread * THREADS as f64);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::disabled();
        r.counter("c").add(3);
        r.gauge("g").set(1.0);
        r.histogram("h").record(2.0);
        drop(r.span("s"));
        assert!(r.snapshot().is_empty(), "disabled recorder must stay empty");
        // Re-enabled, the same recorder starts collecting.
        r.set_enabled(true);
        r.counter("c").incr();
        assert_eq!(r.snapshot().counters["c"], 1);
    }

    #[test]
    fn span_records_elapsed_micros() {
        let r = Recorder::new();
        {
            let _span = r.span("work_us");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let hs = r.snapshot().histograms["work_us"];
        assert_eq!(hs.count, 1);
        assert!(hs.sum >= 1_000.0, "expected ≥1ms recorded, got {}", hs.sum);
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Recorder::new();
        r.counter("b.count").incr();
        r.counter("a.count").add(2);
        r.gauge("g.val").set(0.5);
        r.histogram("h.us").record(3.0);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Name-sorted within each section.
        let a = json.find("a.count").unwrap();
        let b = json.find("b.count").unwrap();
        assert!(a < b, "counters must be name-sorted: {json}");
        assert!(
            json.contains(r#""counters":{"a.count":2,"b.count":1}"#),
            "{json}"
        );
        assert!(json.contains(r#""g.val":0.5"#), "{json}");
        assert!(json.contains(r#""count":1"#), "{json}");
        assert!(json.contains(r#""p95":"#), "{json}");
        let pretty = r.snapshot().to_json_pretty();
        assert!(pretty.contains("\n  \"counters\": {\n"), "{pretty}");
    }

    #[test]
    fn empty_snapshot_serializes() {
        let snap = Recorder::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(
            snap.to_json(),
            r#"{"counters":{},"gauges":{},"histograms":{}}"#
        );
    }

    #[test]
    fn reset_clears_metrics() {
        let r = Recorder::new();
        r.counter("c").incr();
        assert!(!r.snapshot().is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Recorder::new();
        r.counter("m").incr();
        r.gauge("m").set(1.0);
    }

    #[test]
    fn global_is_shared() {
        global().counter("test.global").incr();
        assert!(global().snapshot().counters.contains_key("test.global"));
    }

    #[test]
    fn counter_handle_is_live_and_survives_disable() {
        let r = Recorder::new();
        let h = r.counter_handle("hot.ops");
        h.add(2);
        h.incr();
        assert_eq!(r.snapshot().counters["hot.ops"], 3);
        // A handle resolved while disabled bumps a detached dummy.
        let d = Recorder::disabled();
        let dead = d.counter_handle("hot.ops");
        dead.add(100);
        assert!(d.snapshot().is_empty());
    }

    #[test]
    fn handles_re_resolve_after_reset() {
        let r = Recorder::new();
        let c = r.counter_handle("hot.ops");
        let h = r.histogram("hot.us");
        c.add(5);
        h.record(1.0);
        r.reset();
        assert!(r.snapshot().is_empty());
        // The pre-reset handles re-attach (re-registering the metrics)
        // instead of recording into orphaned storage forever.
        c.add(2);
        h.record(3.0);
        let snap = r.snapshot();
        assert_eq!(snap.counters["hot.ops"], 2);
        assert_eq!(snap.histograms["hot.us"].count, 1);
        assert_eq!(snap.histograms["hot.us"].sum, 3.0);
    }

    #[test]
    fn handles_resolved_while_disabled_attach_on_enable() {
        let r = Recorder::disabled();
        let c = r.counter_handle("late.ops");
        let h = r.histogram("late.us");
        c.incr();
        h.record(1.0);
        assert!(!h.is_recording());
        assert!(r.snapshot().is_empty());
        r.set_enabled(true);
        c.add(3);
        h.record(2.0);
        assert!(h.is_recording());
        let snap = r.snapshot();
        assert_eq!(snap.counters["late.ops"], 3);
        assert_eq!(snap.histograms["late.us"].count, 1);
    }

    #[test]
    fn concurrent_handle_re_resolution_is_safe() {
        let r = Recorder::new();
        let c = r.counter_handle("contended.ops");
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..2_000 {
                        c.incr();
                    }
                });
            }
            let r = r.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    r.reset();
                    std::thread::yield_now();
                }
            });
        });
        // Post-reset increments all land in the *current* registration;
        // exact counts depend on interleaving, but the final add must be
        // visible and the metric re-registered.
        c.add(1);
        assert!(r.snapshot().counters["contended.ops"] >= 1);
    }

    #[test]
    fn snapshot_diff_reports_relative_deltas() {
        let base = Recorder::new();
        base.counter("c").add(10);
        base.histogram("h.us").record(100.0);
        let cur = Recorder::new();
        cur.counter("c").add(15);
        cur.histogram("h.us").record(130.0);
        cur.counter("only.current").incr();
        let diff = cur.snapshot().diff(&base.snapshot());
        let c = diff.get("c").unwrap();
        assert_eq!(c.kind, "counter");
        assert!((c.relative - 0.5).abs() < 1e-12, "{}", c.relative);
        let h = diff.get("h.us").unwrap();
        assert_eq!(h.kind, "histogram_mean");
        assert!((h.relative - 0.3).abs() < 1e-12, "{}", h.relative);
        assert!(diff.get("only.current").is_none(), "unmatched metrics skip");
        assert_eq!(diff.regressions(0.4).len(), 1);
        assert_eq!(diff.regressions(0.4)[0].name, "c");
        assert_eq!(diff.regressions(0.6).len(), 0);
    }

    #[test]
    fn snapshot_median_is_per_metric() {
        let snaps: Vec<Snapshot> = [5u64, 50, 7]
            .iter()
            .map(|&v| {
                let r = Recorder::new();
                r.counter("c").add(v);
                r.histogram("h").record(v as f64);
                r.snapshot()
            })
            .collect();
        let med = Snapshot::median(&snaps);
        assert_eq!(med.counters["c"], 7);
        assert_eq!(med.histograms["h"].mean, 7.0);
        assert_eq!(med.histograms["h"].count, 1);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Recorder::new();
        r.counter("session.queries").add(3);
        r.gauge("authority.power.last_residual").set(0.25);
        let h = r.histogram("session.rank_us");
        h.record(3.0);
        h.record(5.0);
        let prom = r.snapshot().to_prometheus();
        assert!(prom.contains("# TYPE orex_session_queries counter\norex_session_queries 3\n"));
        assert!(prom.contains("orex_authority_power_last_residual 0.25\n"));
        assert!(prom.contains("# TYPE orex_session_rank_us histogram\n"));
        // 3.0 and 5.0 land in buckets with upper bounds 4 and 8:
        // cumulative counts 1 then 2.
        assert!(
            prom.contains("orex_session_rank_us_bucket{le=\"4\"} 1\n"),
            "{prom}"
        );
        assert!(
            prom.contains("orex_session_rank_us_bucket{le=\"8\"} 2\n"),
            "{prom}"
        );
        assert!(prom.contains("orex_session_rank_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(prom.contains("orex_session_rank_us_sum 8\n"));
        assert!(prom.contains("orex_session_rank_us_count 2\n"));
    }

    #[test]
    fn snapshot_json_includes_buckets() {
        let r = Recorder::new();
        r.histogram("h").record(3.0);
        let json = r.snapshot().to_json();
        assert!(json.contains("\"buckets\":[0,"), "{json}");
        let pretty = r.snapshot().to_json_pretty();
        // Buckets stay on one line even pretty-printed.
        assert!(pretty.contains("\"buckets\": [0,"), "{pretty}");
    }

    #[test]
    fn prometheus_sanitizes_hostile_metric_names_and_escapes_labels() {
        let r = Recorder::new();
        // Hostile metric names: quotes, newlines, backslashes, spaces.
        r.counter("evil\"name\nwith\\stuff").incr();
        r.gauge("another evil{label=\"x\"}").set(1.0);
        r.histogram("bad\nhist").record(2.0);
        let prom = r.snapshot().to_prometheus();
        for line in prom.lines() {
            let payload = line.strip_prefix("# TYPE ").unwrap_or(line);
            let name = payload.split([' ', '{']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "unsanitized metric name in line {line:?}"
            );
            assert!(!line.contains('\n'));
        }
        assert!(prom.contains("orex_evil_name_with_stuff 1\n"), "{prom}");
        // Label-value escaping covers backslash, quote, and newline.
        assert_eq!(prom_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(prom_label_value("plain-123"), "plain-123");
    }

    #[test]
    fn exemplars_land_in_buckets_and_export() {
        let r = Recorder::new();
        let h = r.histogram("server.request_us");
        h.record_with_exemplar(3.0, Some(42)); // bucket le=4
        h.record_with_exemplar(1e12, Some(7)); // clamps into last bucket
        h.record(5.0); // no exemplar for bucket le=8
        let snap = r.snapshot();
        let s = &snap.histograms["server.request_us"];
        let b4 = Histogram::bucket_index(3.0);
        assert_eq!(
            s.exemplars[b4],
            Some(Exemplar {
                trace: 42,
                value: 3.0
            })
        );
        assert_eq!(
            s.exemplars[BUCKETS - 1],
            Some(Exemplar {
                trace: 7,
                value: 1e12
            })
        );
        assert_eq!(s.exemplars[Histogram::bucket_index(5.0)], None);
        let prom = snap.to_prometheus();
        assert!(
            prom.contains("orex_server_request_us_bucket{le=\"4\"} 1 # {trace_id=\"42\"} 3\n"),
            "{prom}"
        );
        assert!(
            prom.contains(
                "orex_server_request_us_bucket{le=\"+Inf\"} 3 # {trace_id=\"7\"} 1000000000000\n"
            ),
            "{prom}"
        );
        let json = snap.to_json();
        assert!(
            json.contains(&format!("{{\"bucket\":{b4},\"trace\":42,\"value\":3}}")),
            "{json}"
        );
    }

    #[test]
    fn exemplar_overwrites_keep_latest_trace() {
        let r = Recorder::new();
        let h = r.histogram("h");
        h.record_with_exemplar(3.0, Some(1));
        h.record_with_exemplar(3.5, Some(2));
        h.record_with_exemplar(3.9, None); // None never clears an exemplar
        let snap = r.snapshot();
        let e = snap.histograms["h"].exemplars[Histogram::bucket_index(3.5)].unwrap();
        assert_eq!(e.trace, 2);
        assert_eq!(e.value, 3.5);
    }

    #[test]
    fn span_drop_stamps_exemplar_from_sampled_trace() {
        let r = Recorder::new();
        let tracer = tracer();
        {
            let _t = tracer.span("exemplar.test");
            let _s = r.span("exemplar.span_us");
        }
        let snap = r.snapshot();
        let s = &snap.histograms["exemplar.span_us"];
        assert_eq!(s.count, 1);
        // The global tracer samples trace 1 by default (every=1 unless
        // OREX_TRACE_SAMPLE says otherwise), so the bucket the sample
        // landed in should carry a trace id — unless sampling disabled it.
        let have: Vec<u64> = s.exemplars.iter().flatten().map(|e| e.trace).collect();
        if tracer.is_enabled() {
            assert!(!have.is_empty(), "sampled span should leave an exemplar");
        }
    }
}
