//! Bounded lock-free record sink shared by the trace and log modules.
//!
//! Each slot is an `AtomicPtr`; a writer takes a ticket from `head`,
//! `swap`s its boxed record into `slot[ticket % cap]`, and frees whatever
//! it displaced — so the ring holds at most `cap` records, eviction is
//! oldest-first by construction, and neither `push` nor `drain` ever
//! blocks. Records carry their ticket (a global sequence number) so a
//! drain can restore completion order after the per-slot swaps.

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

/// A record type that stores the ring ticket assigned on push.
pub(crate) trait Sequenced {
    /// Stamps the assigned ticket into the record.
    fn set_seq(&mut self, seq: u64);
    /// The ticket stamped by [`Sequenced::set_seq`].
    fn seq(&self) -> u64;
}

/// Bounded lock-free sink; see the module docs.
pub(crate) struct Ring<T> {
    head: AtomicU64,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T: Sequenced> Ring<T> {
    pub(crate) fn new(capacity: usize) -> Self {
        let slots: Vec<AtomicPtr<T>> = (0..capacity.max(1))
            .map(|_| AtomicPtr::new(std::ptr::null_mut()))
            .collect();
        Self {
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn push(&self, mut record: Box<T>) {
        // ORDERING: Relaxed — the ticket is a pure sequence number; the
        // record itself is published by the AcqRel `swap` below, which
        // is what a draining thread synchronizes with.
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        record.set_seq(ticket);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let old = slot.swap(Box::into_raw(record), Ordering::AcqRel);
        if !old.is_null() {
            // SAFETY: every pointer stored in a slot came from
            // `Box::into_raw`, and `swap` transfers exclusive ownership
            // to whoever extracts it — nobody else can see `old` now.
            drop(unsafe { Box::from_raw(old) });
        }
    }

    pub(crate) fn drain(&self) -> Vec<T> {
        let mut out = self.take_all();
        out.sort_by_key(Sequenced::seq);
        out
    }
}

impl<T> Ring<T> {
    /// Extracts every record without restoring completion order; the
    /// unordered core of `drain`, and all `Drop` needs.
    fn take_all(&self) -> Vec<T> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let p = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !p.is_null() {
                // SAFETY: as in `push`, the swap hands us sole ownership
                // of a pointer minted by `Box::into_raw`.
                out.push(*unsafe { Box::from_raw(p) });
            }
        }
        out
    }
}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        self.take_all();
    }
}
