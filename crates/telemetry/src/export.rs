//! Renders drained traces for external tools.
//!
//! [`to_chrome_trace`] emits the Chrome trace-event JSON format —
//! `{"traceEvents":[...]}` with matched `B`/`E` duration pairs and `i`
//! instant events — loadable in `chrome://tracing` or Perfetto.
//! [`to_folded_stacks`] emits `root;child;leaf <self-time-µs>` lines for
//! `flamegraph.pl` / inferno.

use crate::trace::{AttrValue, SpanId, SpanRecord, TraceId};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Children of each span, as indices into the drained record slice.
type ChildIndex = HashMap<(TraceId, SpanId), Vec<usize>>;

/// Index of each record's children, ordered by start time, plus the
/// roots. A span whose parent was evicted from the ring is promoted to a
/// root so partial traces still render.
fn build_tree(records: &[SpanRecord]) -> (Vec<usize>, ChildIndex) {
    let ids: HashMap<(TraceId, SpanId), usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| ((r.trace, r.id), i))
        .collect();
    let mut roots = Vec::new();
    let mut children: ChildIndex = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        match r.parent {
            Some(p) if ids.contains_key(&(r.trace, p)) => {
                children.entry((r.trace, p)).or_default().push(i);
            }
            _ => roots.push(i),
        }
    }
    let by_start = |a: &usize, b: &usize| {
        records[*a]
            .start_ns
            .cmp(&records[*b].start_ns)
            .then(records[*a].id.0.cmp(&records[*b].id.0))
    };
    roots.sort_by(by_start);
    for c in children.values_mut() {
        c.sort_by(by_start);
    }
    (roots, children)
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_attr_value(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(_) => out.push_str("null"),
        AttrValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// One Chrome trace event line. `ts` is microseconds (float).
fn write_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts_us: f64,
    tid: u64,
    extra: impl FnOnce(&mut String),
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {\"name\":\"");
    escape_json(name, out);
    let _ = write!(
        out,
        "\",\"cat\":\"orex\",\"ph\":\"{ph}\",\"ts\":{ts_us},\"pid\":1,\"tid\":{tid}"
    );
    extra(out);
    out.push('}');
}

/// Renders completed spans as Chrome trace-event JSON. Every span
/// becomes a matched `B`/`E` pair (children emitted strictly inside
/// their parent), instant events become `ph:"i"` scoped to the thread,
/// and span attributes plus the trace id ride along in `args`.
pub fn to_chrome_trace(records: &[SpanRecord]) -> String {
    let (roots, children) = build_tree(records);
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    // Iterative depth-first emit: open the span, interleave its instant
    // events and children by timestamp, then close it.
    for root in roots {
        emit_span(records, &children, root, &mut out, &mut first);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}");
    out
}

fn emit_span(
    records: &[SpanRecord],
    children: &ChildIndex,
    idx: usize,
    out: &mut String,
    first: &mut bool,
) {
    let r = &records[idx];
    write_event(
        out,
        first,
        r.name,
        'B',
        r.start_ns as f64 / 1e3,
        r.tid,
        |out| {
            let _ = write!(out, ",\"args\":{{\"trace\":{}", r.trace.0);
            for (key, value) in &r.attrs {
                out.push_str(",\"");
                escape_json(key, out);
                out.push_str("\":");
                write_attr_value(out, value);
            }
            out.push('}');
        },
    );
    // Merge children and instant events into one timeline.
    enum Item<'a> {
        Child(usize),
        Event(&'a crate::trace::TraceEvent),
    }
    let mut items: Vec<(u64, Item<'_>)> = Vec::new();
    if let Some(kids) = children.get(&(r.trace, r.id)) {
        for &k in kids {
            items.push((records[k].start_ns, Item::Child(k)));
        }
    }
    for e in &r.events {
        items.push((e.at_ns, Item::Event(e)));
    }
    items.sort_by_key(|(ts, _)| *ts);
    for (_, item) in items {
        match item {
            Item::Child(k) => emit_span(records, children, k, out, first),
            Item::Event(e) => write_event(
                out,
                first,
                e.name,
                'i',
                e.at_ns as f64 / 1e3,
                r.tid,
                |out| out.push_str(",\"s\":\"t\""),
            ),
        }
    }
    write_event(
        out,
        first,
        r.name,
        'E',
        r.end_ns as f64 / 1e3,
        r.tid,
        |_| {},
    );
}

/// Renders completed spans as folded flamegraph stacks: one
/// `root;child;leaf <self-time-µs>` line per unique stack, name-sorted.
/// Self time is the span's duration minus its children's durations, so
/// the flamegraph's widths add up.
pub fn to_folded_stacks(records: &[SpanRecord]) -> String {
    let (roots, children) = build_tree(records);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    fn walk(
        records: &[SpanRecord],
        children: &ChildIndex,
        idx: usize,
        prefix: &str,
        folded: &mut BTreeMap<String, u64>,
    ) {
        let r = &records[idx];
        let path = if prefix.is_empty() {
            r.name.to_string()
        } else {
            format!("{prefix};{}", r.name)
        };
        let mut child_ns = 0u64;
        if let Some(kids) = children.get(&(r.trace, r.id)) {
            for &k in kids {
                child_ns += records[k].duration_ns();
                walk(records, children, k, &path, folded);
            }
        }
        let self_us = r.duration_ns().saturating_sub(child_ns) / 1_000;
        *folded.entry(path).or_insert(0) += self_us;
    }
    for root in roots {
        walk(records, &children, root, "", &mut folded);
    }
    let mut out = String::new();
    for (path, us) in folded {
        let _ = writeln!(out, "{path} {us}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn sample_records() -> Vec<SpanRecord> {
        let t = Tracer::new(64);
        {
            let mut root = t.span("session.query");
            root.attr_str("query", "multicast \"routing\"");
            {
                let _rank = t.span("session.rank");
                let mut it = t.span("authority.power.iteration");
                it.attr_f64("residual", 0.5);
                it.event("topk.prune");
            }
        }
        t.drain()
    }

    #[test]
    fn chrome_trace_has_matched_pairs_in_nesting_order() {
        let json = to_chrome_trace(&sample_records());
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 3);
        assert_eq!(e, 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        // The root opens first and closes last.
        let first_b = json.find("session.query").unwrap();
        let last_e = json.rfind("session.query").unwrap();
        let iter_b = json.find("authority.power.iteration").unwrap();
        assert!(first_b < iter_b && iter_b < last_e, "{json}");
        // Attributes land in args, escaped.
        assert!(
            json.contains("\"query\":\"multicast \\\"routing\\\"\""),
            "{json}"
        );
        assert!(json.contains("\"residual\":0.5"), "{json}");
    }

    #[test]
    fn orphaned_children_become_roots() {
        let mut records = sample_records();
        // Drop the root record: its child must still render.
        records.retain(|r| r.name != "session.query");
        let json = to_chrome_trace(&records);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn folded_stacks_fold_paths() {
        let folded = to_folded_stacks(&sample_records());
        assert!(
            folded.contains("session.query;session.rank;authority.power.iteration "),
            "{folded}"
        );
        let mut lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3, "{folded}");
        let sorted = {
            lines.sort();
            lines
        };
        assert_eq!(sorted, folded.lines().collect::<Vec<_>>(), "name-sorted");
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').unwrap();
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn empty_trace_serializes() {
        assert_eq!(
            to_chrome_trace(&[]),
            "{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ms\"}"
        );
        assert_eq!(to_folded_stacks(&[]), "");
    }
}
