//! Renders drained traces and logs for external tools.
//!
//! [`to_chrome_trace`] emits the Chrome trace-event JSON format —
//! `{"traceEvents":[...]}` with matched `B`/`E` duration pairs and `i`
//! instant events — loadable in `chrome://tracing` or Perfetto.
//! [`to_folded_stacks`] emits `root;child;leaf <self-time-µs>` lines for
//! `flamegraph.pl` / inferno. Drained [`LogRecord`]s render as JSON-lines
//! ([`log_json_lines`], one self-contained object per line, the format
//! `GET /logs` serves) or human-readable text ([`log_text`]).

use crate::log::{FieldValue, LogRecord};
use crate::trace::{AttrValue, SpanId, SpanRecord, TraceId};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Children of each span, as indices into the drained record slice.
type ChildIndex = HashMap<(TraceId, SpanId), Vec<usize>>;

/// Index of each record's children, ordered by start time, plus the
/// roots. A span whose parent was evicted from the ring is promoted to a
/// root so partial traces still render.
fn build_tree(records: &[SpanRecord]) -> (Vec<usize>, ChildIndex) {
    let ids: HashMap<(TraceId, SpanId), usize> = records
        .iter()
        .enumerate()
        .map(|(i, r)| ((r.trace, r.id), i))
        .collect();
    let mut roots = Vec::new();
    let mut children: ChildIndex = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        match r.parent {
            Some(p) if ids.contains_key(&(r.trace, p)) => {
                children.entry((r.trace, p)).or_default().push(i);
            }
            _ => roots.push(i),
        }
    }
    let by_start = |a: &usize, b: &usize| {
        records[*a]
            .start_ns
            .cmp(&records[*b].start_ns)
            .then(records[*a].id.0.cmp(&records[*b].id.0))
    };
    roots.sort_by(by_start);
    for c in children.values_mut() {
        c.sort_by(by_start);
    }
    (roots, children)
}

pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_attr_value(out: &mut String, value: &AttrValue) {
    match value {
        AttrValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        AttrValue::F64(_) => out.push_str("null"),
        AttrValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// One Chrome trace event line. `ts` is microseconds (float).
fn write_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts_us: f64,
    tid: u64,
    extra: impl FnOnce(&mut String),
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("  {\"name\":\"");
    escape_json(name, out);
    let _ = write!(
        out,
        "\",\"cat\":\"orex\",\"ph\":\"{ph}\",\"ts\":{ts_us},\"pid\":1,\"tid\":{tid}"
    );
    extra(out);
    out.push('}');
}

/// Renders completed spans as Chrome trace-event JSON. Every span
/// becomes a matched `B`/`E` pair (children emitted strictly inside
/// their parent), instant events become `ph:"i"` scoped to the thread,
/// and span attributes plus the trace id ride along in `args`.
pub fn to_chrome_trace(records: &[SpanRecord]) -> String {
    let (roots, children) = build_tree(records);
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    // Iterative depth-first emit: open the span, interleave its instant
    // events and children by timestamp, then close it.
    for root in roots {
        emit_span(records, &children, root, &mut out, &mut first);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}");
    out
}

fn emit_span(
    records: &[SpanRecord],
    children: &ChildIndex,
    idx: usize,
    out: &mut String,
    first: &mut bool,
) {
    let r = &records[idx];
    write_event(
        out,
        first,
        r.name,
        'B',
        r.start_ns as f64 / 1e3,
        r.tid,
        |out| {
            let _ = write!(out, ",\"args\":{{\"trace\":{}", r.trace.0);
            for (key, value) in &r.attrs {
                out.push_str(",\"");
                escape_json(key, out);
                out.push_str("\":");
                write_attr_value(out, value);
            }
            out.push('}');
        },
    );
    // Merge children and instant events into one timeline.
    enum Item<'a> {
        Child(usize),
        Event(&'a crate::trace::TraceEvent),
    }
    let mut items: Vec<(u64, Item<'_>)> = Vec::new();
    if let Some(kids) = children.get(&(r.trace, r.id)) {
        for &k in kids {
            items.push((records[k].start_ns, Item::Child(k)));
        }
    }
    for e in &r.events {
        items.push((e.at_ns, Item::Event(e)));
    }
    items.sort_by_key(|(ts, _)| *ts);
    for (_, item) in items {
        match item {
            Item::Child(k) => emit_span(records, children, k, out, first),
            Item::Event(e) => write_event(
                out,
                first,
                e.name,
                'i',
                e.at_ns as f64 / 1e3,
                r.tid,
                |out| out.push_str(",\"s\":\"t\""),
            ),
        }
    }
    write_event(
        out,
        first,
        r.name,
        'E',
        r.end_ns as f64 / 1e3,
        r.tid,
        |_| {},
    );
}

/// A span in the line-oriented wire format served by
/// `GET /trace/<id>?format=wire` — the owned-string twin of
/// [`SpanRecord`] (whose `&'static str` name cannot cross a process
/// boundary), carrying its attributes pre-rendered as the Chrome
/// `args` JSON object.
#[derive(Clone, Debug, PartialEq)]
pub struct WireSpan {
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub id: u64,
    /// Parent span id, `None` for roots.
    pub parent: Option<u64>,
    /// Start time, nanoseconds since the *origin process's* tracer
    /// epoch (each process has its own; stitching aligns them).
    pub start_ns: u64,
    /// End time, same clock as `start_ns`.
    pub end_ns: u64,
    /// Logical thread id in the origin process.
    pub tid: u64,
    /// Span name.
    pub name: String,
    /// The Chrome `args` object as rendered JSON, e.g.
    /// `{"trace":7,"worker":1}`.
    pub args_json: String,
}

/// Escapes the wire format's field separators inside a free-form field.
fn escape_wire(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

fn unescape_wire(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => break,
        }
    }
    out
}

/// Renders the Chrome `args` object for one span: the trace id plus
/// every attribute.
fn span_args_json(r: &SpanRecord) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"trace\":{}", r.trace.0);
    for (key, value) in &r.attrs {
        out.push_str(",\"");
        escape_json(key, &mut out);
        out.push_str("\":");
        write_attr_value(&mut out, value);
    }
    out.push('}');
    out
}

/// Serializes spans in the cross-process wire format: one span per
/// line, tab-separated —
/// `trace  id  parent|-  start_ns  end_ns  tid  name  args_json`
/// with tabs/newlines/backslashes escaped inside `name` and
/// `args_json`. Instant events are not carried; the stitched fleet view
/// is about cross-process structure, and the origin process's own
/// `GET /trace/<id>` still renders them.
pub fn to_wire(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(out, "{}\t{}\t", r.trace.0, r.id.0);
        match r.parent {
            Some(p) => {
                let _ = write!(out, "{}", p.0);
            }
            None => out.push('-'),
        }
        let _ = write!(out, "\t{}\t{}\t{}\t", r.start_ns, r.end_ns, r.tid);
        escape_wire(r.name, &mut out);
        out.push('\t');
        escape_wire(&span_args_json(r), &mut out);
        out.push('\n');
    }
    out
}

/// Parses the [`to_wire`] format back into owned spans. Malformed lines
/// are skipped — a stitching ingress must render what it can, not 500
/// on one worker's bad byte.
pub fn parse_wire(text: &str) -> Vec<WireSpan> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let mut fields = line.splitn(8, '\t');
        let (Some(trace), Some(id), Some(parent), Some(start), Some(end), Some(tid)) = (
            fields.next().and_then(|f| f.parse::<u64>().ok()),
            fields.next().and_then(|f| f.parse::<u64>().ok()),
            fields.next().map(|f| {
                if f == "-" {
                    Ok(None)
                } else {
                    f.parse::<u64>().map(Some)
                }
            }),
            fields.next().and_then(|f| f.parse::<u64>().ok()),
            fields.next().and_then(|f| f.parse::<u64>().ok()),
            fields.next().and_then(|f| f.parse::<u64>().ok()),
        ) else {
            continue;
        };
        let Ok(parent) = parent else { continue };
        let (Some(name), Some(args)) = (fields.next(), fields.next()) else {
            continue;
        };
        out.push(WireSpan {
            trace,
            id,
            parent,
            start_ns: start,
            end_ns: end,
            tid,
            name: unescape_wire(name),
            args_json: unescape_wire(args),
        });
    }
    out
}

/// One process's share of a stitched fleet trace.
#[derive(Clone, Debug)]
pub struct ProcessLane {
    /// Chrome `pid` for this lane (distinct per process in the export).
    pub pid: u64,
    /// Human label, rendered via `process_name` metadata (e.g.
    /// `router 127.0.0.1:7500` or `worker-1 127.0.0.1:7511`).
    pub label: String,
    /// Clock alignment: added to every span timestamp to translate the
    /// origin process's tracer clock into the stitching process's
    /// clock (estimated from health-probe round trips; may be
    /// negative).
    pub offset_ns: i64,
    /// The spans this process contributed.
    pub spans: Vec<WireSpan>,
}

/// Renders a stitched multi-process trace as Chrome trace-event JSON:
/// one `pid` lane per process, labelled with `process_name` metadata
/// events, every span a `ph:"X"` complete event whose timestamps are
/// shifted onto the stitching process's clock by the lane's offset.
/// Perfetto nests `X` events by time containment, so the cross-process
/// parent/child structure reads directly off the lanes.
pub fn to_chrome_trace_stitched(lanes: &[ProcessLane]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for lane in lanes {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"",
            lane.pid
        );
        escape_json(&lane.label, &mut out);
        out.push_str("\"}}");
        for s in &lane.spans {
            let start = s.start_ns.saturating_add_signed(lane.offset_ns);
            let dur = s.end_ns.saturating_sub(s.start_ns);
            out.push_str(",\n  {\"name\":\"");
            escape_json(&s.name, &mut out);
            let _ = write!(
                out,
                "\",\"cat\":\"orex\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{}",
                start as f64 / 1e3,
                dur as f64 / 1e3,
                lane.pid,
                s.tid,
                if s.args_json.is_empty() { "{}" } else { &s.args_json }
            );
            out.push('}');
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders completed spans as folded flamegraph stacks: one
/// `root;child;leaf <self-time-µs>` line per unique stack, name-sorted.
/// Self time is the span's duration minus its children's durations, so
/// the flamegraph's widths add up.
pub fn to_folded_stacks(records: &[SpanRecord]) -> String {
    let (roots, children) = build_tree(records);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    fn walk(
        records: &[SpanRecord],
        children: &ChildIndex,
        idx: usize,
        prefix: &str,
        folded: &mut BTreeMap<String, u64>,
    ) {
        let r = &records[idx];
        let path = if prefix.is_empty() {
            r.name.to_string()
        } else {
            format!("{prefix};{}", r.name)
        };
        let mut child_ns = 0u64;
        if let Some(kids) = children.get(&(r.trace, r.id)) {
            for &k in kids {
                child_ns += records[k].duration_ns();
                walk(records, children, k, &path, folded);
            }
        }
        let self_us = r.duration_ns().saturating_sub(child_ns) / 1_000;
        *folded.entry(path).or_insert(0) += self_us;
    }
    for root in roots {
        walk(records, &children, root, "", &mut folded);
    }
    let mut out = String::new();
    for (path, us) in folded {
        let _ = writeln!(out, "{path} {us}");
    }
    out
}

fn write_field_value(out: &mut String, value: &FieldValue) {
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

/// Appends one log record as a single-line JSON object (no newline):
/// `{"seq":…,"ts_ns":…,"level":"INFO","target":…,"message":…,`
/// `"trace":…,"span":…,"tid":…,"fields":{…}}`. `trace`/`span` are
/// omitted for records made outside any span.
pub fn log_record_json(record: &LogRecord, out: &mut String) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"ts_ns\":{},\"level\":\"{}\",\"target\":\"",
        record.seq,
        record.unix_ns,
        record.level.as_str()
    );
    escape_json(record.target, out);
    out.push_str("\",\"message\":\"");
    escape_json(&record.message, out);
    out.push('"');
    if let Some(trace) = record.trace {
        let _ = write!(out, ",\"trace\":{}", trace.0);
    }
    if let Some(span) = record.span {
        let _ = write!(out, ",\"span\":{}", span.0);
    }
    let _ = write!(out, ",\"tid\":{},\"fields\":{{", record.tid);
    for (i, (key, value)) in record.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(key, out);
        out.push_str("\":");
        write_field_value(out, value);
    }
    out.push_str("}}");
}

/// Renders drained log records as JSON-lines: one
/// [`log_record_json`] object per line, capture order preserved.
pub fn log_json_lines(records: &[LogRecord]) -> String {
    let mut out = String::new();
    for record in records {
        log_record_json(record, &mut out);
        out.push('\n');
    }
    out
}

/// Days-since-epoch to `(year, month, day)` in the proleptic Gregorian
/// calendar (Howard Hinnant's `civil_from_days`).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = yoe + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

/// Appends `unix_ns` (nanoseconds since the Unix epoch) as an RFC 3339
/// UTC timestamp with microsecond precision, e.g.
/// `2025-08-06T14:03:07.000123Z`.
pub fn write_utc_timestamp(unix_ns: u64, out: &mut String) {
    let secs = unix_ns / 1_000_000_000;
    let micros = (unix_ns % 1_000_000_000) / 1_000;
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    let tod = secs % 86_400;
    let _ = write!(
        out,
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}.{micros:06}Z",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    );
}

/// Renders drained log records as human-readable text, one line per
/// record: UTC timestamp, level, target, message, `key=value` fields,
/// and the trace/span ids when present.
pub fn log_text(records: &[LogRecord]) -> String {
    let mut out = String::new();
    for r in records {
        write_utc_timestamp(r.unix_ns, &mut out);
        let _ = write!(out, " {:<5} {} {}", r.level.as_str(), r.target, r.message);
        for (key, value) in &r.fields {
            match value {
                FieldValue::Str(s) if s.is_empty() || s.contains([' ', '"', '=']) => {
                    let _ = write!(out, " {key}={s:?}");
                }
                _ => {
                    let _ = write!(out, " {key}={value}");
                }
            }
        }
        if let Some(trace) = r.trace {
            let _ = write!(out, " trace={}", trace.0);
        }
        if let Some(span) = r.span {
            let _ = write!(out, " span={}", span.0);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Level, Logger};
    use crate::trace::Tracer;

    fn sample_records() -> Vec<SpanRecord> {
        let t = Tracer::new(64);
        {
            let mut root = t.span("session.query");
            root.attr_str("query", "multicast \"routing\"");
            {
                let _rank = t.span("session.rank");
                let mut it = t.span("authority.power.iteration");
                it.attr_f64("residual", 0.5);
                it.event("topk.prune");
            }
        }
        t.drain()
    }

    #[test]
    fn wire_roundtrips_spans_including_escaped_fields() {
        let t = Tracer::new(64);
        {
            let mut root = t.span("session.query");
            root.attr_str("query", "tab\there\nand \"quotes\"");
            let _child = t.span("session.rank");
        }
        let records = t.drain();
        let wire = to_wire(&records);
        let parsed = parse_wire(&wire);
        assert_eq!(parsed.len(), records.len());
        let root = parsed.iter().find(|s| s.parent.is_none()).unwrap();
        let child = parsed.iter().find(|s| s.parent.is_some()).unwrap();
        assert_eq!(root.name, "session.query");
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(child.trace, root.trace);
        assert!(
            root.args_json.contains("tab\\there\\nand \\\"quotes\\\""),
            "{}",
            root.args_json
        );
        // Escapes keep the format line-oriented: 2 spans, 2 lines.
        assert_eq!(wire.lines().count(), 2);
    }

    #[test]
    fn wire_parser_skips_malformed_lines() {
        let text = "7\t1\t-\t0\t10\t0\ta\t{}\nnot a span\n7\t2\t1\t2\t8\t0\tb\t{}\n";
        let parsed = parse_wire(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].parent, Some(1));
    }

    #[test]
    fn stitched_trace_has_one_labelled_lane_per_process_with_shifted_clocks() {
        let span = |id: u64, start: u64, end: u64| WireSpan {
            trace: 7,
            id,
            parent: None,
            start_ns: start,
            end_ns: end,
            tid: 0,
            name: format!("span{id}"),
            args_json: String::from("{\"trace\":7}"),
        };
        let lanes = [
            ProcessLane {
                pid: 1,
                label: String::from("router 127.0.0.1:7500"),
                offset_ns: 0,
                spans: vec![span(1, 1_000, 9_000)],
            },
            ProcessLane {
                pid: 2,
                label: String::from("worker-0 127.0.0.1:7510"),
                offset_ns: 2_000,
                spans: vec![span(2, 1_500, 7_500)],
            },
        ];
        let json = to_chrome_trace_stitched(&lanes);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(
            json.contains("\"name\":\"router 127.0.0.1:7500\""),
            "{json}"
        );
        assert!(
            json.contains("\"name\":\"worker-0 127.0.0.1:7510\""),
            "{json}"
        );
        // Worker timestamps shift by its offset: (1500+2000)/1e3 µs.
        assert!(json.contains("\"ts\":3.5,\"dur\":6,\"pid\":2"), "{json}");
        assert!(json.contains("\"ts\":1,\"dur\":8,\"pid\":1"), "{json}");
    }

    #[test]
    fn chrome_trace_has_matched_pairs_in_nesting_order() {
        let json = to_chrome_trace(&sample_records());
        assert!(json.starts_with("{\"traceEvents\":["), "{json}");
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        assert_eq!(b, 3);
        assert_eq!(e, 3);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        // The root opens first and closes last.
        let first_b = json.find("session.query").unwrap();
        let last_e = json.rfind("session.query").unwrap();
        let iter_b = json.find("authority.power.iteration").unwrap();
        assert!(first_b < iter_b && iter_b < last_e, "{json}");
        // Attributes land in args, escaped.
        assert!(
            json.contains("\"query\":\"multicast \\\"routing\\\"\""),
            "{json}"
        );
        assert!(json.contains("\"residual\":0.5"), "{json}");
    }

    #[test]
    fn orphaned_children_become_roots() {
        let mut records = sample_records();
        // Drop the root record: its child must still render.
        records.retain(|r| r.name != "session.query");
        let json = to_chrome_trace(&records);
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
    }

    #[test]
    fn folded_stacks_fold_paths() {
        let folded = to_folded_stacks(&sample_records());
        assert!(
            folded.contains("session.query;session.rank;authority.power.iteration "),
            "{folded}"
        );
        let mut lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 3, "{folded}");
        let sorted = {
            lines.sort();
            lines
        };
        assert_eq!(sorted, folded.lines().collect::<Vec<_>>(), "name-sorted");
        for line in folded.lines() {
            let (_, count) = line.rsplit_once(' ').unwrap();
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn empty_trace_serializes() {
        assert_eq!(
            to_chrome_trace(&[]),
            "{\"traceEvents\":[\n\n],\"displayTimeUnit\":\"ms\"}"
        );
        assert_eq!(to_folded_stacks(&[]), "");
    }

    fn sample_logs() -> Vec<LogRecord> {
        let l = Logger::new(16);
        l.set_filter(crate::log::LogFilter::at(Level::Debug));
        l.info("server.access", "request")
            .field_str("method", "GET")
            .field_str("path", "/query?q=\"routing\"")
            .field_u64("status", 200)
            .field_bool("cache", false)
            .field_f64("bad", f64::NAN)
            .emit();
        l.debug("t", "plain").emit();
        l.drain()
    }

    #[test]
    fn log_json_lines_escape_and_separate_records() {
        let records = sample_logs();
        let jsonl = log_json_lines(&records);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"seq\":"), "{jsonl}");
        assert!(lines[0].contains("\"level\":\"INFO\""), "{jsonl}");
        assert!(lines[0].contains("\"target\":\"server.access\""), "{jsonl}");
        assert!(
            lines[0].contains("\"path\":\"/query?q=\\\"routing\\\"\""),
            "{jsonl}"
        );
        assert!(lines[0].contains("\"cache\":false"), "{jsonl}");
        assert!(lines[0].contains("\"bad\":null"), "non-finite floats null");
        assert!(lines[1].contains("\"fields\":{}"), "{jsonl}");
    }

    #[test]
    fn log_text_renders_timestamp_level_and_fields() {
        let records = sample_logs();
        let text = log_text(&records);
        let first = text.lines().next().unwrap();
        // 2026-08-06T12:34:56.123456Z ...
        assert_eq!(&first[4..5], "-", "{first}");
        assert_eq!(&first[10..11], "T", "{first}");
        assert!(first.contains("INFO  server.access request"), "{first}");
        assert!(first.contains(" method=GET"), "{first}");
        assert!(first.contains(" status=200"), "{first}");
        assert!(
            first.contains(" path=\"/query?q=\\\"routing\\\"\""),
            "{first}"
        );
    }

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_723 + 31 + 28), (2024, 2, 29));
        assert_eq!(civil_from_days(20_306), (2025, 8, 6));
        let mut ts = String::new();
        write_utc_timestamp(86_400_000_000_000 + 3_661_000_001_000, &mut ts);
        assert_eq!(ts, "1970-01-02T01:01:01.000001Z");
    }
}
