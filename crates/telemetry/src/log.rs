//! Structured, trace-correlated event logging.
//!
//! The third observability pillar next to the metrics [`crate::Recorder`]
//! and the [`crate::trace`] module: a [`Logger`] captures leveled
//! [`LogRecord`]s — a message plus typed key=value fields — into the same
//! bounded lock-free ring the tracer uses (drop-oldest, no blocking, no
//! allocation for records the filter rejects). Every record is stamped
//! with the trace and span ids of the innermost span open on the logging
//! thread, so a log line, the trace it belongs to, and the metrics of the
//! same window cross-reference by id.
//!
//! Filtering is per target (the `crate.component` the record came from)
//! with a default level, configured programmatically via
//! [`Logger::set_filter`] or through the `OREX_LOG` environment variable
//! for the process-wide [`logger`]:
//!
//! ```text
//! OREX_LOG=info                      # default level only
//! OREX_LOG=warn,server=debug        # per-target override
//! OREX_LOG=off                       # capture nothing
//! ```
//!
//! Hot loops rate-limit their callsites with [`RateLimit`] (e.g. the
//! power iteration logs its residual at most once every N iterations).
//! Render drained records with [`crate::export::log_json_lines`] or
//! [`crate::export::log_text`].

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::ring::{Ring, Sequenced};
use crate::trace::{SpanId, TraceId};

/// Log severity, most severe first: `Error < Warn < Info < Debug <
/// Trace` in `Ord` terms, so "at most `Info`" selects the quieter
/// levels.
#[derive(Clone, Copy, Debug, Eq, Hash, Ord, PartialEq, PartialOrd)]
pub enum Level {
    /// A failure the operator must see (every 5xx logs at this level).
    Error,
    /// Something off-nominal but survivable (non-convergence, slow
    /// requests).
    Warn,
    /// Milestones: convergence, index builds, the per-request access
    /// log. The default capture level.
    Info,
    /// Per-step diagnostics (cache decisions, fixpoint rounds).
    Debug,
    /// Highest-volume diagnostics (per-iteration residuals).
    Trace,
}

impl Level {
    /// All levels, most severe first.
    pub const ALL: [Level; 5] = [
        Level::Error,
        Level::Warn,
        Level::Info,
        Level::Debug,
        Level::Trace,
    ];

    /// Verbosity rank: 0 for [`Level::Error`] up to 4 for
    /// [`Level::Trace`].
    pub fn verbosity(self) -> u8 {
        match self {
            Level::Error => 0,
            Level::Warn => 1,
            Level::Info => 2,
            Level::Debug => 3,
            Level::Trace => 4,
        }
    }

    /// Upper-case name, fixed width not included (`"ERROR"`, `"WARN"`,
    /// ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level {other:?} (expected error|warn|info|debug|trace)"
            )),
        }
    }
}

/// A typed value attached to a record as `key=value`.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => f.write_str(v),
        }
    }
}

/// One captured log event, drained from the ring.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Severity.
    pub level: Level,
    /// Origin, `crate.component` by convention (`server.access`,
    /// `authority.power`).
    pub target: &'static str,
    /// Human-readable message; machine-readable detail belongs in
    /// `fields`.
    pub message: String,
    /// Typed key=value fields attached via the [`RecordBuilder`].
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Trace the logging thread was inside when the record was made,
    /// `None` when no span was open.
    pub trace: Option<TraceId>,
    /// Innermost open span at record time.
    pub span: Option<SpanId>,
    /// Wall-clock timestamp, nanoseconds since the Unix epoch.
    pub unix_ns: u64,
    /// Logical id of the logging thread (shared with
    /// [`crate::SpanRecord::tid`]).
    pub tid: u64,
    /// Capture order: the ring ticket assigned on push. [`Logger::drain`]
    /// returns records sorted by this, and `GET /logs?since=` cursors
    /// over it.
    pub seq: u64,
}

impl Sequenced for LogRecord {
    fn set_seq(&mut self, seq: u64) {
        self.seq = seq;
    }

    fn seq(&self) -> u64 {
        self.seq
    }
}

/// Per-target level filter: a default level plus longest-prefix-match
/// overrides, parsed from `OREX_LOG=<level>[,target=level]*` syntax.
///
/// A target `server` matches records whose target is `server` or starts
/// with `server.`; the longest matching prefix wins. A level of `off`
/// (or `none`) suppresses everything it governs.
#[derive(Clone, Debug, PartialEq)]
pub struct LogFilter {
    /// Level for targets with no override; `None` = off.
    default: Option<Level>,
    /// `(prefix, level)` overrides; `None` = off for that prefix.
    targets: Vec<(String, Option<Level>)>,
}

impl Default for LogFilter {
    /// Capture `Info` and more severe everywhere.
    fn default() -> Self {
        Self {
            default: Some(Level::Info),
            targets: Vec::new(),
        }
    }
}

fn parse_level_or_off(s: &str) -> Result<Option<Level>, String> {
    match s.trim().to_ascii_lowercase().as_str() {
        "off" | "none" => Ok(None),
        other => other.parse::<Level>().map(Some),
    }
}

impl FromStr for LogFilter {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut default = None;
        let mut saw_default = false;
        let mut targets = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((target, level)) => {
                    let target = target.trim();
                    if target.is_empty() {
                        return Err(format!("empty target in log filter segment {part:?}"));
                    }
                    targets.push((target.to_string(), parse_level_or_off(level)?));
                }
                None => {
                    if saw_default {
                        return Err(format!(
                            "second default level {part:?} in log filter (only one allowed)"
                        ));
                    }
                    saw_default = true;
                    default = parse_level_or_off(part)?;
                }
            }
        }
        if !saw_default && targets.is_empty() {
            return Err("empty log filter".to_string());
        }
        // Longest prefixes first, so the first match below is the most
        // specific one.
        targets.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        Ok(Self { default, targets })
    }
}

impl LogFilter {
    /// A filter that captures `level` and more severe for every target.
    pub fn at(level: Level) -> Self {
        Self {
            default: Some(level),
            targets: Vec::new(),
        }
    }

    /// A filter that captures nothing.
    pub fn off() -> Self {
        Self {
            default: None,
            targets: Vec::new(),
        }
    }

    /// Adds (or tightens) a per-target override; `None` mutes the
    /// target.
    pub fn with_target(mut self, target: impl Into<String>, level: Option<Level>) -> Self {
        self.targets.push((target.into(), level));
        self.targets
            .sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(&b.0)));
        self
    }

    /// The level governing `target`: its longest matching prefix
    /// override, or the default.
    pub fn effective(&self, target: &str) -> Option<Level> {
        for (prefix, level) in &self.targets {
            let matches = target == prefix
                || (target.len() > prefix.len()
                    && target.starts_with(prefix.as_str())
                    && target.as_bytes()[prefix.len()] == b'.');
            if matches {
                return *level;
            }
        }
        self.default
    }

    /// Whether a record at `level` from `target` passes this filter.
    pub fn admits(&self, level: Level, target: &str) -> bool {
        self.effective(target).is_some_and(|max| level <= max)
    }

    /// The most verbose level any target can pass, `None` when the
    /// filter rejects everything — the logger's constant-time reject.
    fn max_verbosity(&self) -> Option<Level> {
        let mut max = self.default;
        for (_, level) in &self.targets {
            if let Some(l) = level {
                if max.is_none_or(|m| *l > m) {
                    max = Some(*l);
                }
            }
        }
        max
    }
}

/// Per-callsite 1-in-N admission for logging inside hot loops. Owned by
/// the callsite as a `static`; the first call is always admitted, then
/// every `every`-th after it.
///
/// ```
/// use orex_telemetry::{logger, Level, RateLimit};
/// static RESIDUAL: RateLimit = RateLimit::new();
/// for iteration in 0..1000 {
///     if RESIDUAL.admit(64) {
///         logger()
///             .record(Level::Trace, "authority.power", "residual")
///             .field_u64("iteration", iteration);
///     }
/// }
/// ```
#[derive(Debug, Default)]
pub struct RateLimit {
    seen: AtomicU64,
}

impl RateLimit {
    /// A fresh limiter (admits its first call).
    pub const fn new() -> Self {
        Self {
            seen: AtomicU64::new(0),
        }
    }

    /// Draws once; true for calls 0, `every`, `2*every`, ... A period of
    /// 0 or 1 admits everything.
    pub fn admit(&self, every: u64) -> bool {
        if every <= 1 {
            // Keep the draw count meaningful even when unlimited.
            // ORDERING: Relaxed — monotone counter; no data published.
            self.seen.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        // ORDERING: Relaxed — monotone draw counter; no data published.
        let draw = self.seen.fetch_add(1, Ordering::Relaxed);
        draw.is_multiple_of(every)
    }

    /// Total draws so far (admitted or not), for "N suppressed"
    /// summaries.
    pub fn count(&self) -> u64 {
        // ORDERING: Relaxed — monotone counter read for reporting only.
        self.seen.load(Ordering::Relaxed)
    }
}

/// `max_verbosity` cache encoding: 0 = filter rejects everything,
/// otherwise verbosity + 1.
const VERBOSITY_OFF: u8 = 0;

struct LoggerInner {
    ring: Ring<LogRecord>,
    filter: RwLock<LogFilter>,
    /// Cached [`LogFilter::max_verbosity`] so a rejected record costs
    /// one atomic load; see [`VERBOSITY_OFF`].
    max_verbosity: AtomicU8,
}

/// Captures structured log records into a bounded ring; see the module
/// docs. Cloning shares the underlying ring and filter.
#[derive(Clone)]
pub struct Logger {
    inner: Option<Arc<LoggerInner>>,
}

impl Logger {
    /// Ring capacity used by the global [`logger`].
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An enabled logger whose ring holds up to `capacity` records
    /// (minimum 1), with the default [`LogFilter`] (`Info`).
    pub fn new(capacity: usize) -> Self {
        let filter = LogFilter::default();
        let max = encode_verbosity(&filter);
        Self {
            inner: Some(Arc::new(LoggerInner {
                ring: Ring::new(capacity),
                filter: RwLock::new(filter),
                max_verbosity: AtomicU8::new(max),
            })),
        }
    }

    /// A logger whose every operation is a no-op costing one branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// False for a [`Logger::disabled`] logger.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.ring.capacity())
    }

    /// Replaces the filter. No-op on a disabled logger.
    pub fn set_filter(&self, filter: LogFilter) {
        if let Some(inner) = &self.inner {
            let max = encode_verbosity(&filter);
            {
                let mut slot = inner.filter.write().unwrap_or_else(PoisonError::into_inner);
                *slot = filter;
            }
            // Release-publish the cached bound after the filter itself,
            // pairing with the Acquire load in `enabled`: a thread that
            // sees the new bound takes the lock and sees the new filter.
            inner.max_verbosity.store(max, Ordering::Release);
        }
    }

    /// A copy of the current filter (the default one when disabled).
    pub fn filter(&self) -> LogFilter {
        self.inner.as_ref().map_or_else(LogFilter::default, |i| {
            i.filter
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .clone()
        })
    }

    /// Whether a record at `level` from `target` would be captured —
    /// lets callsites skip formatting expensive messages. One atomic
    /// load when the answer is no for every target.
    #[inline]
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        // Acquire pairs with the Release store in `set_filter`.
        let max = inner.max_verbosity.load(Ordering::Acquire);
        if max == VERBOSITY_OFF || level.verbosity() + 1 > max {
            return false;
        }
        inner
            .filter
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .admits(level, target)
    }

    /// Opens a record. If the filter rejects it, the returned builder is
    /// inert (no allocation happened beyond `message`'s own). Otherwise
    /// the record is stamped with the wall clock, the logging thread's
    /// id, and the current trace/span of the global [`crate::tracer`],
    /// and commits to the ring when the builder drops.
    pub fn record(
        &self,
        level: Level,
        target: &'static str,
        message: impl Into<String>,
    ) -> RecordBuilder<'_> {
        let Some(inner) = &self.inner else {
            return RecordBuilder { pending: None };
        };
        if !self.enabled(level, target) {
            return RecordBuilder { pending: None };
        }
        let (trace, span) = match crate::tracer().current_span() {
            Some((t, s)) => (Some(t), Some(s)),
            None => (None, None),
        };
        let record = Box::new(LogRecord {
            level,
            target,
            message: message.into(),
            fields: Vec::new(),
            trace,
            span,
            unix_ns: unix_now_ns(),
            tid: crate::trace::current_tid(),
            seq: 0,
        });
        RecordBuilder {
            pending: Some((inner, record)),
        }
    }

    /// Shorthand for [`Logger::record`] at [`Level::Error`].
    pub fn error(&self, target: &'static str, message: impl Into<String>) -> RecordBuilder<'_> {
        self.record(Level::Error, target, message)
    }

    /// Shorthand for [`Logger::record`] at [`Level::Warn`].
    pub fn warn(&self, target: &'static str, message: impl Into<String>) -> RecordBuilder<'_> {
        self.record(Level::Warn, target, message)
    }

    /// Shorthand for [`Logger::record`] at [`Level::Info`].
    pub fn info(&self, target: &'static str, message: impl Into<String>) -> RecordBuilder<'_> {
        self.record(Level::Info, target, message)
    }

    /// Shorthand for [`Logger::record`] at [`Level::Debug`].
    pub fn debug(&self, target: &'static str, message: impl Into<String>) -> RecordBuilder<'_> {
        self.record(Level::Debug, target, message)
    }

    /// Shorthand for [`Logger::record`] at [`Level::Trace`].
    pub fn trace(&self, target: &'static str, message: impl Into<String>) -> RecordBuilder<'_> {
        self.record(Level::Trace, target, message)
    }

    /// Removes and returns every captured record, oldest first.
    pub fn drain(&self) -> Vec<LogRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.ring.drain())
    }
}

fn encode_verbosity(filter: &LogFilter) -> u8 {
    filter
        .max_verbosity()
        .map_or(VERBOSITY_OFF, |l| l.verbosity() + 1)
}

fn unix_now_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

/// An admitted record being assembled; commits to the ring on drop, so
/// a bare `logger().info(...).field_u64(...);` statement logs at the
/// semicolon.
pub struct RecordBuilder<'a> {
    pending: Option<(&'a Arc<LoggerInner>, Box<LogRecord>)>,
}

impl RecordBuilder<'_> {
    /// False when the filter rejected this record — attaching fields is
    /// then a no-op costing one branch.
    pub fn is_recording(&self) -> bool {
        self.pending.is_some()
    }

    /// Attaches an unsigned-integer field.
    #[must_use]
    pub fn field_u64(mut self, key: &'static str, value: u64) -> Self {
        if let Some((_, record)) = &mut self.pending {
            record.fields.push((key, FieldValue::U64(value)));
        }
        self
    }

    /// Attaches a signed-integer field.
    #[must_use]
    pub fn field_i64(mut self, key: &'static str, value: i64) -> Self {
        if let Some((_, record)) = &mut self.pending {
            record.fields.push((key, FieldValue::I64(value)));
        }
        self
    }

    /// Attaches a float field.
    #[must_use]
    pub fn field_f64(mut self, key: &'static str, value: f64) -> Self {
        if let Some((_, record)) = &mut self.pending {
            record.fields.push((key, FieldValue::F64(value)));
        }
        self
    }

    /// Attaches a boolean field.
    #[must_use]
    pub fn field_bool(mut self, key: &'static str, value: bool) -> Self {
        if let Some((_, record)) = &mut self.pending {
            record.fields.push((key, FieldValue::Bool(value)));
        }
        self
    }

    /// Attaches a string field; the value is only materialised when the
    /// record was admitted.
    #[must_use]
    pub fn field_str(mut self, key: &'static str, value: impl AsRef<str>) -> Self {
        if let Some((_, record)) = &mut self.pending {
            record
                .fields
                .push((key, FieldValue::Str(value.as_ref().to_string())));
        }
        self
    }

    /// Commits now instead of at end-of-statement; equivalent to
    /// dropping the builder but reads better when the builder is bound
    /// to a variable.
    pub fn emit(self) {
        drop(self);
    }
}

impl Drop for RecordBuilder<'_> {
    fn drop(&mut self) {
        if let Some((inner, record)) = self.pending.take() {
            inner.ring.push(record);
        }
    }
}

static GLOBAL_LOGGER: OnceLock<Logger> = OnceLock::new();

/// The process-wide logger the engine crates record into. Enabled by
/// default with a [`Logger::DEFAULT_CAPACITY`]-record ring at `Info`;
/// `OREX_LOG=<level>[,target=level]*` adjusts the filter (`off` captures
/// nothing), and `OREX_TELEMETRY=0|off|false` starts the logger disabled
/// along with the rest of telemetry. A malformed `OREX_LOG` falls back
/// to the default filter.
pub fn logger() -> &'static Logger {
    GLOBAL_LOGGER.get_or_init(|| {
        if crate::env_disabled() {
            Logger::disabled()
        } else {
            let l = Logger::new(Logger::DEFAULT_CAPACITY);
            if let Some(filter) = std::env::var("OREX_LOG")
                .ok()
                .and_then(|v| v.parse::<LogFilter>().ok())
            {
                l.set_filter(filter);
            }
            l
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_carry_message_fields_and_order() {
        let l = Logger::new(16);
        l.info("t.a", "first")
            .field_u64("n", 7)
            .field_f64("x", 0.5)
            .field_bool("ok", true)
            .field_str("s", "v")
            .field_i64("d", -3)
            .emit();
        l.warn("t.b", "second").emit();
        let records = l.drain();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].message, "first");
        assert_eq!(records[0].level, Level::Info);
        assert_eq!(records[0].fields.len(), 5);
        assert_eq!(records[0].fields[0], ("n", FieldValue::U64(7)));
        assert_eq!(records[0].fields[3], ("s", FieldValue::Str("v".into())));
        assert_eq!(records[1].level, Level::Warn);
        assert!(records[0].seq < records[1].seq);
        assert!(records[0].unix_ns > 0);
        assert!(l.drain().is_empty(), "drain removes records");
    }

    #[test]
    fn default_filter_captures_info_not_debug() {
        let l = Logger::new(16);
        assert!(l.enabled(Level::Info, "x"));
        assert!(!l.enabled(Level::Debug, "x"));
        l.debug("x", "dropped").emit();
        l.trace("x", "dropped").emit();
        l.info("x", "kept").emit();
        let records = l.drain();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].message, "kept");
    }

    #[test]
    fn filter_parses_default_and_targets() {
        let f: LogFilter = "warn,server=debug,authority.power=trace".parse().unwrap();
        assert_eq!(f.effective("core.session"), Some(Level::Warn));
        assert_eq!(f.effective("server"), Some(Level::Debug));
        assert_eq!(f.effective("server.access"), Some(Level::Debug));
        assert_eq!(f.effective("serverless"), Some(Level::Warn));
        assert_eq!(f.effective("authority.power"), Some(Level::Trace));
        assert!(f.admits(Level::Debug, "server.access"));
        assert!(!f.admits(Level::Trace, "server.access"));
    }

    #[test]
    fn filter_longest_prefix_wins() {
        let f: LogFilter = "info,server=warn,server.access=debug".parse().unwrap();
        assert_eq!(f.effective("server.access"), Some(Level::Debug));
        assert_eq!(f.effective("server.access.slow"), Some(Level::Debug));
        assert_eq!(f.effective("server.cache"), Some(Level::Warn));
    }

    #[test]
    fn filter_off_rejects_everything() {
        let f: LogFilter = "off".parse().unwrap();
        assert!(!f.admits(Level::Error, "x"));
        let l = Logger::new(4);
        l.set_filter(f);
        l.error("x", "dropped").emit();
        assert!(l.drain().is_empty());
        let muted: LogFilter = "info,noisy=off".parse().unwrap();
        assert!(!muted.admits(Level::Error, "noisy.sub"));
        assert!(muted.admits(Level::Info, "other"));
    }

    #[test]
    fn filter_rejects_malformed_input() {
        assert!("".parse::<LogFilter>().is_err());
        assert!("loud".parse::<LogFilter>().is_err());
        assert!("info,=debug".parse::<LogFilter>().is_err());
        assert!("info,warn".parse::<LogFilter>().is_err());
        assert!("info,server=verydetailed".parse::<LogFilter>().is_err());
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let l = Logger::new(2);
        l.info("t", "one").emit();
        l.info("t", "two").emit();
        l.info("t", "three").emit();
        let messages: Vec<_> = l.drain().into_iter().map(|r| r.message).collect();
        assert_eq!(messages, ["two", "three"]);
    }

    #[test]
    fn disabled_logger_is_inert() {
        let l = Logger::disabled();
        assert!(!l.is_enabled());
        assert_eq!(l.capacity(), 0);
        assert!(!l.enabled(Level::Error, "x"));
        let b = l.error("x", "nothing");
        assert!(!b.is_recording());
        b.field_u64("k", 1).emit();
        assert!(l.drain().is_empty());
    }

    #[test]
    fn records_stamp_the_current_trace_and_span() {
        let t = crate::tracer();
        let l = Logger::new(16);
        l.info("t", "outside").emit();
        let (trace, span) = {
            let span = t.span("log.test.root");
            l.info("t", "inside").emit();
            (span.trace_id(), t.current_span().map(|(_, s)| s))
        };
        let records = l.drain();
        assert_eq!(records[0].trace, None);
        assert_eq!(records[0].span, None);
        if t.is_enabled() {
            assert_eq!(records[1].trace, trace);
            assert_eq!(records[1].span, span);
            assert!(records[1].trace.is_some());
        }
    }

    #[test]
    fn rate_limit_admits_one_in_n() {
        let rl = RateLimit::new();
        let admitted: Vec<bool> = (0..10).map(|_| rl.admit(4)).collect();
        assert_eq!(
            admitted,
            [true, false, false, false, true, false, false, false, true, false]
        );
        assert_eq!(rl.count(), 10);
        let open = RateLimit::new();
        assert!((0..5).all(|_| open.admit(1)));
        assert!((0..5).all(|_| open.admit(0)));
        assert_eq!(open.count(), 10);
    }

    #[test]
    fn set_filter_updates_the_fast_reject_bound() {
        let l = Logger::new(16);
        assert!(!l.enabled(Level::Trace, "x"));
        l.set_filter(LogFilter::at(Level::Trace));
        assert!(l.enabled(Level::Trace, "x"));
        l.set_filter(LogFilter::off().with_target("only", Some(Level::Debug)));
        assert!(l.enabled(Level::Debug, "only.this"));
        assert!(!l.enabled(Level::Error, "other"));
    }

    #[test]
    fn concurrent_logging_keeps_every_record_distinct() {
        let l = Logger::new(256);
        std::thread::scope(|scope| {
            for thread in 0..4 {
                let l = l.clone();
                scope.spawn(move || {
                    for i in 0..8 {
                        l.info("t", "c")
                            .field_u64("thread", thread)
                            .field_u64("i", i)
                            .emit();
                    }
                });
            }
        });
        let records = l.drain();
        assert_eq!(records.len(), 32);
        let mut seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        let sorted = seqs.clone();
        seqs.sort_unstable();
        assert_eq!(seqs, sorted, "drain returns capture order");
        seqs.dedup();
        assert_eq!(seqs.len(), 32, "every record got a distinct ticket");
    }
}
