//! Continuous span-stack profiling.
//!
//! A [`Profiler`] periodically snapshots every registered thread's
//! current span stack — mirrored from the tracing context by
//! [`crate::trace`] whenever a span opens or closes — and aggregates the
//! observations into folded-stack counts over rolling one-second
//! windows. No signals, no unsafe, no dependencies: the sampler is an
//! ordinary thread reading per-thread mirrors under short mutexes, so it
//! can run continuously in production next to the serving path.
//!
//! The mirrors cost nothing while no profiler is running: span push/pop
//! checks one relaxed atomic and returns. With a profiler attached, each
//! push/pop additionally copies the current stack of `&'static str`
//! names (depth is single digits in practice) into this thread's slot.
//!
//! Output is the folded-stack format `root;child;leaf count` consumed by
//! flamegraph tooling, a synthesized Chrome trace-event view of the same
//! tree, and a top-N hot-span table ([`ProfileSnapshot::hot`]).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// One registered thread's mirror of its current span stack.
struct Slot {
    /// Cleared when the owning thread exits; dead empty slots are pruned
    /// by the sampler.
    alive: AtomicBool,
    /// Innermost-last span names, mirrored on every push/pop while a
    /// profiler is attached.
    stack: Mutex<Vec<&'static str>>,
}

/// Every thread that ever opened a span while mirroring was on.
static SLOTS: Mutex<Vec<Arc<Slot>>> = Mutex::new(Vec::new());

/// Number of running profilers; mirroring is on while nonzero.
static MIRRORS: AtomicUsize = AtomicUsize::new(0);

/// Owns this thread's slot; marks it dead when the thread exits.
struct SlotHandle(Arc<Slot>);

impl Drop for SlotHandle {
    fn drop(&mut self) {
        // ORDERING: lifecycle flag only; the sampler re-checks under the
        // slot mutex before reading the stack, so Relaxed suffices.
        self.0.alive.store(false, Ordering::Relaxed);
    }
}

thread_local! {
    static SLOT: SlotHandle = {
        let slot = Arc::new(Slot {
            alive: AtomicBool::new(true),
            stack: Mutex::new(Vec::new()),
        });
        SLOTS
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&slot));
        SlotHandle(slot)
    };
}

/// Mirrors the calling thread's current span names into its slot.
/// Called by the tracer after every span push/pop; a single relaxed
/// load when no profiler is running.
pub(crate) fn mirror<I: Iterator<Item = &'static str>>(names: I) {
    // ORDERING: on/off gate. A stale read merely delays the first
    // mirrored stack by one span transition; the sampler tolerates both
    // empty and stale mirrors.
    if MIRRORS.load(Ordering::Relaxed) == 0 {
        return;
    }
    // try_with: a span guard dropped during thread teardown must not
    // panic just because the slot TLS is already destroyed.
    let _ = SLOT.try_with(|slot| {
        let mut stack = slot.0.stack.lock().unwrap_or_else(PoisonError::into_inner);
        stack.clear();
        stack.extend(names);
    });
}

/// Turns mirroring on for one more profiler, clearing stale mirrors left
/// over from a previous profiling session.
fn enable_mirroring() {
    // ORDERING: on/off gate, see `mirror`.
    if MIRRORS.fetch_add(1, Ordering::Relaxed) == 0 {
        let slots = SLOTS.lock().unwrap_or_else(PoisonError::into_inner);
        for slot in slots.iter() {
            slot.stack
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
    }
}

fn disable_mirroring() {
    // ORDERING: on/off gate, see `mirror`.
    MIRRORS.fetch_sub(1, Ordering::Relaxed);
}

/// One second of aggregated samples.
struct Window {
    started: Instant,
    /// `a;b;c` folded path → observations.
    folded: HashMap<String, u64>,
    samples: u64,
}

struct ProfilerInner {
    /// Target sampling frequency.
    hz: u64,
    /// Rolling one-second windows, oldest first, at most
    /// `retention_seconds` of them.
    windows: Mutex<VecDeque<Window>>,
    retention_seconds: usize,
    /// Sampler-thread shutdown latch: `stop` flips under the mutex and
    /// the condvar wakes the sampler, so stopping never waits a full
    /// sample period.
    stop: Mutex<bool>,
    stop_cv: Condvar,
    /// Join handle of the running sampler thread, if any.
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// A continuous span-stack sampler; see the module docs. Obtain the
/// process-wide instance via [`profiler`], or construct private ones in
/// tests; stop a running sampler with [`Profiler::stop`].
#[derive(Clone)]
pub struct Profiler {
    inner: Arc<ProfilerInner>,
}

/// Sampling frequency used when none is configured. Prime, so the
/// sampler can't phase-lock with millisecond-periodic work.
pub const DEFAULT_HZ: u64 = 97;

/// Seconds of folded-stack history retained by default.
pub const DEFAULT_RETENTION_SECONDS: usize = 120;

impl Profiler {
    /// A profiler sampling at `hz` (clamped to 1..=1000), retaining
    /// `retention_seconds` one-second windows. Not yet running.
    pub fn new(hz: u64, retention_seconds: usize) -> Self {
        Self {
            inner: Arc::new(ProfilerInner {
                hz: hz.clamp(1, 1000),
                windows: Mutex::new(VecDeque::new()),
                retention_seconds: retention_seconds.max(1),
                stop: Mutex::new(false),
                stop_cv: Condvar::new(),
                thread: Mutex::new(None),
            }),
        }
    }

    /// Target sampling frequency in Hz.
    pub fn hz(&self) -> u64 {
        self.inner.hz
    }

    /// Starts the background sampler thread (and span-stack mirroring).
    /// Idempotent: a second call while running is a no-op.
    pub fn start(&self) {
        let mut thread = self
            .inner
            .thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if thread.is_some() {
            return;
        }
        *self
            .inner
            .stop
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = false;
        enable_mirroring();
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("orex-profiler".into())
            // orex::allow(ORX009): sampler_loop runs on the spawned
            // thread, not under this guard — the closure boundary is
            // beyond the analyzer's call-graph model.
            .spawn(move || sampler_loop(&inner));
        match handle {
            Ok(h) => *thread = Some(h),
            // Spawn failure (resource exhaustion): profiling silently
            // stays off rather than taking the process down.
            Err(_) => disable_mirroring(),
        }
    }

    /// True while the sampler thread is running.
    pub fn is_running(&self) -> bool {
        self.inner
            .thread
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Stops the sampler thread and mirroring. Collected windows remain
    /// available to [`Profiler::snapshot`]. Idempotent.
    pub fn stop(&self) {
        let handle = {
            let mut thread = self
                .inner
                .thread
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let Some(handle) = thread.take() else {
                return;
            };
            *self
                .inner
                .stop
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = true;
            self.inner.stop_cv.notify_all();
            handle
        };
        let _ = handle.join();
        disable_mirroring();
    }

    /// Takes one synchronous sample of every live thread's mirrored
    /// stack — the deterministic unit the background thread repeats.
    /// Tests drive this directly; note it observes mirrors, so mirroring
    /// must be on (the sampler thread running, or spans opened while it
    /// was) for stacks to be non-empty.
    pub fn sample_once(&self) {
        take_sample(&self.inner);
    }

    /// Aggregates the windows of the last `seconds` seconds (`0` = all
    /// retained history) into a snapshot.
    pub fn snapshot(&self, seconds: u64) -> ProfileSnapshot {
        let windows = self
            .inner
            .windows
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let now = Instant::now();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        let mut samples = 0u64;
        let mut covered = 0usize;
        for w in windows.iter() {
            if seconds > 0 && now.duration_since(w.started) > Duration::from_secs(seconds) {
                continue;
            }
            covered += 1;
            samples += w.samples;
            for (path, n) in &w.folded {
                *folded.entry(path.clone()).or_insert(0) += n;
            }
        }
        ProfileSnapshot {
            folded,
            samples,
            hz: self.inner.hz,
            seconds: covered as u64,
        }
    }

    /// Total samples across all retained windows (one per thread with a
    /// non-empty span stack per tick).
    pub fn samples(&self) -> u64 {
        self.inner
            .windows
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|w| w.samples)
            .sum()
    }
}

fn sampler_loop(inner: &ProfilerInner) {
    let period = Duration::from_nanos(1_000_000_000 / inner.hz);
    loop {
        take_sample(inner);
        let stop = inner.stop.lock().unwrap_or_else(PoisonError::into_inner);
        if *stop {
            return;
        }
        // Condvar pacing instead of thread::sleep: shutdown wakes the
        // sampler immediately, and spurious wakeups just sample early.
        let (stop, _timeout) = inner
            .stop_cv
            .wait_timeout(stop, period)
            .unwrap_or_else(PoisonError::into_inner);
        if *stop {
            return;
        }
    }
}

/// One sampling tick: read every live thread's mirror, fold the
/// observations into the current one-second window, prune dead slots
/// and expired windows.
fn take_sample(inner: &ProfilerInner) {
    let mut observed: Vec<String> = Vec::new();
    {
        let mut slots = SLOTS.lock().unwrap_or_else(PoisonError::into_inner);
        slots.retain(|slot| {
            let stack = slot.stack.lock().unwrap_or_else(PoisonError::into_inner);
            if !stack.is_empty() {
                observed.push(stack.join(";"));
            }
            // ORDERING: lifecycle flag, see `SlotHandle::drop`.
            slot.alive.load(Ordering::Relaxed) || !stack.is_empty()
        });
    }
    let mut windows = inner.windows.lock().unwrap_or_else(PoisonError::into_inner);
    let now = Instant::now();
    let fresh = match windows.back() {
        Some(w) => now.duration_since(w.started) >= Duration::from_secs(1),
        None => true,
    };
    if fresh {
        windows.push_back(Window {
            started: now,
            folded: HashMap::new(),
            samples: 0,
        });
        while windows.len() > inner.retention_seconds {
            windows.pop_front();
        }
    }
    if let Some(w) = windows.back_mut() {
        for path in observed {
            *w.folded.entry(path).or_insert(0) += 1;
            w.samples += 1;
        }
    }
}

/// A hot span in a [`ProfileSnapshot`]: samples where the span was the
/// innermost frame (`self_samples`) and anywhere on the stack
/// (`total_samples`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotSpan {
    /// Span name.
    pub name: String,
    /// Samples with this span innermost.
    pub self_samples: u64,
    /// Samples with this span anywhere on the stack.
    pub total_samples: u64,
}

/// Aggregated folded-stack counts over a time range; see
/// [`Profiler::snapshot`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSnapshot {
    /// `a;b;c` folded path → observation count, path-sorted.
    pub folded: BTreeMap<String, u64>,
    /// Total observations (equals the sum of `folded` values).
    pub samples: u64,
    /// Sampling frequency the observations were taken at.
    pub hz: u64,
    /// Number of one-second windows aggregated.
    pub seconds: u64,
}

impl ProfileSnapshot {
    /// Parses the folded-stack text format (`path count` per line) back
    /// into a snapshot — the CLI uses this to render saved or fetched
    /// profiles. Lines that don't parse are skipped.
    pub fn from_folded(text: &str) -> Self {
        let mut folded = BTreeMap::new();
        let mut samples = 0u64;
        for line in text.lines() {
            let Some((path, count)) = line.rsplit_once(' ') else {
                continue;
            };
            let Ok(count) = count.parse::<u64>() else {
                continue;
            };
            if path.is_empty() {
                continue;
            }
            *folded.entry(path.to_string()).or_insert(0) += count;
            samples += count;
        }
        Self {
            folded,
            samples,
            hz: 0,
            seconds: 0,
        }
    }

    /// `root;child;leaf count` lines for flamegraph tooling.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for (path, count) in &self.folded {
            let _ = writeln!(out, "{path} {count}");
        }
        out
    }

    /// Top `n` spans by self samples (ties broken by total, then name).
    pub fn hot(&self, n: usize) -> Vec<HotSpan> {
        let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (path, &count) in &self.folded {
            let frames: Vec<&str> = path.split(';').collect();
            if let Some(leaf) = frames.last() {
                by_name.entry(leaf).or_insert((0, 0)).0 += count;
            }
            // A frame appearing twice in one path (recursion) must not
            // count its total twice.
            let mut seen: Vec<&str> = Vec::with_capacity(frames.len());
            for frame in frames {
                if !seen.contains(&frame) {
                    seen.push(frame);
                    by_name.entry(frame).or_insert((0, 0)).1 += count;
                }
            }
        }
        let mut spans: Vec<HotSpan> = by_name
            .into_iter()
            .map(|(name, (self_samples, total_samples))| HotSpan {
                name: name.to_string(),
                self_samples,
                total_samples,
            })
            .collect();
        spans.sort_by(|a, b| {
            b.self_samples
                .cmp(&a.self_samples)
                .then(b.total_samples.cmp(&a.total_samples))
                .then(a.name.cmp(&b.name))
        });
        spans.truncate(n);
        spans
    }

    /// Synthesizes a Chrome trace-event view of the sampled tree: each
    /// frame becomes a `B`/`E` pair whose duration is proportional to
    /// its total samples (one sample = one sampling period). Timestamps
    /// are synthetic — only the proportions are meaningful.
    pub fn to_chrome(&self) -> String {
        #[derive(Default)]
        struct Node {
            children: BTreeMap<String, Node>,
            self_count: u64,
        }
        impl Node {
            fn total(&self) -> u64 {
                self.self_count + self.children.values().map(Node::total).sum::<u64>()
            }
        }
        let mut root = Node::default();
        for (path, &count) in &self.folded {
            let mut node = &mut root;
            for frame in path.split(';') {
                node = node.children.entry(frame.to_string()).or_default();
            }
            node.self_count += count;
        }
        let period_us = if self.hz > 0 {
            1_000_000.0 / self.hz as f64
        } else {
            1.0
        };
        fn emit(
            out: &mut String,
            first: &mut bool,
            name: &str,
            node: &Node,
            start_us: f64,
            period_us: f64,
        ) {
            let duration = node.total() as f64 * period_us;
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            let mut escaped = String::new();
            crate::export::escape_json(name, &mut escaped);
            let _ = write!(
                out,
                "  {{\"name\":\"{escaped}\",\"cat\":\"profile\",\"ph\":\"B\",\"ts\":{start_us},\"pid\":1,\"tid\":1}}"
            );
            let mut cursor = start_us;
            for (child_name, child) in &node.children {
                emit(out, first, child_name, child, cursor, period_us);
                cursor += child.total() as f64 * period_us;
            }
            out.push_str(",\n");
            let _ = write!(
                out,
                "  {{\"name\":\"{escaped}\",\"cat\":\"profile\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":1}}",
                start_us + duration
            );
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut cursor = 0.0;
        for (name, node) in &root.children {
            emit(&mut out, &mut first, name, node, cursor, period_us);
            cursor += node.total() as f64 * period_us;
        }
        out.push_str("\n]}\n");
        out
    }
}

static GLOBAL_PROFILER: OnceLock<Profiler> = OnceLock::new();

/// The process-wide profiler. Constructed on first use at
/// [`DEFAULT_HZ`] (or `OREX_PROFILE_HZ` when set), *not* running until
/// [`Profiler::start`] — except that [`init_from_env`] auto-starts it
/// when `OREX_PROFILE_HZ` is set, which the global tracer triggers, so
/// exporting the variable profiles any orex process without code
/// changes.
pub fn profiler() -> &'static Profiler {
    profiler_at(DEFAULT_HZ)
}

/// Like [`profiler`], but seeds the sampling rate with `hz` when this
/// call is the one that first constructs the global instance
/// (`OREX_PROFILE_HZ`, when set, still wins). Later calls return the
/// existing profiler whatever their `hz` — the rate is fixed at first
/// touch.
pub fn profiler_at(hz: u64) -> &'static Profiler {
    GLOBAL_PROFILER.get_or_init(|| Profiler::new(env_hz().unwrap_or(hz), DEFAULT_RETENTION_SECONDS))
}

fn env_hz() -> Option<u64> {
    std::env::var("OREX_PROFILE_HZ")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&hz| hz > 0)
}

/// Starts the global profiler when `OREX_PROFILE_HZ` is set to a
/// positive sample rate. Called from the global tracer's initialization
/// so any process that opens a span honors the variable.
pub fn init_from_env() {
    if env_hz().is_some() {
        profiler().start();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    /// Tests drive `sample_once` directly with mirroring forced on; the
    /// guard keeps mirroring balanced even on panic.
    struct MirrorGuard;
    impl MirrorGuard {
        fn on() -> Self {
            enable_mirroring();
            MirrorGuard
        }
    }
    impl Drop for MirrorGuard {
        fn drop(&mut self) {
            disable_mirroring();
        }
    }

    #[test]
    fn folded_totals_equal_sample_count() {
        let _mirror = MirrorGuard::on();
        let tracer = Tracer::new(64);
        let profiler = Profiler::new(100, 8);
        {
            let _root = tracer.span("root");
            let _child = tracer.span("child");
            for _ in 0..7 {
                profiler.sample_once();
            }
        }
        let snap = profiler.snapshot(0);
        assert_eq!(snap.samples, profiler.samples());
        assert_eq!(snap.folded.values().sum::<u64>(), snap.samples);
        assert!(snap.samples >= 7, "this thread's stack was non-empty");
        assert!(
            snap.folded.keys().any(|p| p.ends_with("root;child")),
            "{:?}",
            snap.folded
        );
    }

    #[test]
    fn snapshot_merges_windows_and_formats_folded() {
        let _mirror = MirrorGuard::on();
        let tracer = Tracer::new(64);
        let profiler = Profiler::new(100, 8);
        {
            let _a = tracer.span("alpha");
            profiler.sample_once();
            profiler.sample_once();
        }
        {
            let _b = tracer.span("beta");
            profiler.sample_once();
        }
        let snap = profiler.snapshot(0);
        let text = snap.to_folded();
        assert!(text.contains("alpha 2"), "{text}");
        assert!(text.contains("beta 1"), "{text}");
        let reparsed = ProfileSnapshot::from_folded(&text);
        assert_eq!(reparsed.folded, snap.folded);
        assert_eq!(reparsed.samples, snap.samples);
    }

    #[test]
    fn hot_ranks_by_self_samples() {
        let mut folded = BTreeMap::new();
        folded.insert("a;b".to_string(), 10);
        folded.insert("a".to_string(), 3);
        folded.insert("a;c".to_string(), 2);
        let snap = ProfileSnapshot {
            folded,
            samples: 15,
            hz: 100,
            seconds: 1,
        };
        let hot = snap.hot(3);
        assert_eq!(hot[0].name, "b");
        assert_eq!(hot[0].self_samples, 10);
        assert_eq!(hot[0].total_samples, 10);
        let a = hot.iter().find(|h| h.name == "a").unwrap();
        assert_eq!(a.self_samples, 3);
        assert_eq!(a.total_samples, 15, "a is on every stack");
    }

    #[test]
    fn recursion_does_not_double_count_totals() {
        let mut folded = BTreeMap::new();
        folded.insert("a;a;a".to_string(), 5);
        let snap = ProfileSnapshot {
            folded,
            samples: 5,
            hz: 100,
            seconds: 1,
        };
        let hot = snap.hot(1);
        assert_eq!(hot[0].name, "a");
        assert_eq!(hot[0].total_samples, 5);
        assert_eq!(hot[0].self_samples, 5);
    }

    #[test]
    fn chrome_view_nests_children_inside_parents() {
        let mut folded = BTreeMap::new();
        folded.insert("req;rank".to_string(), 4);
        folded.insert("req".to_string(), 1);
        let snap = ProfileSnapshot {
            folded,
            samples: 5,
            hz: 1000,
            seconds: 1,
        };
        let chrome = snap.to_chrome();
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(chrome.contains("\"name\":\"req\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"rank\""), "{chrome}");
        // Balanced begin/end events.
        assert_eq!(
            chrome.matches("\"ph\":\"B\"").count(),
            chrome.matches("\"ph\":\"E\"").count()
        );
    }

    #[test]
    fn background_sampler_starts_and_stops() {
        let tracer = Tracer::new(64);
        let profiler = Profiler::new(500, 8);
        profiler.start();
        assert!(profiler.is_running());
        profiler.start(); // idempotent
        {
            let _span = tracer.span("busy");
            std::thread::sleep(Duration::from_millis(30));
        }
        profiler.stop();
        assert!(!profiler.is_running());
        profiler.stop(); // idempotent
        let snap = profiler.snapshot(0);
        assert!(
            snap.folded.keys().any(|p| p.contains("busy")),
            "sampler observed the open span: {:?}",
            snap.folded
        );
        assert_eq!(snap.folded.values().sum::<u64>(), snap.samples);
    }

    #[test]
    fn multithreaded_sampling_is_consistent() {
        // Sized for Miri: few threads, few iterations, synchronous
        // sampling interleaved with span churn.
        let _mirror = MirrorGuard::on();
        let profiler = Profiler::new(100, 8);
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let tracer = Tracer::new(16);
                    for _ in 0..20 {
                        let _outer = tracer.span("outer");
                        let _inner = tracer.span("inner");
                        std::thread::yield_now();
                    }
                });
            }
            for _ in 0..20 {
                profiler.sample_once();
                std::thread::yield_now();
            }
        });
        let snap = profiler.snapshot(0);
        assert_eq!(
            snap.folded.values().sum::<u64>(),
            snap.samples,
            "folded totals must equal the sample count: {:?}",
            snap.folded
        );
        for path in snap.folded.keys() {
            assert!(
                path == "outer" || path == "outer;inner" || !path.contains("outer"),
                "only well-formed stacks observed: {path}"
            );
        }
    }

    #[test]
    fn from_folded_skips_garbage_lines() {
        let snap = ProfileSnapshot::from_folded("a;b 3\nnot a line\nc 2\n 5\nx y\n");
        assert_eq!(snap.samples, 5);
        assert_eq!(snap.folded.len(), 2);
    }
}
