//! # orex-datagen — synthetic dataset generators
//!
//! Stand-ins for the paper's four evaluation datasets (Table 1): a
//! DBLP-shaped generator over the Figure 2 schema and a biological
//! generator over the Figure 4 schema, both with Zipfian topic-model text,
//! preferential-attachment link structure and deterministic seeding.
//! See DESIGN.md §2 for why these substitutions preserve the paper's
//! experimental behaviour.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bio;
mod dblp;
mod presets;
mod text;
mod workload;

pub use bio::{bio_ground_truth, bio_schema, generate_bio, BioConfig, BioEdgeTypes};
pub use dblp::{dblp_ground_truth, dblp_schema, generate_dblp, Dataset, DblpConfig, DblpEdgeTypes};
pub use presets::Preset;
pub use text::{synthetic_word, TextConfig, TextGen, Zipf, DOMAIN_KEYWORDS};
pub use workload::{generate_workload, Workload, WorkloadConfig};
