//! Table 1 dataset presets.
//!
//! The paper evaluates on four datasets (Table 1):
//!
//! | name         | #nodes  | #edges    |
//! |--------------|---------|-----------|
//! | DBLPcomplete | 876,110 | 4,166,626 |
//! | DBLPtop      |  22,653 |   166,960 |
//! | DS7          | 699,199 | 3,533,756 |
//! | DS7cancer    |  37,796 |   138,146 |
//!
//! Each preset configures the synthetic generators to land near those
//! sizes at `scale = 1.0`; smaller scales shrink all counts proportionally
//! for tests and quick runs.

use crate::bio::{generate_bio, BioConfig};
use crate::dblp::{generate_dblp, Dataset, DblpConfig};
use crate::text::TextConfig;

/// The four Table 1 datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Preset {
    /// Full DBLP-shaped graph (876k nodes).
    DblpComplete,
    /// Database-conference subset (23k nodes) — the survey dataset.
    DblpTop,
    /// Full biological collection (699k nodes).
    Ds7,
    /// Cancer-related subset (38k nodes).
    Ds7Cancer,
}

impl Preset {
    /// All presets in Table 1 order.
    pub const ALL: [Preset; 4] = [
        Preset::DblpComplete,
        Preset::DblpTop,
        Preset::Ds7,
        Preset::Ds7Cancer,
    ];

    /// Table-1-style name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::DblpComplete => "DBLPcomplete",
            Preset::DblpTop => "DBLPtop",
            Preset::Ds7 => "DS7",
            Preset::Ds7Cancer => "DS7cancer",
        }
    }

    /// Parses a CLI-style name (case-insensitive, hyphens ignored).
    pub fn parse(name: &str) -> Option<Preset> {
        let canon: String = name
            .chars()
            .filter(|c| c.is_alphanumeric())
            .collect::<String>()
            .to_lowercase();
        match canon.as_str() {
            "dblpcomplete" => Some(Preset::DblpComplete),
            "dblptop" => Some(Preset::DblpTop),
            "ds7" => Some(Preset::Ds7),
            "ds7cancer" => Some(Preset::Ds7Cancer),
            _ => None,
        }
    }

    /// The `(nodes, edges)` sizes the paper reports in Table 1.
    pub fn paper_sizes(self) -> (usize, usize) {
        match self {
            Preset::DblpComplete => (876_110, 4_166_626),
            Preset::DblpTop => (22_653, 166_960),
            Preset::Ds7 => (699_199, 3_533_756),
            Preset::Ds7Cancer => (37_796, 138_146),
        }
    }

    /// True for the biological datasets.
    pub fn is_bio(self) -> bool {
        matches!(self, Preset::Ds7 | Preset::Ds7Cancer)
    }

    /// Generates the dataset at the given scale (`1.0` targets the
    /// Table 1 sizes; `0.01` is handy for tests).
    pub fn generate(self, scale: f64) -> Dataset {
        assert!(scale > 0.0, "scale must be positive");
        let s = |n: usize| ((n as f64 * scale).round() as usize).max(1);
        match self {
            Preset::DblpComplete => generate_dblp(
                self.name(),
                &DblpConfig {
                    papers: s(520_000),
                    authors: s(349_000),
                    conferences: s(600),
                    years_per_conference: 10,
                    avg_citations: 5.0,
                    avg_authors_per_paper: 2.0,
                    title_len: (6, 12),
                    text: TextConfig {
                        vocab_size: scaled_vocab(scale, 60_000),
                        topics: 60,
                        ..TextConfig::default()
                    },
                    seed: 0xD1,
                },
            ),
            Preset::DblpTop => generate_dblp(
                self.name(),
                &DblpConfig {
                    papers: s(15_000),
                    authors: s(7_100),
                    conferences: s(50),
                    years_per_conference: 10,
                    avg_citations: 8.0,
                    avg_authors_per_paper: 2.0,
                    title_len: (6, 12),
                    text: TextConfig {
                        vocab_size: scaled_vocab(scale, 20_000),
                        topics: 30,
                        ..TextConfig::default()
                    },
                    seed: 0xD2,
                },
            ),
            Preset::Ds7 => generate_bio(
                self.name(),
                &BioConfig {
                    genes: s(80_000),
                    proteins_per_gene: 1.5,
                    nucleotides_per_gene: 1.2,
                    publications: s(403_000),
                    associations_per_publication: 8.0,
                    interactions_per_protein: 1.0,
                    abstract_len: (40, 120),
                    text: TextConfig {
                        vocab_size: scaled_vocab(scale, 60_000),
                        topics: 60,
                        ..TextConfig::default()
                    },
                    seed: 0xB1,
                },
            ),
            Preset::Ds7Cancer => generate_bio(
                self.name(),
                &BioConfig {
                    genes: s(4_000),
                    proteins_per_gene: 1.5,
                    nucleotides_per_gene: 1.2,
                    publications: s(23_000),
                    associations_per_publication: 5.0,
                    interactions_per_protein: 1.0,
                    abstract_len: (40, 120),
                    text: TextConfig {
                        vocab_size: scaled_vocab(scale, 20_000),
                        topics: 30,
                        ..TextConfig::default()
                    },
                    seed: 0xB2,
                },
            ),
        }
    }
}

/// Vocabulary shrinks with the square root of the scale (Heaps' law-ish),
/// with a floor that keeps topic structure meaningful.
fn scaled_vocab(scale: f64, full: usize) -> usize {
    ((full as f64 * scale.sqrt()).round() as usize).max(500)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for p in Preset::ALL {
            assert_eq!(Preset::parse(p.name()), Some(p));
        }
        assert_eq!(Preset::parse("dblp-top"), Some(Preset::DblpTop));
        assert_eq!(Preset::parse("nope"), None);
    }

    #[test]
    fn scaled_generation_lands_near_targets() {
        // At 2% scale the node count should be ~2% of Table 1 (within 2x).
        for p in [Preset::DblpTop, Preset::Ds7Cancer] {
            let d = p.generate(0.02);
            let (target_nodes, target_edges) = p.paper_sizes();
            let expect_nodes = target_nodes as f64 * 0.02;
            let expect_edges = target_edges as f64 * 0.02;
            let (n, e) = d.sizes();
            assert!(
                (n as f64) > expect_nodes * 0.5 && (n as f64) < expect_nodes * 2.0,
                "{}: nodes {} vs expected ~{}",
                p.name(),
                n,
                expect_nodes
            );
            assert!(
                (e as f64) > expect_edges * 0.4 && (e as f64) < expect_edges * 2.5,
                "{}: edges {} vs expected ~{}",
                p.name(),
                e,
                expect_edges
            );
        }
    }

    #[test]
    fn bio_flag() {
        assert!(Preset::Ds7.is_bio());
        assert!(!Preset::DblpComplete.is_bio());
    }
}
