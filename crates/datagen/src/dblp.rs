//! Synthetic DBLP-shaped dataset generator (schema of Figure 2).
//!
//! Substitutes for the paper's DBLPcomplete / DBLPtop dumps (Table 1): the
//! graph has the exact schema of Figure 2 (Paper, Conference, Year, Author
//! with cites / by / has_instance / contains edges), citation in-degrees
//! follow a power law via preferential attachment with topic locality,
//! paper titles come from the Zipfian topic model, and the ground-truth
//! authority transfer rates are those of Balmin et al. (Figure 3) — the
//! vector the training experiments (Figures 11, 13) treat as ground truth.

use crate::text::{TextConfig, TextGen, DOMAIN_KEYWORDS};
use orex_graph::{
    DataGraph, DataGraphBuilder, EdgeTypeId, SchemaGraph, TransferRates, TransferTypeId,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset: the graph, its ground-truth rates, and suggested
/// benchmark query keywords.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name (e.g. "dblp-top").
    pub name: String,
    /// The data graph.
    pub graph: DataGraph,
    /// The ground-truth authority transfer rates for this schema.
    pub ground_truth: TransferRates,
    /// Keywords with healthy document frequencies, suitable as benchmark
    /// queries.
    pub suggested_keywords: Vec<String>,
}

impl Dataset {
    /// Convenience: `(nodes, edges)` sizes for Table 1 style reporting.
    pub fn sizes(&self) -> (usize, usize) {
        (self.graph.node_count(), self.graph.edge_count())
    }
}

/// Configuration of the DBLP generator.
#[derive(Clone, Debug)]
pub struct DblpConfig {
    /// Number of papers.
    pub papers: usize,
    /// Size of the author pool.
    pub authors: usize,
    /// Number of conferences.
    pub conferences: usize,
    /// Year instances per conference.
    pub years_per_conference: usize,
    /// Mean citations per paper (power-law targets).
    pub avg_citations: f64,
    /// Mean authors per paper.
    pub avg_authors_per_paper: f64,
    /// Title length range in tokens, inclusive.
    pub title_len: (usize, usize),
    /// Text/topic model configuration.
    pub text: TextConfig,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            papers: 2_000,
            authors: 1_200,
            conferences: 20,
            years_per_conference: 10,
            avg_citations: 4.0,
            avg_authors_per_paper: 2.0,
            title_len: (6, 12),
            text: TextConfig::default(),
            seed: 0xDB17,
        }
    }
}

/// The edge-type handles of a generated DBLP graph, in schema order.
#[derive(Clone, Copy, Debug)]
pub struct DblpEdgeTypes {
    /// Paper -> Paper "cites".
    pub cites: EdgeTypeId,
    /// Paper -> Author "by".
    pub by: EdgeTypeId,
    /// Conference -> Year "has_instance".
    pub has_instance: EdgeTypeId,
    /// Year -> Paper "contains".
    pub contains: EdgeTypeId,
}

/// Builds the Figure 2 schema. Returns the schema and its edge types.
pub fn dblp_schema() -> (SchemaGraph, DblpEdgeTypes) {
    let mut schema = SchemaGraph::new();
    let paper = schema.add_node_type("Paper").unwrap();
    let conference = schema.add_node_type("Conference").unwrap();
    let year = schema.add_node_type("Year").unwrap();
    let author = schema.add_node_type("Author").unwrap();
    let cites = schema.add_edge_type(paper, paper, "cites").unwrap();
    let by = schema.add_edge_type(paper, author, "by").unwrap();
    let has_instance = schema
        .add_edge_type(conference, year, "has_instance")
        .unwrap();
    let contains = schema.add_edge_type(year, paper, "contains").unwrap();
    (
        schema,
        DblpEdgeTypes {
            cites,
            by,
            has_instance,
            contains,
        },
    )
}

/// The BHP04 ground-truth authority transfer rates (Figure 3):
/// `[PP, PPback, PA, AP, CY, YC, YP, PY] = [0.7, 0, 0.2, 0.2, 0.3, 0.3,
/// 0.3, 0.1]`.
pub fn dblp_ground_truth(schema: &SchemaGraph, et: &DblpEdgeTypes) -> TransferRates {
    let mut r = TransferRates::zero(schema);
    r.set(TransferTypeId::forward(et.cites), 0.7).unwrap();
    r.set(TransferTypeId::backward(et.cites), 0.0).unwrap();
    r.set(TransferTypeId::forward(et.by), 0.2).unwrap();
    r.set(TransferTypeId::backward(et.by), 0.2).unwrap();
    r.set(TransferTypeId::forward(et.has_instance), 0.3)
        .unwrap();
    r.set(TransferTypeId::backward(et.has_instance), 0.3)
        .unwrap();
    r.set(TransferTypeId::forward(et.contains), 0.3).unwrap();
    r.set(TransferTypeId::backward(et.contains), 0.1).unwrap();
    r.validate(schema).expect("ground truth rates valid");
    r
}

/// Samples an approximately Poisson count with the given mean (geometric
/// mixture — close enough for degree distributions, avoids pulling in a
/// distributions crate).
fn sample_count(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    // Sum of two geometric halves approximates the mean with mild
    // overdispersion (realistic for citation counts).
    let p = 1.0 / (1.0 + mean / 2.0);
    let mut total = 0usize;
    for _ in 0..2 {
        while rng.gen::<f64>() > p {
            total += 1;
            if total > 1000 {
                break;
            }
        }
    }
    total
}

/// Generates a DBLP-shaped dataset.
pub fn generate_dblp(name: &str, config: &DblpConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let text = TextGen::new(&config.text, &mut rng);
    let (schema, et) = dblp_schema();
    let ground_truth = dblp_ground_truth(&schema, &et);
    let paper_t = schema.node_type_by_label("Paper").unwrap();
    let conf_t = schema.node_type_by_label("Conference").unwrap();
    let year_t = schema.node_type_by_label("Year").unwrap();
    let author_t = schema.node_type_by_label("Author").unwrap();

    let est_nodes =
        config.papers + config.authors + config.conferences * (1 + config.years_per_conference);
    let est_edges = config.papers
        * (1 + config.avg_citations as usize + config.avg_authors_per_paper as usize)
        + config.conferences * config.years_per_conference;
    let mut b = DataGraphBuilder::with_capacity(schema, est_nodes, est_edges);

    // Conferences and their year instances. Each conference has a home
    // topic (SIGMOD is a database venue; real venues are topical), and
    // papers preferentially publish at home-topic venues — this is what
    // makes Year -> Paper edges carry *relevant* authority, as they do in
    // real DBLP.
    let topics = text.topic_count();
    let mut year_nodes = Vec::with_capacity(config.conferences * config.years_per_conference);
    let mut conf_topics = Vec::with_capacity(config.conferences);
    let mut years_by_topic: Vec<Vec<usize>> = vec![Vec::new(); topics];
    for c in 0..config.conferences {
        let conf_topic = c % topics;
        conf_topics.push(conf_topic);
        let conf_name = format!("conf{}", crate::text::synthetic_word(c));
        let conf = b
            .add_node_with(conf_t, &[("Name", conf_name.as_str())])
            .unwrap();
        for y in 0..config.years_per_conference {
            let year_num = 1990 + (y % 18);
            let location = crate::text::synthetic_word(rng.gen_range(0..500));
            let year = b
                .add_node(
                    year_t,
                    vec![
                        orex_graph::Attribute {
                            name: "Name".into(),
                            value: conf_name.clone(),
                        },
                        orex_graph::Attribute {
                            name: "Year".into(),
                            value: year_num.to_string(),
                        },
                        orex_graph::Attribute {
                            name: "Location".into(),
                            value: location,
                        },
                    ],
                )
                .unwrap();
            b.add_edge(conf, year, et.has_instance).unwrap();
            years_by_topic[conf_topic].push(year_nodes.len());
            year_nodes.push(year);
        }
    }

    // Authors.
    let author_nodes: Vec<_> = (0..config.authors)
        .map(|i| {
            let name = format!(
                "{} {}",
                crate::text::synthetic_word(i * 2 + 1),
                crate::text::synthetic_word(i * 3 + 7)
            );
            b.add_node_with(author_t, &[("Name", name.as_str())])
                .unwrap()
        })
        .collect();

    // Papers with topic-model titles, preferential-attachment citations
    // (with strong topic locality — citation graphs are topically dense:
    // the foundational papers of an area are cited directly by most
    // papers of that area, which is what routes base-set authority to
    // them along forward citation edges) and preferential authorship.
    let mut paper_nodes = Vec::with_capacity(config.papers);
    let mut paper_topics: Vec<usize> = Vec::with_capacity(config.papers);
    let mut per_topic_papers: Vec<Vec<usize>> = vec![Vec::new(); topics];
    // Per-topic preferential-attachment pools.
    let mut citation_pool: Vec<usize> = Vec::new();
    let mut topic_citation_pool: Vec<Vec<usize>> = vec![Vec::new(); topics];
    // Author popularity pool.
    let mut author_pool: Vec<usize> = Vec::new();

    for i in 0..config.papers {
        let topic = rng.gen_range(0..topics);
        let len = rng.gen_range(config.title_len.0..=config.title_len.1);
        let title = text.document(topic, len, config.text.topic_mix, &mut rng);
        // Publish at a home-topic venue with probability 0.7.
        let year_node = if rng.gen::<f64>() < 0.7 && !years_by_topic[topic].is_empty() {
            let pool = &years_by_topic[topic];
            year_nodes[pool[rng.gen_range(0..pool.len())]]
        } else {
            year_nodes[rng.gen_range(0..year_nodes.len())]
        };
        let paper = b
            .add_node_with(paper_t, &[("Title", title.as_str())])
            .unwrap();
        b.add_edge(year_node, paper, et.contains).unwrap();

        // Authorship: preferential with probability 0.5.
        let n_auth = 1 + sample_count(config.avg_authors_per_paper - 1.0, &mut rng);
        let mut chosen = Vec::with_capacity(n_auth);
        for _ in 0..n_auth.min(config.authors) {
            let a = if !author_pool.is_empty() && rng.gen::<f64>() < 0.5 {
                author_pool[rng.gen_range(0..author_pool.len())]
            } else {
                rng.gen_range(0..config.authors)
            };
            if !chosen.contains(&a) {
                chosen.push(a);
                author_pool.push(a);
                b.add_edge(paper, author_nodes[a], et.by).unwrap();
            }
        }

        // Citations to earlier papers.
        if i > 0 {
            let n_cites = sample_count(config.avg_citations, &mut rng).min(i);
            let mut cited = Vec::with_capacity(n_cites);
            for _ in 0..n_cites {
                let roll: f64 = rng.gen();
                let target = if roll < 0.6 && !topic_citation_pool[topic].is_empty() {
                    // Preferential attachment *within the topic*: the
                    // area's foundational hubs absorb most citations.
                    let pool = &topic_citation_pool[topic];
                    pool[rng.gen_range(0..pool.len())]
                } else if roll < 0.9 && !per_topic_papers[topic].is_empty() {
                    // Uniform within the topic.
                    per_topic_papers[topic][rng.gen_range(0..per_topic_papers[topic].len())]
                } else if roll < 0.95 && !citation_pool.is_empty() {
                    // Cross-topic preferential.
                    citation_pool[rng.gen_range(0..citation_pool.len())]
                } else {
                    rng.gen_range(0..i)
                };
                if target != i && !cited.contains(&target) {
                    cited.push(target);
                    citation_pool.push(target);
                    topic_citation_pool[paper_topics[target]].push(target);
                    b.add_edge(paper, paper_nodes[target], et.cites).unwrap();
                }
            }
        }

        per_topic_papers[topic].push(i);
        paper_nodes.push(paper);
        paper_topics.push(topic);
    }

    let graph = b.freeze();
    let suggested_keywords = DOMAIN_KEYWORDS.iter().map(|s| s.to_string()).collect();
    Dataset {
        name: name.to_string(),
        graph,
        ground_truth,
        suggested_keywords,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate_dblp(
            "test",
            &DblpConfig {
                papers: 300,
                authors: 150,
                conferences: 5,
                years_per_conference: 4,
                text: TextConfig {
                    vocab_size: 1000,
                    topics: 8,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        )
    }

    #[test]
    fn node_counts_match_config() {
        let d = small();
        // 300 papers + 150 authors + 5 confs + 20 years = 475.
        assert_eq!(d.graph.node_count(), 475);
        d.graph.verify_conformance().unwrap();
    }

    #[test]
    fn every_paper_has_a_year_and_an_author() {
        let d = small();
        let schema = d.graph.schema();
        let paper_t = schema.node_type_by_label("Paper").unwrap();
        for node in d.graph.nodes() {
            if d.graph.node_type(node) == paper_t {
                let in_labels: Vec<&str> = d
                    .graph
                    .in_edges(node)
                    .map(|(e, _)| schema.edge_type(d.graph.edge(e).edge_type).label.as_str())
                    .collect();
                assert!(in_labels.contains(&"contains"), "paper without year");
                let out_labels: Vec<&str> = d
                    .graph
                    .out_edges(node)
                    .map(|(e, _)| schema.edge_type(d.graph.edge(e).edge_type).label.as_str())
                    .collect();
                assert!(out_labels.contains(&"by"), "paper without author");
            }
        }
    }

    #[test]
    fn citation_indegree_is_skewed() {
        let d = generate_dblp(
            "skew",
            &DblpConfig {
                papers: 1500,
                ..DblpConfig::default()
            },
        );
        let schema = d.graph.schema();
        let paper_t = schema.node_type_by_label("Paper").unwrap();
        let mut indegs: Vec<usize> = Vec::new();
        for node in d.graph.nodes() {
            if d.graph.node_type(node) == paper_t {
                let cites_in = d
                    .graph
                    .in_edges(node)
                    .filter(|&(e, _)| schema.edge_type(d.graph.edge(e).edge_type).label == "cites")
                    .count();
                indegs.push(cites_in);
            }
        }
        indegs.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = indegs.iter().sum();
        let top_decile: usize = indegs.iter().take(indegs.len() / 10).sum();
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "preferential attachment should concentrate citations: top 10% hold {top_decile}/{total}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        // Spot-check some node text.
        for i in [0u32, 100, 400] {
            let n = orex_graph::NodeId::new(i);
            assert_eq!(a.graph.node_text(n), b.graph.node_text(n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = generate_dblp(
            "test2",
            &DblpConfig {
                papers: 300,
                authors: 150,
                conferences: 5,
                years_per_conference: 4,
                seed: 999,
                text: TextConfig {
                    vocab_size: 1000,
                    topics: 8,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        );
        assert_ne!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn ground_truth_rates_are_bhp04() {
        let (schema, et) = dblp_schema();
        let r = dblp_ground_truth(&schema, &et);
        assert_eq!(r.get(TransferTypeId::forward(et.cites)), 0.7);
        assert_eq!(r.get(TransferTypeId::backward(et.cites)), 0.0);
        assert_eq!(r.get(TransferTypeId::backward(et.contains)), 0.1);
        r.validate(&schema).unwrap();
    }

    #[test]
    fn suggested_keywords_appear_in_titles() {
        let d = small();
        let mut found = 0;
        let all_text: String = d
            .graph
            .nodes()
            .map(|n| d.graph.node_text(n))
            .collect::<Vec<_>>()
            .join(" ");
        for kw in &d.suggested_keywords {
            if all_text.contains(kw.as_str()) {
                found += 1;
            }
        }
        assert!(
            found >= d.suggested_keywords.len() / 2,
            "only {found} keywords present"
        );
    }

    #[test]
    fn sample_count_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sample_count(4.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.3, "mean {mean}");
    }
}
