//! Synthetic biological dataset generator (schema of Figure 4).
//!
//! Substitutes for the paper's DS7 / DS7cancer collections (PubMed-derived
//! biological sources, Table 1). The schema follows Figure 4: Entrez Gene,
//! Entrez Protein, Entrez Nucleotide and PubMed node types with
//! cross-source association edges (e.g. the "genePubMedAssociates" role
//! the paper names). PubMed records carry topic-model abstracts (longer
//! documents than DBLP titles — the regime where the paper expects
//! ObjectRank2's IR weighting to pay off); genes/proteins/nucleotides
//! carry symbols and short descriptions.

use crate::dblp::Dataset;
use crate::text::{synthetic_word, TextConfig, TextGen, DOMAIN_KEYWORDS};
use orex_graph::{DataGraphBuilder, EdgeTypeId, SchemaGraph, TransferRates, TransferTypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Edge-type handles of a generated biological graph.
#[derive(Clone, Copy, Debug)]
pub struct BioEdgeTypes {
    /// Gene -> Protein "encodes".
    pub encodes: EdgeTypeId,
    /// Gene -> Nucleotide "transcribes".
    pub transcribes: EdgeTypeId,
    /// Gene -> PubMed "genePubMedAssociates".
    pub gene_pubmed: EdgeTypeId,
    /// Protein -> PubMed "proteinPubMedAssociates".
    pub protein_pubmed: EdgeTypeId,
    /// Nucleotide -> PubMed "nucleotidePubMedAssociates".
    pub nucleotide_pubmed: EdgeTypeId,
    /// Protein -> Protein "interacts".
    pub interacts: EdgeTypeId,
}

/// Builds the Figure 4 schema.
pub fn bio_schema() -> (SchemaGraph, BioEdgeTypes) {
    let mut schema = SchemaGraph::new();
    let gene = schema.add_node_type("EntrezGene").unwrap();
    let protein = schema.add_node_type("EntrezProtein").unwrap();
    let nucleotide = schema.add_node_type("EntrezNucleotide").unwrap();
    let pubmed = schema.add_node_type("PubMed").unwrap();
    let encodes = schema.add_edge_type(gene, protein, "encodes").unwrap();
    let transcribes = schema
        .add_edge_type(gene, nucleotide, "transcribes")
        .unwrap();
    let gene_pubmed = schema
        .add_edge_type(gene, pubmed, "genePubMedAssociates")
        .unwrap();
    let protein_pubmed = schema
        .add_edge_type(protein, pubmed, "proteinPubMedAssociates")
        .unwrap();
    let nucleotide_pubmed = schema
        .add_edge_type(nucleotide, pubmed, "nucleotidePubMedAssociates")
        .unwrap();
    let interacts = schema.add_edge_type(protein, protein, "interacts").unwrap();
    (
        schema,
        BioEdgeTypes {
            encodes,
            transcribes,
            gene_pubmed,
            protein_pubmed,
            nucleotide_pubmed,
            interacts,
        },
    )
}

/// Simulated ground-truth rates for the biological schema. The paper's
/// domain experts never published a DS7 rates vector; this one encodes the
/// same kind of judgment BHP04 made for DBLP (publications confer strong
/// authority on the entities they mention; structural links carry
/// moderate, asymmetric authority) and is what the bio training
/// experiments learn toward.
pub fn bio_ground_truth(schema: &SchemaGraph, et: &BioEdgeTypes) -> TransferRates {
    let mut r = TransferRates::zero(schema);
    r.set(TransferTypeId::forward(et.encodes), 0.3).unwrap();
    r.set(TransferTypeId::backward(et.encodes), 0.3).unwrap();
    r.set(TransferTypeId::forward(et.transcribes), 0.2).unwrap();
    r.set(TransferTypeId::backward(et.transcribes), 0.1)
        .unwrap();
    r.set(TransferTypeId::forward(et.gene_pubmed), 0.3).unwrap();
    r.set(TransferTypeId::backward(et.gene_pubmed), 0.4)
        .unwrap();
    r.set(TransferTypeId::forward(et.protein_pubmed), 0.2)
        .unwrap();
    r.set(TransferTypeId::backward(et.protein_pubmed), 0.3)
        .unwrap();
    r.set(TransferTypeId::forward(et.nucleotide_pubmed), 0.2)
        .unwrap();
    r.set(TransferTypeId::backward(et.nucleotide_pubmed), 0.2)
        .unwrap();
    r.set(TransferTypeId::forward(et.interacts), 0.2).unwrap();
    r.set(TransferTypeId::backward(et.interacts), 0.0).unwrap();
    r.validate(schema).expect("bio ground truth valid");
    r
}

/// Configuration of the biological generator.
#[derive(Clone, Debug)]
pub struct BioConfig {
    /// Number of genes.
    pub genes: usize,
    /// Proteins per gene (mean).
    pub proteins_per_gene: f64,
    /// Nucleotides per gene (mean).
    pub nucleotides_per_gene: f64,
    /// Number of PubMed records.
    pub publications: usize,
    /// Mean entity associations per publication.
    pub associations_per_publication: f64,
    /// Mean protein-protein interactions per protein.
    pub interactions_per_protein: f64,
    /// Abstract length range in tokens.
    pub abstract_len: (usize, usize),
    /// Text model.
    pub text: TextConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BioConfig {
    fn default() -> Self {
        Self {
            genes: 400,
            proteins_per_gene: 1.5,
            nucleotides_per_gene: 1.2,
            publications: 1_500,
            associations_per_publication: 3.0,
            interactions_per_protein: 1.0,
            abstract_len: (40, 120),
            text: TextConfig::default(),
            seed: 0xB10,
        }
    }
}

fn count(mean: f64, rng: &mut StdRng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let p = 1.0 / (1.0 + mean);
    let mut n = 0usize;
    while rng.gen::<f64>() > p {
        n += 1;
        if n > 1000 {
            break;
        }
    }
    n
}

/// Generates a biological dataset.
pub fn generate_bio(name: &str, config: &BioConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let text = TextGen::new(&config.text, &mut rng);
    let (schema, et) = bio_schema();
    let ground_truth = bio_ground_truth(&schema, &et);
    let gene_t = schema.node_type_by_label("EntrezGene").unwrap();
    let protein_t = schema.node_type_by_label("EntrezProtein").unwrap();
    let nucleotide_t = schema.node_type_by_label("EntrezNucleotide").unwrap();
    let pubmed_t = schema.node_type_by_label("PubMed").unwrap();
    let mut b = DataGraphBuilder::new(schema);

    let topics = text.topic_count();
    // Genes, each with a topic ("pathway") its publications share.
    let mut genes = Vec::with_capacity(config.genes);
    let mut gene_topic = Vec::with_capacity(config.genes);
    let mut proteins = Vec::new();
    let mut protein_topic = Vec::new();
    let mut nucleotides = Vec::new();
    let mut nucleotide_topic = Vec::new();
    for i in 0..config.genes {
        let topic = rng.gen_range(0..topics);
        let symbol = format!("gene{}", synthetic_word(i));
        let desc = text.document(topic, 6, config.text.topic_mix, &mut rng);
        let g = b
            .add_node_with(
                gene_t,
                &[("Symbol", symbol.as_str()), ("Description", desc.as_str())],
            )
            .unwrap();
        genes.push(g);
        gene_topic.push(topic);
        for _ in 0..(1 + count(config.proteins_per_gene - 1.0, &mut rng)) {
            let sym = format!("prot{}", synthetic_word(proteins.len()));
            let desc = text.document(topic, 5, config.text.topic_mix, &mut rng);
            let p = b
                .add_node_with(
                    protein_t,
                    &[("Symbol", sym.as_str()), ("Description", desc.as_str())],
                )
                .unwrap();
            b.add_edge(g, p, et.encodes).unwrap();
            proteins.push(p);
            protein_topic.push(topic);
        }
        for _ in 0..(1 + count(config.nucleotides_per_gene - 1.0, &mut rng)) {
            let sym = format!("nuc{}", synthetic_word(nucleotides.len()));
            let n = b
                .add_node_with(nucleotide_t, &[("Accession", sym.as_str())])
                .unwrap();
            b.add_edge(g, n, et.transcribes).unwrap();
            nucleotides.push(n);
            nucleotide_topic.push(topic);
        }
    }

    // Protein-protein interactions, preferring same-topic partners.
    let mut per_topic_proteins: Vec<Vec<usize>> = vec![Vec::new(); topics];
    for (i, &t) in protein_topic.iter().enumerate() {
        per_topic_proteins[t].push(i);
    }
    for i in 0..proteins.len() {
        for _ in 0..count(config.interactions_per_protein, &mut rng) {
            let pool = &per_topic_proteins[protein_topic[i]];
            let j = if rng.gen::<f64>() < 0.7 && pool.len() > 1 {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..proteins.len())
            };
            if j != i {
                b.add_edge(proteins[i], proteins[j], et.interacts).unwrap();
            }
        }
    }

    // Publications: each gets a topic and associates with same-topic
    // entities (preferential by entity popularity).
    let mut entity_pool: Vec<(u8, usize)> = Vec::new(); // (kind, idx)
    let mut per_topic_genes: Vec<Vec<usize>> = vec![Vec::new(); topics];
    for (i, &t) in gene_topic.iter().enumerate() {
        per_topic_genes[t].push(i);
    }
    for p in 0..config.publications {
        let topic = rng.gen_range(0..topics);
        let len = rng.gen_range(config.abstract_len.0..=config.abstract_len.1);
        let title = text.document(topic, 8, config.text.topic_mix, &mut rng);
        let abstract_ = text.document(topic, len, config.text.topic_mix, &mut rng);
        let pmid = format!("pmid{p}");
        let pub_node = b
            .add_node_with(
                pubmed_t,
                &[
                    ("PMID", pmid.as_str()),
                    ("Title", title.as_str()),
                    ("Abstract", abstract_.as_str()),
                ],
            )
            .unwrap();
        let n_assoc = 1 + count(config.associations_per_publication - 1.0, &mut rng);
        for _ in 0..n_assoc {
            // Pick an entity: 40% popularity-preferential, else a
            // same-topic gene/protein/nucleotide.
            let (kind, idx) = if rng.gen::<f64>() < 0.4 && !entity_pool.is_empty() {
                entity_pool[rng.gen_range(0..entity_pool.len())]
            } else {
                let kind = rng.gen_range(0..3u8);
                let idx = match kind {
                    0 => {
                        let pool = &per_topic_genes[topic];
                        if pool.is_empty() {
                            rng.gen_range(0..genes.len())
                        } else {
                            pool[rng.gen_range(0..pool.len())]
                        }
                    }
                    1 => {
                        let pool = &per_topic_proteins[topic];
                        if pool.is_empty() {
                            rng.gen_range(0..proteins.len())
                        } else {
                            pool[rng.gen_range(0..pool.len())]
                        }
                    }
                    _ => rng.gen_range(0..nucleotides.len()),
                };
                (kind, idx)
            };
            entity_pool.push((kind, idx));
            match kind {
                0 => b.add_edge(genes[idx], pub_node, et.gene_pubmed).unwrap(),
                1 => b
                    .add_edge(proteins[idx], pub_node, et.protein_pubmed)
                    .unwrap(),
                _ => b
                    .add_edge(nucleotides[idx], pub_node, et.nucleotide_pubmed)
                    .unwrap(),
            };
        }
    }

    Dataset {
        name: name.to_string(),
        graph: b.freeze(),
        ground_truth,
        suggested_keywords: DOMAIN_KEYWORDS.iter().map(|s| s.to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate_bio(
            "bio-test",
            &BioConfig {
                genes: 60,
                publications: 200,
                text: TextConfig {
                    vocab_size: 1000,
                    topics: 6,
                    ..TextConfig::default()
                },
                ..BioConfig::default()
            },
        )
    }

    #[test]
    fn conforms_to_schema() {
        let d = small();
        d.graph.verify_conformance().unwrap();
        assert!(d.graph.node_count() > 260);
        assert!(d.graph.edge_count() > 200);
    }

    #[test]
    fn all_four_node_types_present() {
        let d = small();
        let schema = d.graph.schema();
        let mut counts = vec![0usize; schema.node_type_count()];
        for n in d.graph.nodes() {
            counts[d.graph.node_type(n).index()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 0, "node type {i} missing");
        }
    }

    #[test]
    fn publications_have_long_text() {
        let d = small();
        let schema = d.graph.schema();
        let pubmed_t = schema.node_type_by_label("PubMed").unwrap();
        let gene_t = schema.node_type_by_label("EntrezGene").unwrap();
        let mut pub_len = 0usize;
        let mut pub_count = 0usize;
        let mut gene_len = 0usize;
        let mut gene_count = 0usize;
        for n in d.graph.nodes() {
            let t = d.graph.node_type(n);
            if t == pubmed_t {
                pub_len += d.graph.node_text(n).len();
                pub_count += 1;
            } else if t == gene_t {
                gene_len += d.graph.node_text(n).len();
                gene_count += 1;
            }
        }
        assert!(
            pub_len / pub_count > 3 * (gene_len / gene_count),
            "abstracts should dwarf gene descriptions"
        );
    }

    #[test]
    fn ground_truth_valid() {
        let (schema, et) = bio_schema();
        let r = bio_ground_truth(&schema, &et);
        r.validate(&schema).unwrap();
        assert!(r.get(TransferTypeId::backward(et.gene_pubmed)) > 0.0);
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
    }

    #[test]
    fn genes_connect_to_publications() {
        let d = small();
        let schema = d.graph.schema();
        let gene_t = schema.node_type_by_label("EntrezGene").unwrap();
        let mut any = false;
        for n in d.graph.nodes() {
            if d.graph.node_type(n) == gene_t
                && d.graph.out_edges(n).any(|(e, _)| {
                    schema.edge_type(d.graph.edge(e).edge_type).label == "genePubMedAssociates"
                })
            {
                any = true;
                break;
            }
        }
        assert!(any, "no gene-publication association generated");
    }
}
