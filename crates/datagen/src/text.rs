//! Zipfian topic-model text generation.
//!
//! The paper's datasets carry real text (paper titles, PubMed abstracts);
//! what the algorithms actually consume from that text is its *statistics*:
//! a skewed (Zipfian) term-frequency distribution, topical co-occurrence
//! (papers about OLAP share vocabulary), and a handful of high-df query
//! keywords. The generator reproduces exactly those properties:
//!
//! - a vocabulary of pronounceable synthetic words plus a seeded set of
//!   real domain keywords at popular ranks (these become benchmark query
//!   terms);
//! - `K` topics, each a Zipf distribution over a topic-specific
//!   permutation of the vocabulary;
//! - documents drawn as a mixture of their topic's distribution and a
//!   background Zipf.

use rand::rngs::StdRng;
use rand::Rng;

/// Domain keywords injected at popular vocabulary ranks; experiments use
/// them as query terms (they mirror the paper's survey queries, Table 2).
pub const DOMAIN_KEYWORDS: &[&str] = &[
    "data",
    "query",
    "olap",
    "cube",
    "xml",
    "mining",
    "index",
    "search",
    "ranking",
    "web",
    "stream",
    "join",
    "graph",
    "cache",
    "storage",
    "transaction",
    "optimization",
    "proximity",
    "keyword",
    "warehouse",
    "aggregation",
    "clustering",
    "classification",
    "schema",
    "relational",
];

/// A Zipf distribution over ranks `0..n` with exponent `s`, sampled by
/// binary search over the precomputed CDF.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over empty support");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    /// Support size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0 is the most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Generates a pronounceable synthetic word for an index, unique per index.
pub fn synthetic_word(index: usize) -> String {
    const SYLLABLES: &[&str] = &[
        "ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du", "ka", "ke", "ki", "ko", "ku",
        "la", "le", "li", "lo", "lu", "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
        "ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
        "va", "ve", "vi", "vo", "vu",
    ];
    let base = SYLLABLES.len();
    let mut word = String::new();
    let mut rest = index;
    loop {
        word.push_str(SYLLABLES[rest % base]);
        rest /= base;
        if rest == 0 {
            break;
        }
        rest -= 1; // make the encoding bijective so words never collide
    }
    // Pad one-syllable words so they survive tokenizer min-length filters
    // and do not collide with stopwords.
    if word.len() <= 2 {
        word.push('x');
    }
    word
}

/// Configuration of the topic-model text generator.
#[derive(Clone, Copy, Debug)]
pub struct TextConfig {
    /// Vocabulary size (domain keywords are placed within it).
    pub vocab_size: usize,
    /// Number of topics.
    pub topics: usize,
    /// Zipf exponent of term popularity (≈1.0 for natural text).
    pub zipf_exponent: f64,
    /// Probability a token is drawn from the document's topic rather than
    /// the background distribution.
    pub topic_mix: f64,
}

impl Default for TextConfig {
    fn default() -> Self {
        Self {
            vocab_size: 20_000,
            topics: 40,
            zipf_exponent: 1.05,
            topic_mix: 0.7,
        }
    }
}

/// The topic-model text generator.
#[derive(Clone, Debug)]
pub struct TextGen {
    vocab: Vec<String>,
    zipf: Zipf,
    /// Per-topic permutation parameters `(a, b)`: topic rank `z` maps to
    /// vocabulary index `(a * z + b) mod V` with `gcd(a, V) = 1`.
    topic_params: Vec<(usize, usize)>,
}

impl TextGen {
    /// Builds the vocabulary and topic structure.
    pub fn new(config: &TextConfig, rng: &mut StdRng) -> Self {
        let v = config.vocab_size.max(DOMAIN_KEYWORDS.len() * 4);
        let mut vocab: Vec<String> = (0..v).map(synthetic_word).collect();
        // Plant domain keywords at spread-out popular ranks (every 4th
        // slot from rank 2) so they have high but distinct df.
        for (i, kw) in DOMAIN_KEYWORDS.iter().enumerate() {
            vocab[2 + i * 4] = (*kw).to_string();
        }
        let zipf = Zipf::new(v, config.zipf_exponent);
        let topic_params = (0..config.topics.max(1))
            .map(|_| {
                // Random odd multiplier coprime with V when V is a power
                // of 2; for general V retry until coprime.
                loop {
                    let a = rng.gen_range(1..v) | 1;
                    if gcd(a, v) == 1 {
                        return (a, rng.gen_range(0..v));
                    }
                }
            })
            .collect();
        Self {
            vocab,
            zipf,
            topic_params,
        }
    }

    /// Number of topics.
    pub fn topic_count(&self) -> usize {
        self.topic_params.len()
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The surface form of a vocabulary index.
    pub fn word(&self, index: usize) -> &str {
        &self.vocab[index]
    }

    /// The most popular terms of a topic — used to pick realistic query
    /// keywords targeting that topic.
    pub fn topic_head_terms(&self, topic: usize, k: usize) -> Vec<&str> {
        let (a, b) = self.topic_params[topic % self.topic_params.len()];
        let v = self.vocab.len();
        (0..k.min(v)).map(|z| self.word((a * z + b) % v)).collect()
    }

    /// Generates a document of `len` tokens for `topic`, mixing topic and
    /// background draws per the configured `topic_mix`.
    pub fn document(&self, topic: usize, len: usize, topic_mix: f64, rng: &mut StdRng) -> String {
        let (a, b) = self.topic_params[topic % self.topic_params.len()];
        let v = self.vocab.len();
        let mut out = String::new();
        for i in 0..len {
            let z = self.zipf.sample(rng);
            let idx = if rng.gen::<f64>() < topic_mix {
                (a * z + b) % v
            } else {
                z
            };
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.word(idx));
        }
        out
    }
}

fn gcd(mut a: usize, mut b: usize) -> usize {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            if r == 0 {
                counts[0] += 1;
            }
            if r >= 500 {
                counts[1] += 1;
            }
        }
        // Rank 0 alone should beat the whole upper half combined.
        assert!(counts[0] > counts[1], "{counts:?}");
    }

    #[test]
    fn zipf_sample_in_range() {
        let z = Zipf::new(10, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn synthetic_words_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..5000 {
            assert!(seen.insert(synthetic_word(i)), "collision at {i}");
        }
    }

    #[test]
    fn synthetic_words_survive_tokenization() {
        for i in [0, 1, 49, 50, 2500] {
            let w = synthetic_word(i);
            assert!(w.len() >= 3);
            assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn domain_keywords_planted() {
        let mut rng = StdRng::seed_from_u64(3);
        let gen = TextGen::new(&TextConfig::default(), &mut rng);
        let vocab_set: std::collections::HashSet<&str> =
            (0..gen.vocab_size()).map(|i| gen.word(i)).collect();
        for kw in DOMAIN_KEYWORDS {
            assert!(vocab_set.contains(kw), "{kw} missing");
        }
    }

    #[test]
    fn documents_of_same_topic_share_vocabulary() {
        let mut rng = StdRng::seed_from_u64(5);
        let gen = TextGen::new(
            &TextConfig {
                vocab_size: 2000,
                topics: 10,
                ..TextConfig::default()
            },
            &mut rng,
        );
        let overlap = |a: &str, b: &str| {
            let sa: std::collections::HashSet<&str> = a.split(' ').collect();
            let sb: std::collections::HashSet<&str> = b.split(' ').collect();
            sa.intersection(&sb).count()
        };
        let mut same = 0usize;
        let mut cross = 0usize;
        for _ in 0..50 {
            let d1 = gen.document(0, 30, 0.9, &mut rng);
            let d2 = gen.document(0, 30, 0.9, &mut rng);
            let d3 = gen.document(5, 30, 0.9, &mut rng);
            same += overlap(&d1, &d2);
            cross += overlap(&d1, &d3);
        }
        assert!(
            same > cross,
            "same-topic overlap {same} should exceed cross-topic {cross}"
        );
    }

    #[test]
    fn document_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(9);
        let gen = TextGen::new(&TextConfig::default(), &mut rng);
        let doc = gen.document(3, 12, 0.7, &mut rng);
        assert_eq!(doc.split(' ').count(), 12);
    }

    #[test]
    fn topic_head_terms_are_stable() {
        let mut rng = StdRng::seed_from_u64(11);
        let gen = TextGen::new(&TextConfig::default(), &mut rng);
        assert_eq!(gen.topic_head_terms(2, 5), gen.topic_head_terms(2, 5));
        assert_eq!(gen.topic_head_terms(2, 5).len(), 5);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = TextConfig::default();
        let mk = || {
            let mut rng = StdRng::seed_from_u64(42);
            let gen = TextGen::new(&cfg, &mut rng);
            gen.document(1, 20, 0.7, &mut rng)
        };
        assert_eq!(mk(), mk());
    }
}
