//! Query-workload generation.
//!
//! The paper's performance experiments average over user queries; a
//! reproducible harness needs a deterministic workload with realistic
//! properties: keyword popularity is Zipfian (users query popular terms
//! more), most queries are short (1–2 keywords), and multi-keyword
//! queries combine topically related terms.

use crate::text::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload configuration.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of queries to generate.
    pub queries: usize,
    /// Probability that a query has two keywords (the rest have one;
    /// the paper's surveys use single and double keyword queries).
    pub two_keyword_prob: f64,
    /// Zipf exponent of keyword popularity.
    pub zipf_exponent: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            queries: 20,
            two_keyword_prob: 0.4,
            zipf_exponent: 1.0,
            seed: 0x3011,
        }
    }
}

/// A generated workload: keyword tuples drawn from a candidate pool.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The queries, each a tuple of keywords.
    pub queries: Vec<Vec<String>>,
}

/// Generates a workload from a keyword pool (ordered by intended
/// popularity — rank 0 is queried most).
///
/// # Panics
/// Panics if the pool is empty.
pub fn generate_workload(pool: &[String], config: &WorkloadConfig) -> Workload {
    assert!(!pool.is_empty(), "keyword pool must be non-empty");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(pool.len(), config.zipf_exponent);
    let mut queries = Vec::with_capacity(config.queries);
    for _ in 0..config.queries {
        let first = zipf.sample(&mut rng);
        let mut q = vec![pool[first].clone()];
        if rng.gen::<f64>() < config.two_keyword_prob && pool.len() > 1 {
            // Second keyword: a nearby pool rank (topical relatedness
            // proxy), distinct from the first.
            let mut second = first;
            for _ in 0..16 {
                let offset = zipf.sample(&mut rng) % pool.len().max(2);
                second = (first + offset + 1) % pool.len();
                if second != first {
                    break;
                }
            }
            if second != first {
                q.push(pool[second].clone());
            }
        }
        queries.push(q);
    }
    Workload { queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<String> {
        ["data", "query", "olap", "cube", "mining", "index"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    #[test]
    fn generates_requested_count() {
        let w = generate_workload(&pool(), &WorkloadConfig::default());
        assert_eq!(w.queries.len(), 20);
        for q in &w.queries {
            assert!(!q.is_empty() && q.len() <= 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_workload(&pool(), &WorkloadConfig::default());
        let b = generate_workload(&pool(), &WorkloadConfig::default());
        assert_eq!(a.queries, b.queries);
        let c = generate_workload(
            &pool(),
            &WorkloadConfig {
                seed: 99,
                ..WorkloadConfig::default()
            },
        );
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn popular_keywords_appear_more() {
        let w = generate_workload(
            &pool(),
            &WorkloadConfig {
                queries: 400,
                two_keyword_prob: 0.0,
                ..WorkloadConfig::default()
            },
        );
        let count = |kw: &str| w.queries.iter().filter(|q| q[0] == kw).count();
        assert!(count("data") > count("index"));
    }

    #[test]
    fn two_keyword_queries_have_distinct_terms() {
        let w = generate_workload(
            &pool(),
            &WorkloadConfig {
                queries: 200,
                two_keyword_prob: 1.0,
                ..WorkloadConfig::default()
            },
        );
        let mut saw_two = false;
        for q in &w.queries {
            if q.len() == 2 {
                saw_two = true;
                assert_ne!(q[0], q[1]);
            }
        }
        assert!(saw_two);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pool_panics() {
        let _ = generate_workload(&[], &WorkloadConfig::default());
    }
}
