//! The `orex logs` subcommand: filter and pretty-print JSON-lines log
//! captures.
//!
//! A running `orex serve` instance serves its log archive as JSON-lines
//! from `GET /logs`; this subcommand turns such a capture (a file, or
//! stdin when no file / `-` is given) into readable text — or re-emits
//! the surviving lines as JSON — after level/target/seq filtering:
//!
//! ```text
//! curl -s http://127.0.0.1:7474/logs | orex logs --level warn
//! orex logs server.jsonl --target server.access --limit 20 --format json
//! ```

use orex_telemetry::export::write_utc_timestamp;
use orex_telemetry::Level;
use std::fmt::Write as _;
use std::io::{Read, Write};

use crate::subcommands::SUBCOMMAND_HELP;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// True when `target` falls under `prefix` with the same dot-hierarchy
/// semantics as `OREX_LOG` filters: exact match or a `prefix.`-rooted
/// descendant.
fn target_matches(target: &str, prefix: &str) -> bool {
    target == prefix
        || (target.len() > prefix.len()
            && target.starts_with(prefix)
            && target.as_bytes()[prefix.len()] == b'.')
}

fn render_value(value: &serde_json::Value, out: &mut String) {
    if let Some(s) = value.as_str() {
        if s.is_empty() || s.contains([' ', '"', '=']) {
            let _ = write!(out, "{s:?}");
        } else {
            out.push_str(s);
        }
    } else if let Some(b) = value.as_bool() {
        let _ = write!(out, "{b}");
    } else if let Some(u) = value.as_u64() {
        let _ = write!(out, "{u}");
    } else if let Some(f) = value.as_f64() {
        let _ = write!(out, "{f}");
    } else {
        out.push_str("null");
    }
}

/// Renders one parsed record in the same shape as the telemetry text
/// exporter: timestamp, level, target, message, `key=value` fields, and
/// trace/span ids when present.
fn render_text_line(record: &serde_json::Value, out: &mut String) {
    write_utc_timestamp(
        record.get("ts_ns").and_then(|v| v.as_u64()).unwrap_or(0),
        out,
    );
    let level = record.get("level").and_then(|v| v.as_str()).unwrap_or("?");
    let target = record.get("target").and_then(|v| v.as_str()).unwrap_or("?");
    let message = record.get("message").and_then(|v| v.as_str()).unwrap_or("");
    let _ = write!(out, " {level:<5} {target} {message}");
    if let Some(fields) = record.get("fields").and_then(|v| v.as_object()) {
        for (key, value) in fields.iter() {
            let _ = write!(out, " {key}=");
            render_value(value, out);
        }
    }
    if let Some(trace) = record.get("trace").and_then(|v| v.as_u64()) {
        let _ = write!(out, " trace={trace}");
    }
    if let Some(span) = record.get("span").and_then(|v| v.as_u64()) {
        let _ = write!(out, " span={span}");
    }
    out.push('\n');
}

/// `orex logs [FILE] [--level L] [--target PREFIX] [--since SEQ]
/// [--limit N] [--trace ID] [--format text|json]` — filter a JSON-lines
/// log capture and render it as text (default) or re-emit the surviving
/// JSON lines. `--trace` keeps only records stamped with that trace id,
/// turning a fleet-wide capture into the log slice of one request.
/// Returns the process exit code.
pub fn run_logs(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> std::io::Result<i32> {
    let format = flag_value(args, "--format").unwrap_or_else(|| "text".into());
    if format != "text" && format != "json" {
        writeln!(err, "logs: unknown format '{format}' (text|json)")?;
        return Ok(2);
    }
    let max_level = match flag_value(args, "--level") {
        None => None,
        Some(raw) => match raw.parse::<Level>() {
            Ok(level) => Some(level),
            Err(e) => {
                writeln!(err, "logs: {e}")?;
                return Ok(2);
            }
        },
    };
    let target = flag_value(args, "--target");
    let since: Option<u64> = match flag_value(args, "--since").map(|s| s.parse()) {
        None => None,
        Some(Ok(v)) => Some(v),
        Some(Err(_)) => {
            writeln!(err, "logs: --since expects an unsigned integer")?;
            return Ok(2);
        }
    };
    let limit: Option<usize> = match flag_value(args, "--limit").map(|s| s.parse()) {
        None => None,
        Some(Ok(v)) => Some(v),
        Some(Err(_)) => {
            writeln!(err, "logs: --limit expects an unsigned integer")?;
            return Ok(2);
        }
    };
    // Decimal (as rendered in log lines and exemplars) or hex (as carried
    // in the X-Orex-Trace header).
    let trace: Option<u64> = match flag_value(args, "--trace") {
        None => None,
        Some(raw) => {
            let hex = raw.strip_prefix("0x").unwrap_or(&raw);
            match raw.parse().or_else(|_| u64::from_str_radix(hex, 16)) {
                Ok(id) => Some(id),
                Err(_) => {
                    writeln!(err, "logs: --trace expects a decimal or hex trace id")?;
                    return Ok(2);
                }
            }
        }
    };

    // The positional argument, if any, is the input file.
    let mut positional = None;
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
        } else if a.starts_with("--") {
            skip = true;
        } else if positional.replace(a.clone()).is_some() {
            writeln!(err, "logs: more than one input file\n\n{SUBCOMMAND_HELP}")?;
            return Ok(2);
        }
    }
    let text = match positional.as_deref() {
        Some(path) if path != "-" => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                writeln!(err, "logs: reading {path}: {e}")?;
                return Ok(2);
            }
        },
        _ => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
    };

    let mut malformed = 0usize;
    let mut kept: Vec<(&str, serde_json::Value)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                malformed += 1;
                writeln!(err, "logs: line {}: {e}", lineno + 1)?;
                continue;
            }
        };
        if let Some(max) = max_level {
            let admitted = record
                .get("level")
                .and_then(|v| v.as_str())
                .and_then(|s| s.parse::<Level>().ok())
                .is_some_and(|level| level <= max);
            if !admitted {
                continue;
            }
        }
        if let Some(prefix) = &target {
            let matched = record
                .get("target")
                .and_then(|v| v.as_str())
                .is_some_and(|t| target_matches(t, prefix));
            if !matched {
                continue;
            }
        }
        if let Some(since) = since {
            let newer = record
                .get("seq")
                .and_then(|v| v.as_u64())
                .is_some_and(|seq| seq > since);
            if !newer {
                continue;
            }
        }
        if let Some(id) = trace {
            let matched = record
                .get("trace")
                .and_then(|v| v.as_u64())
                .is_some_and(|t| t == id);
            if !matched {
                continue;
            }
        }
        kept.push((line, record));
    }
    if let Some(limit) = limit {
        if kept.len() > limit {
            kept.drain(..kept.len() - limit);
        }
    }

    let mut rendered = String::new();
    for (line, record) in &kept {
        match format.as_str() {
            "json" => {
                rendered.push_str(line);
                rendered.push('\n');
            }
            _ => render_text_line(record, &mut rendered),
        }
    }
    write!(out, "{rendered}")?;
    if malformed > 0 {
        writeln!(err, "logs: skipped {malformed} malformed line(s)")?;
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_telemetry::export::log_json_lines;
    use orex_telemetry::{LogFilter, Logger};

    fn sample_capture() -> String {
        let logger = Logger::new(64);
        logger.set_filter(LogFilter::at(Level::Debug));
        logger
            .info("server.access", "request")
            .field_str("method", "POST")
            .field_str("path", "/query")
            .field_u64("status", 200)
            .emit();
        logger
            .warn("authority.power", "did not converge within iteration cap")
            .field_f64("residual", 0.25)
            .emit();
        logger.debug("explain.adjust", "fixpoint converged").emit();
        log_json_lines(&logger.drain())
    }

    fn run_on(capture: &str, extra: &[&str]) -> (i32, String, String) {
        let dir = std::env::temp_dir().join("orex-cli-logs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!(
            "cap-{}.jsonl",
            extra.join("_").replace(['-', '/'], "")
        ));
        std::fs::write(&path, capture).unwrap();
        let mut args = vec![path.display().to_string()];
        args.extend(extra.iter().map(|s| s.to_string()));
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run_logs(&args, &mut out, &mut err).unwrap();
        let _ = std::fs::remove_file(&path);
        (
            code,
            String::from_utf8(out).unwrap(),
            String::from_utf8(err).unwrap(),
        )
    }

    #[test]
    fn text_rendering_filters_by_level() {
        let capture = sample_capture();
        let (code, out, _) = run_on(&capture, &["--level", "warn"]);
        assert_eq!(code, 0);
        assert_eq!(out.lines().count(), 1, "{out}");
        assert!(
            out.contains("WARN  authority.power did not converge"),
            "{out}"
        );
        assert!(out.contains("residual=0.25"), "{out}");
    }

    #[test]
    fn json_format_reemits_lines_verbatim() {
        let capture = sample_capture();
        let (code, out, _) = run_on(&capture, &["--target", "server", "--format", "json"]);
        assert_eq!(code, 0);
        assert_eq!(out.lines().count(), 1, "{out}");
        assert_eq!(out.trim_end(), capture.lines().next().unwrap());
    }

    #[test]
    fn limit_keeps_newest_and_malformed_lines_are_reported() {
        let capture = format!("{}not json\n", sample_capture());
        let (code, out, err) = run_on(&capture, &["--limit", "1"]);
        assert_eq!(code, 0);
        assert_eq!(out.lines().count(), 1, "{out}");
        assert!(
            out.contains("explain.adjust"),
            "limit keeps the newest: {out}"
        );
        assert!(err.contains("skipped 1 malformed line(s)"), "{err}");
    }

    #[test]
    fn trace_filter_keeps_only_records_stamped_with_that_id() {
        let capture = concat!(
            r#"{"seq":1,"ts_ns":10,"level":"INFO","target":"router.access","message":"request","trace":3735928559}"#,
            "\n",
            r#"{"seq":2,"ts_ns":20,"level":"INFO","target":"server.access","message":"request","trace":3735928559}"#,
            "\n",
            r#"{"seq":3,"ts_ns":30,"level":"INFO","target":"server.access","message":"request","trace":7}"#,
            "\n",
            r#"{"seq":4,"ts_ns":40,"level":"INFO","target":"server.backfill","message":"no trace"}"#,
            "\n",
        );
        // Decimal form: both processes' records for the one trace survive.
        let (code, out, _) = run_on(capture, &["--trace", "3735928559"]);
        assert_eq!(code, 0);
        assert_eq!(out.lines().count(), 2, "{out}");
        assert!(out.contains("router.access"), "{out}");
        assert!(out.contains("server.access"), "{out}");
        assert!(!out.contains("backfill"), "{out}");
        // Hex form (as carried in the X-Orex-Trace header) matches too.
        let (code, out, _) = run_on(capture, &["--trace", "0xdeadbeef"]);
        assert_eq!(code, 0);
        assert_eq!(out.lines().count(), 2, "{out}");
        // A trace nobody logged keeps nothing.
        let (code, out, _) = run_on(capture, &["--trace", "42"]);
        assert_eq!(code, 0);
        assert!(out.is_empty(), "{out}");
    }

    #[test]
    fn bad_flags_exit_2() {
        for bad in [
            vec!["--level", "loud"],
            vec!["--format", "xml"],
            vec!["--since", "minus"],
            vec!["--limit", "-1"],
            vec!["--trace", "not-a-trace"],
        ] {
            let mut args: Vec<String> = vec!["unused.jsonl".into()];
            args.extend(bad.iter().map(|s| s.to_string()));
            let mut out = Vec::new();
            let mut err = Vec::new();
            let code = run_logs(&args, &mut out, &mut err).unwrap();
            assert_eq!(code, 2, "args {bad:?} must be rejected");
        }
    }

    #[test]
    fn target_prefix_matches_dot_hierarchy() {
        assert!(target_matches("server.access", "server"));
        assert!(target_matches("server", "server"));
        assert!(!target_matches("serverless.access", "server"));
        assert!(!target_matches("authority.power", "server"));
    }
}
