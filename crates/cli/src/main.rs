//! The `orex` binary: non-interactive subcommands (`trace`, `stats`)
//! dispatched from argv, falling back to the interactive shell.

use orex_cli::{
    parse, run_logs, run_precompute, run_profile, run_route, run_serve, run_stats, run_top,
    run_trace, App, SUBCOMMAND_HELP,
};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("trace") => {
            let code = run_trace(&args[1..], &mut std::io::stdout(), &mut std::io::stderr())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    1
                });
            std::process::exit(code);
        }
        Some("stats") => {
            let code = run_stats(&args[1..], &mut std::io::stdout(), &mut std::io::stderr())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    1
                });
            std::process::exit(code);
        }
        Some("serve") => {
            let code = run_serve(&args[1..], &mut std::io::stdout(), &mut std::io::stderr())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    1
                });
            std::process::exit(code);
        }
        Some("route") => {
            let code = run_route(&args[1..], &mut std::io::stdout(), &mut std::io::stderr())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    1
                });
            std::process::exit(code);
        }
        Some("precompute") => {
            let code = run_precompute(&args[1..], &mut std::io::stdout(), &mut std::io::stderr())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    1
                });
            std::process::exit(code);
        }
        Some("profile") => {
            let code = run_profile(&args[1..], &mut std::io::stdout(), &mut std::io::stderr())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    1
                });
            std::process::exit(code);
        }
        Some("top") => {
            let code = run_top(&args[1..], &mut std::io::stdout(), &mut std::io::stderr())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    1
                });
            std::process::exit(code);
        }
        Some("logs") => {
            let code = run_logs(&args[1..], &mut std::io::stdout(), &mut std::io::stderr())
                .unwrap_or_else(|e| {
                    eprintln!("{e}");
                    1
                });
            std::process::exit(code);
        }
        Some("analyze") => {
            let code = match orex_analyze::run_cli(
                &args[1..],
                &mut std::io::stdout(),
                &mut std::io::stderr(),
            ) {
                orex_analyze::CliOutcome::Clean => 0,
                orex_analyze::CliOutcome::Violations => 1,
                orex_analyze::CliOutcome::Error => 2,
            };
            std::process::exit(code);
        }
        Some("help" | "--help" | "-h") => {
            println!("{SUBCOMMAND_HELP}");
            return;
        }
        Some(other) => {
            eprintln!("unknown subcommand '{other}'\n\n{SUBCOMMAND_HELP}");
            std::process::exit(2);
        }
        None => {}
    }
    repl();
}

fn repl() {
    let mut app = App::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("orex — explaining & reformulating authority flow queries");
    println!("type 'help' for commands, 'generate dblp-top 0.05' to begin");
    loop {
        print!("orex> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match parse(&line) {
            Ok(Some(cmd)) => match app.execute(cmd, &mut stdout) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => eprintln!("output error: {e}"),
            },
            Ok(None) => {}
            Err(e) => println!("{e}"),
        }
    }
}
