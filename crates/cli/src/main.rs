//! The `orex` interactive shell binary.

use orex_cli::{parse, App};
use std::io::{BufRead, Write};

fn main() {
    let mut app = App::new();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("orex — explaining & reformulating authority flow queries");
    println!("type 'help' for commands, 'generate dblp-top 0.05' to begin");
    loop {
        print!("orex> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match parse(&line) {
            Ok(Some(cmd)) => match app.execute(cmd, &mut stdout) {
                Ok(true) => break,
                Ok(false) => {}
                Err(e) => eprintln!("output error: {e}"),
            },
            Ok(None) => {}
            Err(e) => println!("{e}"),
        }
    }
}
