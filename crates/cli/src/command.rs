//! Command language of the orex CLI.
//!
//! A small line-oriented language mirroring the interaction loop of the
//! paper's web demo: load or generate a dataset, run keyword queries,
//! inspect and explain results, give relevance feedback, watch the
//! authority transfer rates train.

use std::fmt;

/// A parsed CLI command.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `generate <preset> [scale]` — build a synthetic dataset.
    Generate {
        /// Preset name (dblp-top, dblp-complete, ds7, ds7-cancer).
        preset: String,
        /// Scale factor (default 0.05).
        scale: f64,
    },
    /// `load <path>` — load a graph snapshot.
    Load {
        /// Snapshot path.
        path: String,
    },
    /// `save <path>` — save the current graph snapshot.
    Save {
        /// Snapshot path.
        path: String,
    },
    /// `import <path>` — load a `.orexg` text-format dataset.
    Import {
        /// Text-format path.
        path: String,
    },
    /// `export <path>` — write the current graph in text format.
    Export {
        /// Text-format path.
        path: String,
    },
    /// `query <keywords...>` — execute a keyword query.
    Query {
        /// The keywords.
        keywords: Vec<String>,
    },
    /// `top [k]` — show the current top-k results.
    Top {
        /// How many results (default 10).
        k: usize,
    },
    /// `explain <rank> [paths]` — explain the rank-th result (1-based).
    Explain {
        /// 1-based rank in the current result list.
        rank: usize,
        /// Number of flow paths to show.
        paths: usize,
    },
    /// `dot <rank>` — print the explaining subgraph in DOT format.
    Dot {
        /// 1-based rank in the current result list.
        rank: usize,
    },
    /// `feedback <ranks...>` — mark results relevant and reformulate.
    Feedback {
        /// 1-based ranks of the relevant results.
        ranks: Vec<usize>,
    },
    /// `set <param> <value>` — set cf / ce / cd / k.
    Set {
        /// Parameter name.
        param: String,
        /// New value.
        value: f64,
    },
    /// `rates` — print the current authority transfer rates.
    Rates,
    /// `save-rates <path>` / `load-rates <path>`.
    SaveRates {
        /// Snapshot path.
        path: String,
    },
    /// Loads a rates snapshot.
    LoadRates {
        /// Snapshot path.
        path: String,
    },
    /// `info` — dataset statistics.
    Info,
    /// `stats` — dump the runtime telemetry snapshot as JSON.
    Stats,
    /// `help`.
    Help,
    /// `quit` / `exit`.
    Quit,
}

/// Parse errors with user-facing messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Parses one input line. Empty lines and `#` comments yield `None`.
pub fn parse(line: &str) -> Result<Option<Command>, ParseError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let verb = parts.next().expect("non-empty line").to_lowercase();
    let rest: Vec<&str> = parts.collect();
    let cmd = match verb.as_str() {
        "generate" | "gen" => {
            let preset = rest
                .first()
                .ok_or_else(|| err("usage: generate <preset> [scale]"))?
                .to_string();
            let scale = match rest.get(1) {
                Some(s) => s
                    .parse::<f64>()
                    .map_err(|_| err(format!("bad scale '{s}'")))?,
                None => 0.05,
            };
            if scale <= 0.0 {
                return Err(err("scale must be positive"));
            }
            Command::Generate { preset, scale }
        }
        "load" => Command::Load {
            path: one_path(&rest, "load")?,
        },
        "save" => Command::Save {
            path: one_path(&rest, "save")?,
        },
        "import" => Command::Import {
            path: one_path(&rest, "import")?,
        },
        "export" => Command::Export {
            path: one_path(&rest, "export")?,
        },
        "load-rates" => Command::LoadRates {
            path: one_path(&rest, "load-rates")?,
        },
        "save-rates" => Command::SaveRates {
            path: one_path(&rest, "save-rates")?,
        },
        "query" | "q" => {
            if rest.is_empty() {
                return Err(err("usage: query <keywords...>"));
            }
            Command::Query {
                keywords: rest.iter().map(|s| s.to_string()).collect(),
            }
        }
        "top" => Command::Top {
            k: match rest.first() {
                Some(s) => s.parse().map_err(|_| err(format!("bad k '{s}'")))?,
                None => 10,
            },
        },
        "explain" | "why" => {
            let rank = rest
                .first()
                .ok_or_else(|| err("usage: explain <rank> [paths]"))?
                .parse::<usize>()
                .map_err(|_| err("rank must be a positive integer"))?;
            let paths = match rest.get(1) {
                Some(s) => s
                    .parse()
                    .map_err(|_| err(format!("bad path count '{s}'")))?,
                None => 3,
            };
            if rank == 0 {
                return Err(err("ranks are 1-based"));
            }
            Command::Explain { rank, paths }
        }
        "dot" => {
            let rank = rest
                .first()
                .ok_or_else(|| err("usage: dot <rank>"))?
                .parse::<usize>()
                .map_err(|_| err("rank must be a positive integer"))?;
            if rank == 0 {
                return Err(err("ranks are 1-based"));
            }
            Command::Dot { rank }
        }
        "feedback" | "fb" => {
            if rest.is_empty() {
                return Err(err("usage: feedback <ranks...>"));
            }
            let mut ranks = Vec::with_capacity(rest.len());
            for s in &rest {
                let r: usize = s.parse().map_err(|_| err(format!("bad rank '{s}'")))?;
                if r == 0 {
                    return Err(err("ranks are 1-based"));
                }
                ranks.push(r);
            }
            Command::Feedback { ranks }
        }
        "set" => {
            let param = rest
                .first()
                .ok_or_else(|| err("usage: set <cf|ce|cd|k> <value>"))?
                .to_lowercase();
            if !["cf", "ce", "cd", "k"].contains(&param.as_str()) {
                return Err(err(format!("unknown parameter '{param}'")));
            }
            let value = rest
                .get(1)
                .ok_or_else(|| err("usage: set <param> <value>"))?
                .parse::<f64>()
                .map_err(|_| err("value must be numeric"))?;
            Command::Set { param, value }
        }
        "rates" => Command::Rates,
        "info" => Command::Info,
        "stats" => Command::Stats,
        "help" | "?" => Command::Help,
        "quit" | "exit" => Command::Quit,
        other => return Err(err(format!("unknown command '{other}' (try 'help')"))),
    };
    Ok(Some(cmd))
}

fn one_path(rest: &[&str], verb: &str) -> Result<String, ParseError> {
    rest.first()
        .map(|s| s.to_string())
        .ok_or_else(|| err(format!("usage: {verb} <path>")))
}

/// The help text.
pub const HELP: &str = "\
commands:
  generate <preset> [scale]   build a synthetic dataset
                              (dblp-top, dblp-complete, ds7, ds7-cancer)
  load/save <path>            graph snapshots (binary)
  import/export <path>        text-format datasets (.orexg)
  load-rates/save-rates <path> trained rates snapshots
  query <keywords...>         run an ObjectRank2 keyword query
  top [k]                     show the top-k results
  explain <rank> [paths]      why did result #rank score high?
  dot <rank>                  explaining subgraph in Graphviz DOT
  feedback <ranks...>         mark results relevant; reformulate & re-rank
  set <cf|ce|cd|k> <value>    tune reformulation parameters
  rates                       show the authority transfer rates
  info                        dataset statistics
  stats                       runtime telemetry snapshot (JSON)
  quit";

#[cfg(test)]
mod tests {
    use super::*;

    fn p(line: &str) -> Command {
        parse(line).unwrap().unwrap()
    }

    #[test]
    fn parses_core_commands() {
        assert_eq!(
            p("generate dblp-top 0.1"),
            Command::Generate {
                preset: "dblp-top".into(),
                scale: 0.1
            }
        );
        assert_eq!(
            p("query olap data cubes"),
            Command::Query {
                keywords: vec!["olap".into(), "data".into(), "cubes".into()]
            }
        );
        assert_eq!(p("top 5"), Command::Top { k: 5 });
        assert_eq!(p("top"), Command::Top { k: 10 });
        assert_eq!(p("explain 3"), Command::Explain { rank: 3, paths: 3 });
        assert_eq!(
            p("feedback 1 2 4"),
            Command::Feedback {
                ranks: vec![1, 2, 4]
            }
        );
        assert_eq!(
            p("set cf 0.7"),
            Command::Set {
                param: "cf".into(),
                value: 0.7
            }
        );
        assert_eq!(p("quit"), Command::Quit);
    }

    #[test]
    fn aliases_work() {
        assert!(matches!(p("q olap"), Command::Query { .. }));
        assert!(matches!(p("why 1"), Command::Explain { .. }));
        assert!(matches!(p("fb 1"), Command::Feedback { .. }));
        assert!(matches!(p("?"), Command::Help));
    }

    #[test]
    fn blank_and_comment_lines_skipped() {
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("   ").unwrap(), None);
        assert_eq!(parse("# a comment").unwrap(), None);
    }

    #[test]
    fn errors_are_user_facing() {
        assert!(parse("explain").is_err());
        assert!(parse("explain zero").is_err());
        assert!(parse("explain 0").is_err());
        assert!(parse("feedback 1 x").is_err());
        assert!(parse("set bogus 1").is_err());
        assert!(parse("generate dblp-top -1").is_err());
        assert!(parse("frobnicate").is_err());
        let msg = parse("frobnicate").unwrap_err().to_string();
        assert!(msg.contains("frobnicate"));
    }

    #[test]
    fn case_insensitive_verbs() {
        assert!(matches!(p("QUERY olap"), Command::Query { .. }));
        assert!(matches!(p("Top"), Command::Top { .. }));
    }
}
