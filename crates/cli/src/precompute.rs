//! The `orex precompute` subcommand: build the precomputed rank-vector
//! artifact that `orex serve --precompute` combines at query time.
//!
//! Section 6.2 of the paper answers scalability by precomputing
//! single-keyword ObjectRank2 vectors (following BHP04) and serving
//! multi-keyword queries as linear combinations. This command selects
//! the top-N vocabulary terms by document frequency, runs them through
//! the batched power-iteration kernel (one shared matrix sweep advances
//! every term's vector), and persists the result with a manifest —
//! dataset hash, damping, epsilon and term list — that the server
//! validates at load:
//!
//! ```text
//! orex precompute --preset dblp-top --scale 0.05 --top 64 --out ranks.bin
//! orex serve --preset dblp-top --scale 0.05 --precompute ranks.bin
//! ```
//!
//! `--check K` verifies the artifact end-to-end: K multi-keyword queries
//! over stored terms are answered both by combination and by live
//! iteration, and the command reports the worst L1 divergence plus the
//! latency split.

use orex_authority::{object_rank2, RankParams, TransitionMatrix};
use orex_core::{ObjectRankSystem, SystemConfig};
use orex_datagen::Preset;
use orex_ir::QueryVector;
use orex_store::{encode_graph, fnv1a, PrecomputedRanks};
use std::io::Write;
use std::time::Instant;

use crate::subcommands::SUBCOMMAND_HELP;

fn flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("precompute: {flag} expects a value"));
    };
    raw.parse()
        .map(Some)
        .map_err(|_| format!("precompute: {flag} got invalid value '{raw}'"))
}

/// Vocabulary terms by descending document frequency (ties broken by
/// text for determinism), the precompute selection order.
fn top_terms(system: &ObjectRankSystem, n: usize) -> Vec<String> {
    let index = system.index();
    let mut by_df: Vec<(u32, String)> = (0..index.vocabulary_size() as u32)
        .map(|t| (index.df(t), index.term_text(t).to_string()))
        .collect();
    by_df.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    by_df.into_iter().take(n).map(|(_, t)| t).collect()
}

/// `orex precompute [--preset NAME] [--scale F] [--top N] [--out FILE]
/// [--manifest FILE] [--check K] [--stats FILE]` — build and persist the
/// precomputed rank-vector artifact. Returns the process exit code.
pub fn run_precompute(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<i32> {
    let parsed: Result<_, String> = (|| {
        let preset_name = flag::<String>(args, "--preset")?.unwrap_or_else(|| "dblp-top".into());
        let scale = flag::<f64>(args, "--scale")?.unwrap_or(0.05);
        let top = flag::<usize>(args, "--top")?.unwrap_or(64).max(1);
        let out_path = flag::<String>(args, "--out")?.unwrap_or_else(|| "precompute.bin".into());
        let manifest_path = flag::<String>(args, "--manifest")?
            .unwrap_or_else(|| format!("{out_path}.manifest.json"));
        let check = flag::<usize>(args, "--check")?.unwrap_or(0);
        let stats_path = flag::<String>(args, "--stats")?;
        Ok((
            preset_name,
            scale,
            top,
            out_path,
            manifest_path,
            check,
            stats_path,
        ))
    })();
    let (preset_name, scale, top, out_path, manifest_path, check, stats_path) = match parsed {
        Ok(v) => v,
        Err(msg) => {
            writeln!(err, "{msg}\n\n{SUBCOMMAND_HELP}")?;
            return Ok(2);
        }
    };
    let Some(preset) = Preset::parse(&preset_name) else {
        writeln!(
            err,
            "precompute: unknown preset '{preset_name}' (dblp-top, dblp-complete, ds7, ds7-cancer)"
        )?;
        return Ok(2);
    };
    if !(scale.is_finite() && scale > 0.0) {
        writeln!(err, "precompute: --scale must be positive")?;
        return Ok(2);
    }

    let dataset = preset.generate(scale);
    let (nodes, edges) = dataset.sizes();
    writeln!(
        err,
        "[precompute] {} at scale {scale}: {nodes} nodes, {edges} edges",
        preset.name()
    )?;
    let system =
        ObjectRankSystem::new(dataset.graph, dataset.ground_truth, SystemConfig::default());
    let params: RankParams = system.config().rank;
    let terms = top_terms(&system, top);
    let dataset_hash = fnv1a(&encode_graph(system.graph()));
    let matrix = TransitionMatrix::new(system.transfer(), system.initial_rates());

    let build_start = Instant::now();
    let store = PrecomputedRanks::build(
        &matrix,
        system.index(),
        &system.config().okapi,
        &terms,
        &params,
        dataset_hash,
    );
    let build_secs = build_start.elapsed().as_secs_f64();
    if store.is_empty() {
        writeln!(
            err,
            "precompute: no requested term has a non-empty base set"
        )?;
        return Ok(1);
    }
    if let Err(e) = store.save(&out_path) {
        writeln!(err, "precompute: writing {out_path}: {e}")?;
        return Ok(1);
    }
    let bytes = std::fs::metadata(&out_path).map(|m| m.len()).unwrap_or(0);
    let terms_per_sec = store.len() as f64 / build_secs.max(1e-9);

    // The manifest doubles as the CI artifact's provenance record.
    let snapshot = orex_telemetry::global().snapshot();
    let sweeps = snapshot
        .counters
        .get("authority.power.batch_sweeps")
        .copied()
        .unwrap_or(0);
    let manifest = serde_json::json!({
        "preset": preset.name(),
        "scale": scale,
        "dataset_hash": format!("{dataset_hash:#018x}"),
        "node_count": store.node_count(),
        "damping": store.damping(),
        "epsilon": store.epsilon(),
        "requested_terms": terms.len(),
        "built_terms": store.len(),
        "terms": store.terms(),
        "build_seconds": build_secs,
        "terms_per_second": terms_per_sec,
        "batch_sweeps": sweeps,
        "artifact_bytes": bytes,
    });
    if let Err(e) = std::fs::write(
        &manifest_path,
        serde_json::to_string_pretty(&manifest).unwrap_or_default(),
    ) {
        writeln!(err, "precompute: writing {manifest_path}: {e}")?;
        return Ok(1);
    }
    writeln!(
        out,
        "built {}/{} term vectors in {:.2}s ({:.1} terms/s, {} shared sweeps)",
        store.len(),
        terms.len(),
        build_secs,
        terms_per_sec,
        sweeps
    )?;
    writeln!(out, "artifact: {out_path} ({bytes} bytes)")?;
    writeln!(out, "manifest: {manifest_path}")?;

    // A full telemetry snapshot (counters + histograms from the batched
    // kernel) in the layout `orex stats --snapshot/--diff` consumes, for
    // the CI perf gate.
    if let Some(path) = stats_path {
        if let Err(e) = std::fs::write(&path, orex_telemetry::global().snapshot().to_json_pretty())
        {
            writeln!(err, "precompute: writing {path}: {e}")?;
            return Ok(1);
        }
        writeln!(out, "stats: {path}")?;
    }

    if check > 0 {
        let code = self_check(&system, &matrix, &store, &params, check, out, err)?;
        if code != 0 {
            return Ok(code);
        }
    }
    Ok(0)
}

/// Answers `check` two-keyword queries over stored terms both ways and
/// compares scores and latency. Exit code 1 when any combination
/// diverges beyond the convergence epsilon (plus f32 rounding).
fn self_check(
    system: &ObjectRankSystem,
    matrix: &TransitionMatrix<'_>,
    store: &PrecomputedRanks,
    params: &RankParams,
    check: usize,
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<i32> {
    let stored: Vec<String> = store.terms().iter().map(|t| t.to_string()).collect();
    if stored.len() < 2 {
        writeln!(err, "precompute: --check needs at least two stored terms")?;
        return Ok(1);
    }
    let scorer = &system.config().okapi;
    let mut worst = 0.0f64;
    let mut combine_us = Vec::new();
    let mut live_us = Vec::new();
    let pairs = check.min(stored.len() - 1);
    for i in 0..pairs {
        let qv =
            QueryVector::from_weights([(stored[i].clone(), 1.0), (stored[i + 1].clone(), 1.0)]);
        let t0 = Instant::now();
        let Some(combined) = store.combine(&qv, scorer) else {
            writeln!(err, "precompute: check query {i} failed to combine")?;
            return Ok(1);
        };
        combine_us.push(t0.elapsed().as_secs_f64() * 1e6);
        let t1 = Instant::now();
        let live = match object_rank2(matrix, system.index(), &qv, scorer, params, None) {
            Ok(r) => r,
            Err(e) => {
                writeln!(err, "precompute: check query {i} failed live: {e:?}")?;
                return Ok(1);
            }
        };
        live_us.push(t1.elapsed().as_secs_f64() * 1e6);
        let diff: f64 = combined
            .iter()
            .zip(&live.scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        worst = worst.max(diff);
    }
    combine_us.sort_by(f64::total_cmp);
    live_us.sort_by(f64::total_cmp);
    let med_combine = combine_us[combine_us.len() / 2];
    let med_live = live_us[live_us.len() / 2];
    writeln!(
        out,
        "check: {pairs} combined queries, worst L1 divergence {worst:.2e} \
         (epsilon {:.1e}); median combine {med_combine:.0}us vs live {med_live:.0}us \
         ({:.1}x)",
        store.epsilon(),
        med_live / med_combine.max(1e-9),
    )?;
    let tolerance = store.epsilon() * 10.0 + 1e-4;
    if worst > tolerance {
        writeln!(
            err,
            "precompute: combination diverges from live iteration ({worst:.3e} > {tolerance:.3e})"
        )?;
        return Ok(1);
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bad_flag_values_exit_2() {
        for bad in [
            vec!["--top", "many"],
            vec!["--scale", "-1"],
            vec!["--preset", "nope"],
            vec!["--check"],
        ] {
            let mut out = Vec::new();
            let mut err = Vec::new();
            let code = run_precompute(&argv(&bad), &mut out, &mut err).unwrap();
            assert_eq!(code, 2, "args {bad:?} must be rejected");
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn builds_artifact_manifest_and_passes_self_check() {
        let dir = std::env::temp_dir();
        let artifact = dir.join(format!("orex-cli-precompute-{}.bin", std::process::id()));
        let manifest = dir.join(format!("orex-cli-precompute-{}.json", std::process::id()));
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run_precompute(
            &argv(&[
                "--scale",
                "0.02",
                "--top",
                "8",
                "--out",
                artifact.to_str().unwrap(),
                "--manifest",
                manifest.to_str().unwrap(),
                "--check",
                "3",
            ]),
            &mut out,
            &mut err,
        )
        .unwrap();
        let stdout = String::from_utf8(out).unwrap();
        let stderr = String::from_utf8(err).unwrap();
        assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
        assert!(stdout.contains("terms/s"), "{stdout}");
        assert!(stdout.contains("worst L1 divergence"), "{stdout}");

        // The artifact reloads and matches the manifest.
        let store = PrecomputedRanks::load(&artifact).expect("reload artifact");
        let manifest_json: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&manifest).unwrap()).unwrap();
        let field = |k: &str| manifest_json.get(k).cloned().unwrap();
        assert_eq!(field("built_terms").as_u64().unwrap(), store.len() as u64);
        assert_eq!(
            field("node_count").as_u64().unwrap(),
            store.node_count() as u64
        );
        assert_eq!(
            field("dataset_hash").as_str().unwrap(),
            format!("{:#018x}", store.dataset_hash())
        );
        let _ = std::fs::remove_file(&artifact);
        let _ = std::fs::remove_file(&manifest);
    }
}
