//! # orex-cli — interactive ObjectRank2 front end
//!
//! A line-oriented interactive shell over the `orex` system: generate or
//! load datasets, run keyword queries, explain any result (Section 4 of
//! the paper), give relevance feedback and watch the reformulated query
//! and trained authority transfer rates evolve (Section 5). The local
//! equivalent of the demo the paper deployed at
//! `http://dbir.cis.fiu.edu/ObjectRankReformulation/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod app;
mod command;
mod diag;
mod logs;
mod precompute;
mod route;
mod serve;
mod subcommands;

pub use app::App;
pub use command::{parse, Command, ParseError, HELP};
pub use diag::{run_profile, run_top};
pub use logs::run_logs;
pub use precompute::run_precompute;
pub use route::run_route;
pub use serve::run_serve;
pub use subcommands::{load_snapshot, run_stats, run_trace, SUBCOMMAND_HELP};
