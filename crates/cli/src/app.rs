//! The CLI application state machine: executes parsed commands against a
//! loaded [`ObjectRankSystem`] and a live [`QuerySession`].
//!
//! The system is intentionally leaked (`Box::leak`) when a dataset is
//! loaded or generated: a CLI process holds exactly one (or a handful of)
//! systems for its whole lifetime, and the `'static` borrow lets the
//! session live alongside it without self-referential gymnastics. The few
//! megabytes "lost" on a dataset switch are reclaimed at process exit.

use crate::command::{Command, HELP};
use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
use orex_datagen::Preset;
use orex_explain::{to_dot, to_text};
use orex_graph::{Direction, TransferTypeId};
use orex_ir::Query;
use orex_reformulate::{ContentParams, ReformulateParams};
use std::io::Write;

/// The interactive application.
pub struct App {
    system: Option<&'static ObjectRankSystem>,
    session: Option<QuerySession<'static>>,
    reformulate: ReformulateParams,
    top_k: usize,
}

impl Default for App {
    fn default() -> Self {
        Self::new()
    }
}

impl App {
    /// Fresh application with no dataset loaded.
    pub fn new() -> Self {
        Self {
            system: None,
            session: None,
            reformulate: ReformulateParams::structure_only(0.5),
            top_k: 10,
        }
    }

    /// True once `quit` has been executed.
    pub fn execute(&mut self, cmd: Command, out: &mut dyn Write) -> std::io::Result<bool> {
        match cmd {
            Command::Quit => return Ok(true),
            Command::Help => writeln!(out, "{HELP}")?,
            Command::Generate { preset, scale } => match Preset::parse(&preset) {
                Some(p) => {
                    let t = std::time::Instant::now();
                    let dataset = p.generate(scale);
                    let (nodes, edges) = dataset.sizes();
                    let system = Box::leak(Box::new(ObjectRankSystem::new(
                        dataset.graph,
                        dataset.ground_truth,
                        SystemConfig::default(),
                    )));
                    self.session = None;
                    self.system = Some(system);
                    writeln!(
                        out,
                        "generated {} at scale {scale}: {nodes} nodes, {edges} edges ({:.1?})",
                        p.name(),
                        t.elapsed()
                    )?;
                }
                None => writeln!(
                    out,
                    "unknown preset '{preset}' (dblp-top, dblp-complete, ds7, ds7-cancer)"
                )?,
            },
            Command::Load { path } => match orex_store::load_graph(&path) {
                Ok(graph) => {
                    let rates = orex_graph::TransferRates::normalized_uniform(graph.schema(), 0.3);
                    let system = Box::leak(Box::new(ObjectRankSystem::new(
                        graph,
                        rates,
                        SystemConfig::default(),
                    )));
                    self.session = None;
                    self.system = Some(system);
                    writeln!(
                        out,
                        "loaded {} nodes, {} edges (rates initialized to rescaled 0.3 — \
                         load-rates to restore trained ones)",
                        system.graph().node_count(),
                        system.graph().edge_count()
                    )?;
                }
                Err(e) => writeln!(out, "load failed: {e}")?,
            },
            Command::Save { path } => match self.system {
                Some(system) => match orex_store::save_graph(system.graph(), &path) {
                    Ok(()) => writeln!(out, "saved graph to {path}")?,
                    Err(e) => writeln!(out, "save failed: {e}")?,
                },
                None => writeln!(out, "no dataset loaded")?,
            },
            Command::Import { path } => match orex_store::load_text_graph(&path) {
                Ok(graph) => {
                    if graph.node_count() == 0 {
                        writeln!(out, "import produced an empty graph")?;
                        return Ok(false);
                    }
                    let rates = orex_graph::TransferRates::normalized_uniform(graph.schema(), 0.3);
                    let system = Box::leak(Box::new(ObjectRankSystem::new(
                        graph,
                        rates,
                        SystemConfig::default(),
                    )));
                    self.session = None;
                    self.system = Some(system);
                    writeln!(
                        out,
                        "imported {} nodes, {} edges (uniform rates; train them \
                         with feedback or load-rates)",
                        system.graph().node_count(),
                        system.graph().edge_count()
                    )?;
                }
                Err(e) => writeln!(out, "import failed: {e}")?,
            },
            Command::Export { path } => match self.system {
                Some(system) => match orex_store::save_text_graph(system.graph(), &path) {
                    Ok(()) => writeln!(out, "exported text format to {path}")?,
                    Err(e) => writeln!(out, "export failed: {e}")?,
                },
                None => writeln!(out, "no dataset loaded")?,
            },
            Command::SaveRates { path } => match &self.session {
                Some(session) => match orex_store::save_rates(session.rates(), &path) {
                    Ok(()) => writeln!(out, "saved rates to {path}")?,
                    Err(e) => writeln!(out, "save failed: {e}")?,
                },
                None => writeln!(out, "no active query session")?,
            },
            Command::LoadRates { path } => {
                let Some(system) = self.system else {
                    writeln!(out, "no dataset loaded")?;
                    return Ok(false);
                };
                match orex_store::load_rates(&path, system.graph().schema()) {
                    Ok(rates) => match &self.session {
                        Some(session) => {
                            let query = Query::new(
                                session
                                    .query_vector()
                                    .iter()
                                    .map(|(t, _)| t.to_string())
                                    .collect::<Vec<_>>(),
                            );
                            match QuerySession::start_with(system, &query, rates) {
                                Ok(s) => {
                                    self.session = Some(s);
                                    writeln!(out, "rates loaded; query re-executed")?;
                                }
                                Err(e) => writeln!(out, "re-execution failed: {e}")?,
                            }
                        }
                        None => writeln!(
                            out,
                            "rates loaded but no active session; run a query to use them"
                        )?,
                    },
                    Err(e) => writeln!(out, "load failed: {e}")?,
                }
            }
            Command::Query { keywords } => {
                let Some(system) = self.system else {
                    writeln!(out, "no dataset loaded (try 'generate dblp-top')")?;
                    return Ok(false);
                };
                let query = Query::new(keywords);
                match QuerySession::start(system, &query) {
                    Ok(session) => {
                        let stats = session.history()[0];
                        writeln!(
                            out,
                            "query {query}: converged in {} iterations ({:.1?})",
                            stats.rank_iterations, stats.rank_time
                        )?;
                        self.session = Some(session);
                        self.print_top(out)?;
                    }
                    Err(e) => writeln!(out, "query failed: {e}")?,
                }
            }
            Command::Top { k } => {
                self.top_k = k;
                if self.session.is_some() {
                    self.print_top(out)?;
                } else {
                    writeln!(out, "no active query")?;
                }
            }
            Command::Explain { rank, paths } => {
                let Some((session, system)) = self.session.as_ref().zip(self.system) else {
                    writeln!(out, "no active query")?;
                    return Ok(false);
                };
                match Self::node_at_rank(session, rank) {
                    Some(node) => match session.explain(node) {
                        Ok(expl) => writeln!(out, "{}", to_text(&expl, system.graph(), paths))?,
                        Err(e) => writeln!(out, "explain failed: {e}")?,
                    },
                    None => writeln!(out, "no result at rank {rank}")?,
                }
            }
            Command::Dot { rank } => {
                let Some((session, system)) = self.session.as_ref().zip(self.system) else {
                    writeln!(out, "no active query")?;
                    return Ok(false);
                };
                match Self::node_at_rank(session, rank) {
                    Some(node) => match session.explain(node) {
                        Ok(expl) => writeln!(out, "{}", to_dot(&expl, system.graph()))?,
                        Err(e) => writeln!(out, "explain failed: {e}")?,
                    },
                    None => writeln!(out, "no result at rank {rank}")?,
                }
            }
            Command::Feedback { ranks } => {
                let params = self.reformulate;
                let top_k = self.top_k;
                let Some(session) = self.session.as_mut() else {
                    writeln!(out, "no active query")?;
                    return Ok(false);
                };
                let top = session.top_k(top_k.max(*ranks.iter().max().unwrap_or(&1)));
                let nodes: Vec<_> = ranks
                    .iter()
                    .filter_map(|&r| top.get(r - 1).map(|o| o.node))
                    .collect();
                if nodes.is_empty() {
                    writeln!(out, "no valid ranks")?;
                    return Ok(false);
                }
                match session.feedback_with(&nodes, &params) {
                    Ok(stats) => {
                        writeln!(
                            out,
                            "reformulated (round {}): re-ranked in {} iterations; \
                             query is now {}",
                            session.round(),
                            stats.rank_iterations,
                            session.query_vector()
                        )?;
                        self.print_top(out)?;
                    }
                    Err(e) => writeln!(out, "feedback failed: {e}")?,
                }
            }
            Command::Set { param, value } => {
                match param.as_str() {
                    "cf" => self.reformulate.structure.rate_factor = value,
                    "ce" => {
                        self.reformulate.content = ContentParams {
                            expansion_factor: value,
                            ..self.reformulate.content
                        }
                    }
                    "cd" => {
                        self.reformulate.content = ContentParams {
                            decay: value,
                            ..self.reformulate.content
                        }
                    }
                    "k" => self.top_k = value as usize,
                    _ => unreachable!("parser validates parameter names"),
                }
                writeln!(out, "{param} = {value}")?;
            }
            Command::Rates => match &self.session {
                Some(session) => {
                    let Some(system) = self.system else {
                        return Ok(false);
                    };
                    let schema = system.graph().schema();
                    writeln!(out, "authority transfer rates:")?;
                    for et in schema.edge_types() {
                        let sig = schema.edge_type(et);
                        let fwd = session.rates().get(TransferTypeId::forward(et));
                        let bwd = session.rates().get(TransferTypeId::backward(et));
                        writeln!(
                            out,
                            "  {} -{}-> {}: forward {:.3}, backward {:.3}",
                            schema.node_label(sig.source),
                            sig.label,
                            schema.node_label(sig.target),
                            fwd,
                            bwd
                        )?;
                    }
                    let _ = Direction::Forward; // keep import honest
                }
                None => writeln!(out, "no active session")?,
            },
            Command::Info => match self.system {
                Some(system) => {
                    writeln!(
                        out,
                        "{} nodes, {} edges, {} node types, {} edge types, {} terms",
                        system.graph().node_count(),
                        system.graph().edge_count(),
                        system.graph().schema().node_type_count(),
                        system.graph().schema().edge_type_count(),
                        system.index().vocabulary_size()
                    )?;
                }
                None => writeln!(out, "no dataset loaded")?,
            },
            Command::Stats => {
                writeln!(
                    out,
                    "{}",
                    orex_telemetry::global().snapshot().to_json_pretty()
                )?;
            }
        }
        Ok(false)
    }

    fn node_at_rank(session: &QuerySession<'static>, rank: usize) -> Option<orex_graph::NodeId> {
        session.top_k(rank).get(rank - 1).map(|r| r.node)
    }

    fn print_top(&self, out: &mut dyn Write) -> std::io::Result<()> {
        let (Some(session), Some(system)) = (&self.session, self.system) else {
            return Ok(());
        };
        for (i, r) in session.top_k(self.top_k).iter().enumerate() {
            let display: String = r.display.chars().take(60).collect();
            writeln!(
                out,
                "{:>3}. [{:.5}] {:<14} {}",
                i + 1,
                r.score,
                r.label,
                display
            )?;
        }
        let _ = system;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::parse;

    fn run(app: &mut App, line: &str) -> String {
        let mut out = Vec::new();
        let cmd = parse(line).unwrap().unwrap();
        app.execute(cmd, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn full_interactive_flow() {
        let mut app = App::new();
        let o = run(&mut app, "generate dblp-top 0.01");
        assert!(o.contains("generated DBLPtop"), "{o}");
        let o = run(&mut app, "info");
        assert!(o.contains("node types"), "{o}");
        let o = run(&mut app, "query data");
        assert!(o.contains("converged"), "{o}");
        assert!(o.contains("1."), "{o}");
        let o = run(&mut app, "top 3");
        assert!(o.lines().count() >= 3, "{o}");
        let o = run(&mut app, "explain 1");
        assert!(o.contains("Why") || o.contains("explain failed"), "{o}");
        let o = run(&mut app, "feedback 1 2");
        assert!(o.contains("reformulated"), "{o}");
        let o = run(&mut app, "rates");
        assert!(o.contains("forward"), "{o}");
    }

    #[test]
    fn commands_without_dataset_are_graceful() {
        let mut app = App::new();
        assert!(run(&mut app, "query olap").contains("no dataset"));
        assert!(run(&mut app, "top").contains("no active"));
        assert!(run(&mut app, "explain 1").contains("no active"));
        assert!(run(&mut app, "feedback 1").contains("no active"));
        assert!(run(&mut app, "info").contains("no dataset"));
        assert!(run(&mut app, "save /tmp/x.orex").contains("no dataset"));
    }

    #[test]
    fn stats_dumps_telemetry_json() {
        let mut app = App::new();
        // Works with no dataset loaded, and after a query it reflects the
        // engines' recorded metrics.
        let o = run(&mut app, "stats");
        assert!(o.contains("\"counters\""), "{o}");
        run(&mut app, "generate dblp-top 0.01");
        run(&mut app, "query data");
        let o = run(&mut app, "stats");
        assert!(o.contains("authority.power.iterations"), "{o}");
        assert!(o.contains("session.rank_us"), "{o}");
    }

    #[test]
    fn quit_returns_true() {
        let mut app = App::new();
        let mut out = Vec::new();
        assert!(app.execute(Command::Quit, &mut out).unwrap());
    }

    #[test]
    fn set_adjusts_parameters() {
        let mut app = App::new();
        assert!(run(&mut app, "set cf 0.9").contains("cf = 0.9"));
        assert!(run(&mut app, "set ce 0.2").contains("ce = 0.2"));
        assert!(run(&mut app, "set k 5").contains("k = 5"));
    }

    #[test]
    fn unknown_query_reports_failure() {
        let mut app = App::new();
        run(&mut app, "generate dblp-top 0.01");
        let o = run(&mut app, "query zzzzqqqq");
        assert!(o.contains("query failed"), "{o}");
    }

    #[test]
    fn snapshot_roundtrip_through_cli() {
        let dir = std::env::temp_dir().join("orex-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("g.orex");
        let mut app = App::new();
        run(&mut app, "generate dblp-top 0.01");
        let o = run(&mut app, &format!("save {}", gpath.display()));
        assert!(o.contains("saved"), "{o}");
        let mut app2 = App::new();
        let o = run(&mut app2, &format!("load {}", gpath.display()));
        assert!(o.contains("loaded"), "{o}");
        let o = run(&mut app2, "query data");
        assert!(o.contains("converged"), "{o}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
