//! The `orex route` subcommand: spawn and front a shared-nothing
//! worker fleet.
//!
//! One command brings up N `orex serve` worker processes on
//! consecutive ports plus a router that consistent-hashes queries
//! across them, supervises crashes, and aggregates `/metrics`, `/logs`,
//! and `/debug/status` fleet-wide:
//!
//! ```text
//! orex route --addr 127.0.0.1:7470 --workers 3 --base-port 7480 \
//!     --dataset dblp=dblp-top:0.05 --dataset bio=ds7-cancer:0.02
//! ```
//!
//! Dataset and tuning flags after the router's own are forwarded to
//! every worker. SIGTERM/ctrl-c drain the router's open connections,
//! then cascade to the workers so each drains its in-flight requests.

use orex_router::{Fleet, Router, RouterConfig, WorkerSource};
use orex_server::install_signal_handlers;
use std::io::Write;
use std::time::Duration;

use crate::subcommands::SUBCOMMAND_HELP;

fn flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("route: {flag} expects a value"));
    };
    raw.parse()
        .map(Some)
        .map_err(|_| format!("route: {flag} got invalid value '{raw}'"))
}

/// Every value following any occurrence of `flag`.
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// Worker flags the router forwards verbatim to every spawned
/// `orex serve` process.
const FORWARDED_VALUE_FLAGS: &[&str] = &[
    "--dataset",
    "--preset",
    "--scale",
    "--threads",
    "--cache-entries",
    "--session-ttl",
    "--max-sessions",
    "--precompute",
    "--trace-sample",
    "--trace-slow-ms",
];
const FORWARDED_SWITCHES: &[&str] = &["--eager", "--no-backfill"];

/// `orex route [--addr A] [--workers N] [--base-port P]
/// [--worker-addr H:P]... [--health-interval-ms N] [--timeout-ms N]
/// [--max-connections N] [<forwarded worker flags>]` — serve the fleet.
/// Returns the process exit code.
pub fn run_route(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<i32> {
    let mut config = RouterConfig::default();
    let workers: usize;
    let base_port: u16;
    let external: Vec<String> = flag_values(args, "--worker-addr");
    let parsed: Result<(usize, u16), String> = (|| {
        if let Some(addr) = flag::<String>(args, "--addr")? {
            config.addr = addr;
        }
        if let Some(ms) = flag::<u64>(args, "--timeout-ms")? {
            config.io_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(ms) = flag::<u64>(args, "--health-interval-ms")? {
            config.health_interval = Duration::from_millis(ms.max(50));
        }
        if let Some(max) = flag::<usize>(args, "--max-connections")? {
            config.max_connections = max;
        }
        let workers = flag::<usize>(args, "--workers")?.unwrap_or(2);
        if workers == 0 {
            return Err("route: --workers must be at least 1".into());
        }
        let base_port = flag::<u16>(args, "--base-port")?.unwrap_or(7480);
        Ok((workers, base_port))
    })();
    match parsed {
        Ok((w, p)) => {
            workers = w;
            base_port = p;
        }
        Err(msg) => {
            writeln!(err, "{msg}\n\n{SUBCOMMAND_HELP}")?;
            return Ok(2);
        }
    }

    let source = if external.is_empty() {
        let exe = std::env::current_exe()?;
        let mut argv = vec![exe.to_string_lossy().into_owned(), "serve".to_string()];
        for name in FORWARDED_VALUE_FLAGS {
            for value in flag_values(args, name) {
                argv.push((*name).to_string());
                argv.push(value);
            }
        }
        for name in FORWARDED_SWITCHES {
            if args.iter().any(|a| a == name) {
                argv.push((*name).to_string());
            }
        }
        WorkerSource::Spawn {
            argv,
            base_port,
            workers,
        }
    } else {
        WorkerSource::External { addrs: external }
    };

    let fleet = match Fleet::start(source, config.health_interval) {
        Ok(fleet) => fleet,
        Err(e) => {
            writeln!(err, "route: starting the worker fleet: {e}")?;
            return Ok(1);
        }
    };
    let router = match Router::bind(std::sync::Arc::clone(&fleet), config.clone()) {
        Ok(router) => router,
        Err(e) => {
            writeln!(err, "route: binding {}: {e}", config.addr)?;
            fleet.shutdown();
            return Ok(1);
        }
    };
    install_signal_handlers();
    let addr = router.local_addr()?;
    writeln!(
        out,
        "routing on http://{addr} fronting {} worker(s)",
        fleet.len()
    )?;
    for worker in fleet.workers() {
        writeln!(out, "  worker {} -> http://{}", worker.index, worker.addr)?;
    }
    writeln!(
        out,
        "try: curl -s http://{addr}/healthz ; curl -s http://{addr}/debug/status | orex top --addr {addr} --once"
    )?;
    out.flush()?;
    match router.run() {
        Ok(()) => {
            writeln!(
                err,
                "[route] drained open connections; workers stopped; clean shutdown"
            )?;
            Ok(0)
        }
        Err(e) => {
            writeln!(err, "route: accept loop failed: {e}")?;
            Ok(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bad_flag_values_exit_2() {
        for bad in [
            vec!["--workers", "many"],
            vec!["--workers", "0"],
            vec!["--base-port", "high"],
            vec!["--timeout-ms"],
            vec!["--health-interval-ms", "soon"],
            vec!["--max-connections", "-2"],
        ] {
            let mut out = Vec::new();
            let mut err = Vec::new();
            let code = run_route(&argv(&bad), &mut out, &mut err).unwrap();
            assert_eq!(code, 2, "args {bad:?} must be rejected");
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn bind_failure_exits_1() {
        // External workers so nothing is spawned; the unroutable bind
        // address fails fast.
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run_route(
            &argv(&["--addr", "256.0.0.1:0", "--worker-addr", "127.0.0.1:9"]),
            &mut out,
            &mut err,
        )
        .unwrap();
        assert_eq!(code, 1);
        let msg = String::from_utf8(err).unwrap();
        assert!(msg.contains("route: binding"), "{msg}");
    }
}
