//! Non-interactive `orex` subcommands.
//!
//! `orex trace "<query>"` runs one query end-to-end with tracing enabled
//! and exports the collected span tree (Chrome trace-event JSON or folded
//! stacks for flamegraph tooling). `orex stats` renders the telemetry
//! snapshot (JSON or Prometheus text exposition) and, with `--diff`,
//! compares it against one or more baseline snapshots for the CI perf
//! gate. Both are plumbing around the `orex-telemetry` APIs; anything
//! ranking-related goes through the ordinary [`QuerySession`] path so the
//! traces reflect real production spans.

use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
use orex_datagen::Preset;
use orex_ir::Query;
use orex_telemetry::export::{to_chrome_trace, to_folded_stacks};
use orex_telemetry::{Exemplar, HistogramSummary, Snapshot, BUCKETS};
use std::io::Write;

/// Usage text for the non-interactive subcommands (the REPL has its own
/// `help`).
pub const SUBCOMMAND_HELP: &str = "\
orex — explaining & reformulating authority flow queries

usage:
  orex                       start the interactive shell
  orex trace \"<query>\" [--format chrome|folded] [--preset NAME]
                             [--scale F] [--out FILE]
                             run one traced query and export its span tree
  orex trace --fleet <trace-id> [--addr A] [--out FILE]
                             fetch GET /trace/<id> from a running router
                             (or standalone server) and emit the stitched
                             Chrome trace: one clock-aligned process lane
                             per router/worker that recorded spans for
                             that trace id
  orex stats [--format json|prom] [--snapshot FILE]
             [--diff BASELINE.json]... [--threshold F] [--metrics a,b]
                             dump telemetry; with --diff, compare against
                             the median of the baselines and exit 1 on a
                             regression above the threshold (default 0.2)
  orex serve [--addr A] [--preset NAME] [--scale F]
             [--dataset NAME=PRESET:SCALE[:PRECOMPUTE]]... [--eager]
             [--threads N]
             [--cache-entries N] [--session-ttl SECS] [--max-sessions N]
             [--max-body-kb N] [--timeout-ms N] [--trace-sample N]
             [--trace-slow-ms N] [--max-traces N] [--max-logs N]
             [--slow-ms N] [--profile-hz N] [--status-interval-ms N]
             [--precompute FILE] [--no-backfill]
                             serve the interactive query/explain/feedback
                             loop over HTTP (POST /query, GET /explain/
                             <session>/<node>, POST /feedback/<session>,
                             GET /healthz|/metrics|/trace/<id>|/logs|
                             /profile|/debug/status|/datasets);
                             repeatable --dataset flags serve several
                             named datasets from one registry (clients
                             pick one via the \"dataset\" field of POST
                             /query; unknown names get a typed 404);
                             datasets build lazily on first use unless
                             --eager builds them all upfront;
                             with --precompute, covered queries are
                             answered by exact linear combination of the
                             artifact's vectors and uncovered terms are
                             backfilled in the background (--no-backfill
                             disables); --profile-hz tunes the continuous
                             profiler's sampling rate (0 disables it);
                             SIGTERM or ctrl-c drains in-flight requests
  orex route [--addr A] [--workers N] [--base-port P]
             [--worker-addr H:P]... [--health-interval-ms N]
             [--timeout-ms N] [--max-connections N]
             [<worker flags: --dataset/--eager/--preset/--scale/
              --threads/--cache-entries/...>]
                             spawn N `orex serve` worker processes on
                             base-port, base-port+1, ... and front them
                             with a consistent-hash router: queries for
                             the same (dataset, query) pair stick to one
                             worker's warm cache, session requests follow
                             the worker encoded in their session id, and
                             /metrics, /logs, and /debug/status aggregate
                             the whole fleet (each series/record labelled
                             worker=\"i\"); crashed workers are ejected,
                             relaunched with capped backoff, and
                             readmitted when healthy; --worker-addr
                             fronts already-running servers instead of
                             spawning; SIGTERM or ctrl-c drains the
                             router then cascades the drain to workers
  orex profile [--addr A] [--in FILE] [--seconds N]
               [--format text|folded|chrome] [--top N] [--out FILE]
                             fetch the continuous profiler's folded span
                             stacks from a running server (or read a
                             captured folded file / stdin with --in) and
                             render a top-N hot-span table, raw folded
                             stacks for flamegraph tooling, or Chrome
                             trace-event JSON
  orex top [--addr A] [--interval-ms N] [--once]
                             poll GET /debug/status on a running server
                             and render per-endpoint RED metrics,
                             occupancy, and SLO burn rates as a terminal
                             dashboard; --once prints a single frame
                             (for scripts and CI)
  orex precompute [--preset NAME] [--scale F] [--top N] [--out FILE]
                  [--manifest FILE] [--check K] [--stats FILE]
                             build single-keyword rank vectors for the
                             top-N document-frequency terms through the
                             batched power-iteration kernel and persist
                             them with a manifest for `orex serve
                             --precompute`; --check K compares K combined
                             queries against live iteration
  orex logs [FILE] [--level L] [--target PREFIX] [--since SEQ]
            [--limit N] [--trace ID] [--format text|json]
                             filter a JSON-lines log capture (a file, or
                             stdin — e.g. piped from `curl .../logs`) and
                             render it as text or re-emit JSON lines
  orex analyze [--root DIR] [--format text|json|sarif] [--output FILE]
               [--cache FILE] [--explain ORXnnn]
                             run the workspace static-analysis gate
                             (rules ORX001–ORX010 from analyze.policy);
                             --cache reuses per-file analyses across runs,
                             --explain prints a rule's rationale and waiver
                             syntax; exits 1 on any finding";

/// Returns the value following `flag` in `args`.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Returns every value following any occurrence of `flag` (repeatable
/// flags such as `--diff`).
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// The positional arguments: everything not a flag or a flag's value.
fn positionals(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a.clone());
    }
    out
}

/// `orex trace "<query>" [--format chrome|folded] [--preset NAME]
/// [--scale F] [--out FILE]` — run one query with tracing on and export
/// the span tree. Returns the process exit code.
pub fn run_trace(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<i32> {
    if args.iter().any(|a| a == "--fleet") {
        return run_trace_fleet(args, out, err);
    }
    let positional = positionals(args);
    let Some(query_text) = positional.first() else {
        writeln!(err, "trace: missing query string\n\n{SUBCOMMAND_HELP}")?;
        return Ok(2);
    };
    let format = flag_value(args, "--format").unwrap_or_else(|| "chrome".into());
    if format != "chrome" && format != "folded" {
        writeln!(err, "trace: unknown format '{format}' (chrome|folded)")?;
        return Ok(2);
    }
    let preset_name = flag_value(args, "--preset").unwrap_or_else(|| "dblp-top".into());
    let Some(preset) = Preset::parse(&preset_name) else {
        writeln!(
            err,
            "trace: unknown preset '{preset_name}' (dblp-top, dblp-complete, ds7, ds7-cancer)"
        )?;
        return Ok(2);
    };
    let scale: f64 = match flag_value(args, "--scale").map(|s| s.parse()) {
        None => 0.05,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            writeln!(err, "trace: --scale expects a number")?;
            return Ok(2);
        }
    };

    let tracer = orex_telemetry::tracer();
    if !tracer.is_enabled() {
        writeln!(
            err,
            "trace: tracing is disabled (OREX_TELEMETRY=0); nothing to collect"
        )?;
        return Ok(2);
    }

    let dataset = preset.generate(scale);
    let (nodes, edges) = dataset.sizes();
    writeln!(
        err,
        "[trace] {} at scale {scale}: {nodes} nodes, {edges} edges",
        preset.name()
    )?;
    let system =
        ObjectRankSystem::new(dataset.graph, dataset.ground_truth, SystemConfig::default());
    let query = Query::parse(query_text);

    // Discard spans recorded while building the system so the export holds
    // exactly the query's trace.
    let _ = tracer.drain();
    match QuerySession::start(&system, &query) {
        Ok(session) => drop(session),
        Err(e) => {
            writeln!(err, "trace: query failed: {e}")?;
            return Ok(1);
        }
    }
    let records = tracer.drain();
    writeln!(err, "[trace] collected {} spans", records.len())?;

    let rendered = match format.as_str() {
        "chrome" => to_chrome_trace(&records),
        _ => to_folded_stacks(&records),
    };
    match flag_value(args, "--out") {
        Some(path) if path != "-" => {
            std::fs::write(&path, rendered.as_bytes()).map_err(|e| {
                std::io::Error::new(e.kind(), format!("trace: writing {path}: {e}"))
            })?;
            writeln!(err, "[trace] wrote {path}")?;
        }
        _ => writeln!(out, "{rendered}")?,
    }
    Ok(0)
}

/// `orex trace --fleet <trace-id> [--addr A] [--out FILE]` — fetch the
/// stitched cross-process Chrome trace for one trace id from a running
/// router (or standalone server) and print it (or write it to `--out`).
/// The id is accepted in decimal (as printed by `orex logs` and metric
/// exemplars) or hex (as carried in the `X-Orex-Trace` header).
fn run_trace_fleet(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<i32> {
    let Some(raw_id) = flag_value(args, "--fleet") else {
        writeln!(
            err,
            "trace: --fleet expects a trace id\n\n{SUBCOMMAND_HELP}"
        )?;
        return Ok(2);
    };
    let hex = raw_id.strip_prefix("0x").unwrap_or(&raw_id);
    let id: u64 = match raw_id.parse().or_else(|_| u64::from_str_radix(hex, 16)) {
        Ok(0) | Err(_) => {
            writeln!(
                err,
                "trace: --fleet expects a decimal or hex trace id, got '{raw_id}'"
            )?;
            return Ok(2);
        }
        Ok(id) => id,
    };
    let addr = flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:7470".into());
    let client = orex_server::HttpClient::new(addr.clone());
    let rendered = match client.get(&format!("/trace/{id}")) {
        Ok(reply) if reply.status == 200 => reply.body_str().unwrap_or_default().to_string(),
        Ok(reply) => {
            writeln!(
                err,
                "trace: {addr} returned {} for trace {id}: {}",
                reply.status,
                reply.body_str().unwrap_or("").trim_end()
            )?;
            return Ok(1);
        }
        Err(e) => {
            writeln!(err, "trace: fetching /trace/{id} from {addr}: {e}")?;
            return Ok(1);
        }
    };
    match flag_value(args, "--out") {
        Some(path) if path != "-" => {
            std::fs::write(&path, rendered.as_bytes()).map_err(|e| {
                std::io::Error::new(e.kind(), format!("trace: writing {path}: {e}"))
            })?;
            writeln!(err, "[trace] wrote {path}")?;
        }
        _ => writeln!(out, "{rendered}")?,
    }
    Ok(0)
}

/// `orex stats [--format json|prom] [--snapshot FILE] [--diff FILE]...
/// [--threshold F] [--metrics a,b]` — dump or compare telemetry.
/// Returns the process exit code (1 when a regression trips the gate).
pub fn run_stats(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<i32> {
    let format = flag_value(args, "--format").unwrap_or_else(|| "json".into());
    if format != "json" && format != "prom" {
        writeln!(err, "stats: unknown format '{format}' (json|prom)")?;
        return Ok(2);
    }
    let threshold: f64 = match flag_value(args, "--threshold").map(|s| s.parse()) {
        None => 0.2,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            writeln!(err, "stats: --threshold expects a number")?;
            return Ok(2);
        }
    };
    let watched: Option<Vec<String>> =
        flag_value(args, "--metrics").map(|s| s.split(',').map(|m| m.trim().to_string()).collect());

    let current = match flag_value(args, "--snapshot") {
        Some(path) => match load_snapshot(&path) {
            Ok(s) => s,
            Err(e) => {
                writeln!(err, "stats: {e}")?;
                return Ok(2);
            }
        },
        None => orex_telemetry::global().snapshot(),
    };

    let baseline_paths = flag_values(args, "--diff");
    if baseline_paths.is_empty() {
        match format.as_str() {
            "prom" => write!(out, "{}", current.to_prometheus())?,
            _ => writeln!(out, "{}", current.to_json_pretty())?,
        }
        return Ok(0);
    }

    let mut baselines = Vec::new();
    for path in &baseline_paths {
        match load_snapshot(path) {
            Ok(s) => baselines.push(s),
            Err(e) => {
                writeln!(err, "stats: {e}")?;
                return Ok(2);
            }
        }
    }
    let median = Snapshot::median(&baselines);
    let diff = current.diff(&median);
    let keep = |name: &str| watched.as_ref().is_none_or(|w| w.iter().any(|m| m == name));

    writeln!(
        out,
        "comparing against the median of {} baseline(s), threshold {:.0}%:",
        baselines.len(),
        threshold * 100.0
    )?;
    let mut failed = false;
    let mut shown = 0usize;
    for d in &diff.deltas {
        if !keep(&d.name) {
            continue;
        }
        shown += 1;
        // A zero (or absent-mean) baseline makes the relative delta
        // +inf or NaN: the metric is effectively *new* in this run, and
        // "infinitely regressed" would fail every first run that adds a
        // metric. Report it without gating on it.
        let comparable = d.relative.is_finite();
        let regressed = comparable && d.relative > threshold;
        failed |= regressed;
        let rendered_delta = if comparable {
            format!("{:>+8.1}%", d.relative * 100.0)
        } else if d.relative.is_infinite() {
            format!("{:>9}", "new")
        } else {
            format!("{:>9}", "n/a")
        };
        writeln!(
            out,
            "  {} {:<34} {:>12.3} -> {:>12.3}  {rendered_delta}{}",
            if regressed { "FAIL" } else { "  ok" },
            d.name,
            d.baseline,
            d.current,
            if regressed { "  REGRESSION" } else { "" },
        )?;
    }
    if shown == 0 {
        writeln!(
            out,
            "  no overlapping metrics to compare{}",
            if watched.is_some() {
                " (check --metrics names)"
            } else {
                ""
            }
        )?;
    }
    Ok(if failed { 1 } else { 0 })
}

/// Loads a telemetry [`Snapshot`] from a JSON file. Accepts both raw
/// snapshot dumps (`orex stats > f.json`) and bench result artifacts,
/// whose snapshot lives under a top-level `"telemetry"` key.
pub fn load_snapshot(path: &str) -> Result<Snapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let root = value.get("telemetry").unwrap_or(&value);
    snapshot_from_json(root).map_err(|e| format!("parsing {path}: {e}"))
}

/// Decodes the JSON layout produced by [`Snapshot::to_json_pretty`] (and
/// mirrored by the bench harness) back into a [`Snapshot`]. Unknown keys
/// are ignored; missing histogram fields default to zero so older
/// artifacts without bucket arrays still diff.
pub fn snapshot_from_json(v: &serde_json::Value) -> Result<Snapshot, String> {
    let obj = v.as_object().ok_or("snapshot is not a JSON object")?;
    let mut snapshot = Snapshot::default();
    if let Some(counters) = obj.get("counters").and_then(|c| c.as_object()) {
        for (name, val) in counters.iter() {
            let n = val
                .as_u64()
                .or_else(|| val.as_f64().map(|f| f as u64))
                .ok_or_else(|| format!("counter {name:?} is not a number"))?;
            snapshot.counters.insert(name.clone(), n);
        }
    }
    if let Some(gauges) = obj.get("gauges").and_then(|c| c.as_object()) {
        for (name, val) in gauges.iter() {
            let n = val
                .as_f64()
                .ok_or_else(|| format!("gauge {name:?} is not a number"))?;
            snapshot.gauges.insert(name.clone(), n);
        }
    }
    if let Some(histograms) = obj.get("histograms").and_then(|c| c.as_object()) {
        for (name, val) in histograms.iter() {
            let h = val
                .as_object()
                .ok_or_else(|| format!("histogram {name:?} is not an object"))?;
            let f = |key: &str| h.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
            let mut summary = HistogramSummary {
                count: h.get("count").and_then(|v| v.as_u64()).unwrap_or(0),
                sum: f("sum"),
                min: f("min"),
                max: f("max"),
                mean: f("mean"),
                p50: f("p50"),
                p95: f("p95"),
                ..HistogramSummary::default()
            };
            if let Some(buckets) = h.get("buckets").and_then(|v| v.as_array()) {
                for (i, b) in buckets.iter().take(BUCKETS).enumerate() {
                    summary.buckets[i] = b.as_u64().unwrap_or(0);
                }
            }
            // Sparse exemplar array: [{"bucket":i,"trace":t,"value":v}].
            // Kept so a re-export (`orex stats --snapshot f.json --format
            // prom`) preserves the trace-id links.
            if let Some(exemplars) = h.get("exemplars").and_then(|v| v.as_array()) {
                for e in exemplars {
                    let Some(i) = e.get("bucket").and_then(|v| v.as_u64()) else {
                        continue;
                    };
                    let Some(trace) = e.get("trace").and_then(|v| v.as_u64()) else {
                        continue;
                    };
                    if let Some(slot) = summary.exemplars.get_mut(i as usize) {
                        *slot = Some(Exemplar {
                            trace,
                            value: e.get("value").and_then(|v| v.as_f64()).unwrap_or(0.0),
                        });
                    }
                }
            }
            snapshot.histograms.insert(name.clone(), summary);
        }
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(f: impl FnOnce(&mut Vec<u8>, &mut Vec<u8>) -> std::io::Result<i32>) -> (i32, String) {
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = f(&mut out, &mut err).unwrap();
        (code, String::from_utf8(out).unwrap())
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn trace_rejects_missing_query_and_bad_flags() {
        let (code, _) = run(|o, e| run_trace(&args(&[]), o, e));
        assert_eq!(code, 2);
        let (code, _) = run(|o, e| run_trace(&args(&["data", "--format", "xml"]), o, e));
        assert_eq!(code, 2);
        let (code, _) = run(|o, e| run_trace(&args(&["data", "--preset", "nope"]), o, e));
        assert_eq!(code, 2);
    }

    #[test]
    fn trace_fleet_rejects_bad_ids_and_reports_unreachable_routers() {
        // No id value at all (the flag is last, so nothing follows it).
        let (code, _) = run(|o, e| run_trace(&args(&["--fleet"]), o, e));
        assert_eq!(code, 2);
        // Neither decimal nor hex.
        let (code, _) = run(|o, e| run_trace(&args(&["--fleet", "not-an-id"]), o, e));
        assert_eq!(code, 2);
        // Zero is never a valid trace id.
        let (code, _) = run(|o, e| run_trace(&args(&["--fleet", "0"]), o, e));
        assert_eq!(code, 2);
        // A well-formed id against a dead address is a runtime error (1),
        // not a usage error (2). Port 9 is discard/refused.
        let (code, _) = run(|o, e| {
            run_trace(
                &args(&["--fleet", "0xdeadbeef", "--addr", "127.0.0.1:9"]),
                o,
                e,
            )
        });
        assert_eq!(code, 1);
    }

    #[test]
    fn trace_emits_chrome_json_with_nested_session_spans() {
        let (code, out) = run(|o, e| {
            run_trace(
                &args(&["data", "--scale", "0.01", "--format", "chrome"]),
                o,
                e,
            )
        });
        if !orex_telemetry::tracer().is_enabled() {
            assert_eq!(code, 2);
            return;
        }
        assert_eq!(code, 0, "{out}");
        let parsed = serde_json::from_str(&out).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        // Root session span plus at least three nesting levels:
        // session.query -> session.rank -> authority.power ->
        // authority.power.iteration.
        for expected in [
            "session.query",
            "session.rank",
            "authority.power",
            "authority.power.iteration",
        ] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("E"))
            .count();
        assert_eq!(begins, ends, "unbalanced B/E events");
    }

    #[test]
    fn trace_folded_output_contains_rooted_stacks() {
        let (code, out) = run(|o, e| {
            run_trace(
                &args(&["data", "--scale", "0.01", "--format", "folded"]),
                o,
                e,
            )
        });
        if !orex_telemetry::tracer().is_enabled() {
            assert_eq!(code, 2);
            return;
        }
        assert_eq!(code, 0, "{out}");
        assert!(
            out.lines()
                .any(|l| l.starts_with("session.query;session.rank;authority.power")),
            "{out}"
        );
    }

    #[test]
    fn stats_prom_format_renders_exposition() {
        orex_telemetry::global().counter("cli.test.prom").incr();
        let (code, out) = run(|o, e| run_stats(&args(&["--format", "prom"]), o, e));
        assert_eq!(code, 0);
        if orex_telemetry::global().is_enabled() {
            assert!(out.contains("# TYPE orex_cli_test_prom counter"), "{out}");
        }
    }

    #[test]
    fn stats_diff_gates_on_regression() {
        let dir = std::env::temp_dir().join("orex-stats-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, rank_us: f64| {
            let path = dir.join(name);
            std::fs::write(
                &path,
                format!(
                    r#"{{"telemetry":{{"counters":{{}},"gauges":{{}},"histograms":{{
                        "session.rank_us":{{"count":4,"sum":{s},"min":1.0,"max":{m},
                        "mean":{m},"p50":{m},"p95":{m}}}}}}}}}"#,
                    s = rank_us * 4.0,
                    m = rank_us
                ),
            )
            .unwrap();
            path.display().to_string()
        };
        let b1 = write("b1.json", 100.0);
        let b2 = write("b2.json", 110.0);
        let b3 = write("b3.json", 120.0);
        let slow = write("current.json", 200.0);
        let fine = write("fine.json", 112.0);

        // 200µs vs median 110µs: +81% > 20% → gate trips.
        let (code, out) = run(|o, e| {
            run_stats(
                &args(&[
                    "--snapshot",
                    &slow,
                    "--diff",
                    &b1,
                    "--diff",
                    &b2,
                    "--diff",
                    &b3,
                    "--metrics",
                    "session.rank_us",
                ]),
                o,
                e,
            )
        });
        assert_eq!(code, 1, "{out}");
        assert!(out.contains("REGRESSION"), "{out}");

        // 112µs vs median 110µs: within threshold → pass.
        let (code, out) = run(|o, e| {
            run_stats(
                &args(&[
                    "--snapshot",
                    &fine,
                    "--diff",
                    &b1,
                    "--diff",
                    &b2,
                    "--diff",
                    &b3,
                    "--metrics",
                    "session.rank_us",
                ]),
                o,
                e,
            )
        });
        assert_eq!(code, 0, "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_diff_reports_zero_baseline_metrics_as_new_without_gating() {
        let dir = std::env::temp_dir().join("orex-stats-newmetric-test");
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap();
            path.display().to_string()
        };
        // The baseline recorded the counter as zero (e.g. the metric was
        // introduced after the baseline was captured); the current run
        // has it non-zero. The relative delta is +inf — it must render
        // as "new" and must NOT trip the regression gate.
        let baseline = write(
            "baseline.json",
            r#"{"counters":{"server.requests":0},"gauges":{},"histograms":{}}"#,
        );
        let current = write(
            "current.json",
            r#"{"counters":{"server.requests":41},"gauges":{},"histograms":{}}"#,
        );
        let (code, out) =
            run(|o, e| run_stats(&args(&["--snapshot", &current, "--diff", &baseline]), o, e));
        assert_eq!(code, 0, "new metrics must not fail the gate: {out}");
        assert!(out.contains("new"), "{out}");
        assert!(!out.contains("REGRESSION"), "{out}");
        assert!(!out.contains("inf"), "{out}");
        assert!(!out.contains("NaN"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let recorder = orex_telemetry::Recorder::new();
        recorder.counter("a.count").add(7);
        recorder.gauge("b.level").set(2.5);
        recorder.histogram("c.us").record(12.0);
        recorder
            .histogram("c.us")
            .record_with_exemplar(48.0, Some(901));
        let snapshot = recorder.snapshot();
        let parsed =
            snapshot_from_json(&serde_json::from_str(&snapshot.to_json_pretty()).unwrap()).unwrap();
        assert_eq!(parsed.counters, snapshot.counters);
        assert_eq!(parsed.gauges, snapshot.gauges);
        assert_eq!(
            parsed.histograms["c.us"].buckets,
            snapshot.histograms["c.us"].buckets
        );
        assert_eq!(
            parsed.histograms["c.us"].mean,
            snapshot.histograms["c.us"].mean
        );
        // Exemplar trace links survive the roundtrip, so a prom
        // re-export of a saved snapshot keeps its `# {trace_id=...}`.
        assert_eq!(
            parsed.histograms["c.us"].exemplars,
            snapshot.histograms["c.us"].exemplars
        );
        assert!(parsed.histograms["c.us"]
            .exemplars
            .iter()
            .flatten()
            .any(|e| e.trace == 901 && e.value == 48.0));
        assert!(parsed.to_prometheus().contains(r#"# {trace_id="901"} 48"#));
    }
}
