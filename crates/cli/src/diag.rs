//! The `orex profile` and `orex top` subcommands: operator views over a
//! running server's continuous profiler and status board.
//!
//! `orex profile` pulls folded span stacks from `GET /profile` (or reads
//! a previously captured folded file) and renders a top-N hot-span
//! table, the raw folded text for flamegraph tooling, or Chrome
//! trace-event JSON. `orex top` polls `GET /debug/status?format=json`
//! and renders the RED rows, occupancy, and SLO burn rates as a
//! terminal dashboard:
//!
//! ```text
//! orex profile --addr 127.0.0.1:7474 --seconds 30 --top 10
//! orex profile --addr 127.0.0.1:7474 --format folded --out profile.folded
//! orex top --addr 127.0.0.1:7474 --interval-ms 1000
//! ```

use orex_server::sparkline;
use orex_telemetry::ProfileSnapshot;
use std::fmt::Write as _;
use std::io::{Read as _, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::subcommands::SUBCOMMAND_HELP;

/// Address used when `--addr` is omitted: the `orex serve` default.
const DEFAULT_ADDR: &str = "127.0.0.1:7474";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// One HTTP/1.1 GET over a fresh connection (the server closes per
/// request). Returns `(status, body)`.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolving {addr}: no usable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, Duration::from_secs(5))
        .map_err(|e| format!("connecting {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(30))))
        .map_err(|e| format!("{addr}: {e}"))?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: orex\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("{addr}: sending request: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("{addr}: reading response: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// Renders the top-`n` hot spans of a snapshot as an aligned table.
fn render_hot(snapshot: &ProfileSnapshot, n: usize) -> String {
    let mut out = String::new();
    let _ = write!(out, "{} samples", snapshot.samples);
    // Folded text carries no rate/window metadata, so a parsed snapshot
    // has hz = seconds = 0; only print what is actually known.
    if snapshot.seconds > 0 {
        let _ = write!(out, " over {}s", snapshot.seconds);
    }
    if snapshot.hz > 0 {
        let _ = write!(out, " at {} Hz", snapshot.hz);
    }
    let _ = writeln!(out, " ({} distinct stacks)", snapshot.folded.len());
    if snapshot.samples == 0 {
        let _ = writeln!(
            out,
            "no samples collected (is the workload idle, or the window empty?)"
        );
        return out;
    }
    let _ = writeln!(
        out,
        "{:>8} {:>6}  {:>8} {:>6}  span",
        "self", "self%", "total", "total%"
    );
    let total = snapshot.samples as f64;
    for h in snapshot.hot(n) {
        let _ = writeln!(
            out,
            "{:>8} {:>5.1}%  {:>8} {:>5.1}%  {}",
            h.self_samples,
            h.self_samples as f64 / total * 100.0,
            h.total_samples,
            h.total_samples as f64 / total * 100.0,
            h.name
        );
    }
    out
}

/// `orex profile [--addr A] [--in FILE] [--seconds N]
/// [--format text|folded|chrome] [--top N] [--out FILE]` — fetch the
/// continuous profiler's folded stacks from a running server (or read a
/// captured folded file / stdin with `--in`) and render them. Returns
/// the process exit code.
pub fn run_profile(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<i32> {
    let format = flag_value(args, "--format").unwrap_or_else(|| "text".into());
    if !matches!(format.as_str(), "text" | "folded" | "chrome") {
        writeln!(
            err,
            "profile: unknown format '{format}' (text|folded|chrome)"
        )?;
        return Ok(2);
    }
    let seconds: u64 = match flag_value(args, "--seconds").map(|s| s.parse()) {
        None => 10,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            writeln!(err, "profile: --seconds expects an unsigned integer")?;
            return Ok(2);
        }
    };
    let top: usize = match flag_value(args, "--top").map(|s| s.parse()) {
        None => 15,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            writeln!(err, "profile: --top expects an unsigned integer")?;
            return Ok(2);
        }
    };

    // `--in` reads a captured folded file ('-' = stdin); otherwise the
    // stacks come live from `GET /profile` on `--addr`.
    let folded = match flag_value(args, "--in") {
        Some(path) if path != "-" => match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                writeln!(err, "profile: reading {path}: {e}")?;
                return Ok(2);
            }
        },
        Some(_) => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
        None => {
            let addr = flag_value(args, "--addr").unwrap_or_else(|| DEFAULT_ADDR.into());
            match http_get(&addr, &format!("/profile?seconds={seconds}&format=folded")) {
                Ok((200, body)) => body,
                Ok((status, body)) => {
                    writeln!(err, "profile: {addr} answered {status}: {}", body.trim())?;
                    return Ok(1);
                }
                Err(msg) => {
                    writeln!(err, "profile: {msg}\n\n{SUBCOMMAND_HELP}")?;
                    return Ok(1);
                }
            }
        }
    };

    let snapshot = ProfileSnapshot::from_folded(&folded);
    let rendered = match format.as_str() {
        "folded" => snapshot.to_folded(),
        "chrome" => snapshot.to_chrome(),
        _ => render_hot(&snapshot, top),
    };
    match flag_value(args, "--out") {
        Some(path) if path != "-" => {
            std::fs::write(&path, rendered.as_bytes()).map_err(|e| {
                std::io::Error::new(e.kind(), format!("profile: writing {path}: {e}"))
            })?;
            writeln!(err, "[profile] wrote {path}")?;
        }
        _ => write!(out, "{rendered}")?,
    }
    Ok(0)
}

fn fmt_count(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.1}M", v / 1_000_000.0)
    } else if v >= 10_000.0 {
        format!("{:.0}k", v / 1_000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Renders a `/debug/status?format=json` document as a terminal
/// dashboard. Understands both shapes: a single server's doc (RED
/// table, occupancy, SLO burn rates, sparklines) and a router's fleet
/// doc (router summary plus one RED/SLO row per worker).
fn render_status(addr: &str, doc: &serde_json::Value) -> String {
    if doc.get("router").is_some() && doc.get("workers").is_some() {
        return render_fleet_status(doc);
    }
    let mut out = String::new();
    let uptime = doc.get("uptime_s").and_then(|v| v.as_f64()).unwrap_or(0.0);
    let recent_errors = doc
        .get("recent_errors")
        .and_then(|v| v.as_u64())
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "orex top — {addr}   up {uptime:.0}s   recent errors: {recent_errors}"
    );
    let _ = writeln!(out);

    let _ = writeln!(
        out,
        "  {:<10} {:>9} {:>8} {:>6} {:>10} {:>10}",
        "endpoint", "requests", "req/s", "5xx", "p50(us)", "p95(us)"
    );
    for row in doc
        .get("endpoints")
        .and_then(|v| v.as_array())
        .map(Vec::as_slice)
        .unwrap_or_default()
    {
        let s = |k: &str| row.get(k).and_then(|v| v.as_str()).unwrap_or("?");
        let f = |k: &str| row.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let _ = writeln!(
            out,
            "  {:<10} {:>9} {:>8.1} {:>6} {:>10} {:>10}",
            s("name"),
            f("requests") as u64,
            f("rate_per_s"),
            f("errors_5xx") as u64,
            fmt_count(f("p50_us")),
            fmt_count(f("p95_us")),
        );
    }

    if let Some(occ) = doc.get("occupancy") {
        let g = |k: &str| occ.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  occupancy: sessions {}  cache {}  precompute {}  traces {}  logs {}",
            g("sessions"),
            g("cache"),
            g("precompute_terms"),
            g("traces"),
            g("logs"),
        );
    }

    if let Some(slos) = doc.get("slos").and_then(|v| v.as_array()) {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "  {:<22} {:>9} {:>11} {:>10} state",
            "slo", "objective", "burn short", "burn long"
        );
        for s in slos {
            let name = s.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let f = |k: &str| s.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
            let burning = s.get("burning").and_then(|v| v.as_bool()).unwrap_or(false);
            let _ = writeln!(
                out,
                "  {:<22} {:>9.4} {:>11.2} {:>10.2} {}",
                name,
                f("objective"),
                f("burn_short"),
                f("burn_long"),
                if burning { "BURNING" } else { "ok" },
            );
        }
    }

    if let Some(history) = doc.get("history") {
        let series = |k: &str| -> Vec<f64> {
            history
                .get(k)
                .and_then(|v| v.as_array())
                .map(|a| a.iter().filter_map(|v| v.as_f64()).collect())
                .unwrap_or_default()
        };
        let rates = series("requests_per_s");
        let p95s = series("request_p95_us");
        if !rates.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "  req/s   {}  (peak {:.1})",
                sparkline(&rates),
                rates.iter().cloned().fold(0.0, f64::max)
            );
            let _ = writeln!(
                out,
                "  p95(us) {}  (peak {})",
                sparkline(&p95s),
                fmt_count(p95s.iter().cloned().fold(0.0, f64::max))
            );
        }
    }
    out
}

/// Renders the router's fleet status doc: a summary line, then one RED
/// row per worker (requests, rate, 5xx, worst p95, SLO burn) computed
/// from each worker's inlined status doc.
fn render_fleet_status(doc: &serde_json::Value) -> String {
    let mut out = String::new();
    let router = doc.get("router");
    let rg = |k: &str| {
        router
            .and_then(|r| r.get(k))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    let uptime = router
        .and_then(|r| r.get("uptime_s"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    let router_addr = router
        .and_then(|r| r.get("addr"))
        .and_then(|v| v.as_str())
        .unwrap_or("?");
    let _ = writeln!(
        out,
        "orex top — router {router_addr}   workers {} (healthy {})   up {uptime:.0}s   requests {}   retries {}   worker restarts {}",
        rg("workers"),
        rg("healthy"),
        rg("requests"),
        rg("retries"),
        rg("worker_restarts"),
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<6} {:<18} {:<6} {:>8} {:>9} {:>8} {:>6} {:>10} slo",
        "worker", "addr", "health", "restarts", "requests", "req/s", "5xx", "p95(us)"
    );

    let mut burning_names: Vec<String> = Vec::new();
    for row in doc
        .get("workers")
        .and_then(|v| v.as_array())
        .map(Vec::as_slice)
        .unwrap_or_default()
    {
        let index = row.get("index").and_then(|v| v.as_u64()).unwrap_or(0);
        let worker_addr = row.get("addr").and_then(|v| v.as_str()).unwrap_or("?");
        let healthy = row
            .get("healthy")
            .and_then(|v| v.as_bool())
            .unwrap_or(false);
        let restarts = row.get("restarts").and_then(|v| v.as_u64()).unwrap_or(0);
        let status = row.get("status");
        // Down (or not-yet-scraped) workers have a Null status doc.
        let Some(status) = status.filter(|s| s.as_object().is_some()) else {
            let _ = writeln!(
                out,
                "  {index:<6} {worker_addr:<18} {:<6} {restarts:>8} {:>9} {:>8} {:>6} {:>10} -",
                if healthy { "ok" } else { "DOWN" },
                "-",
                "-",
                "-",
                "-",
            );
            continue;
        };
        // Fold the worker's per-endpoint RED rows into one fleet row.
        let mut requests = 0u64;
        let mut rate = 0.0f64;
        let mut errors_5xx = 0u64;
        let mut p95 = 0.0f64;
        for ep in status
            .get("endpoints")
            .and_then(|v| v.as_array())
            .map(Vec::as_slice)
            .unwrap_or_default()
        {
            let f = |k: &str| ep.get(k).and_then(|v| v.as_f64()).unwrap_or(0.0);
            requests += f("requests") as u64;
            rate += f("rate_per_s");
            errors_5xx += f("errors_5xx") as u64;
            p95 = p95.max(f("p95_us"));
        }
        let mut burning = 0usize;
        for slo in status
            .get("slos")
            .and_then(|v| v.as_array())
            .map(Vec::as_slice)
            .unwrap_or_default()
        {
            if slo.get("burning").and_then(|v| v.as_bool()) == Some(true) {
                burning += 1;
                if let Some(name) = slo.get("name").and_then(|v| v.as_str()) {
                    burning_names.push(format!("worker{index}:{name}"));
                }
            }
        }
        let _ = writeln!(
            out,
            "  {index:<6} {worker_addr:<18} {:<6} {restarts:>8} {requests:>9} {rate:>8.1} {errors_5xx:>6} {:>10} {}",
            if healthy { "ok" } else { "DOWN" },
            fmt_count(p95),
            if burning > 0 {
                format!("BURNING({burning})")
            } else {
                "ok".to_string()
            },
        );
    }
    if !burning_names.is_empty() {
        let _ = writeln!(out);
        for name in burning_names {
            let _ = writeln!(out, "  SLO burning: {name}");
        }
    }
    out
}

/// `orex top [--addr A] [--interval-ms N] [--once]` — poll a running
/// server's (or router's) `/debug/status?format=json` and render it as
/// a terminal dashboard — against `orex route` the frame shows one RED
/// row per worker plus SLO burn; `--once` prints a single frame and
/// exits (for scripts and CI). Returns the process exit code.
pub fn run_top(args: &[String], out: &mut dyn Write, err: &mut dyn Write) -> std::io::Result<i32> {
    let addr = flag_value(args, "--addr").unwrap_or_else(|| DEFAULT_ADDR.into());
    let interval: u64 = match flag_value(args, "--interval-ms").map(|s| s.parse()) {
        None => 2000,
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            writeln!(err, "top: --interval-ms expects an unsigned integer")?;
            return Ok(2);
        }
    };
    let once = args.iter().any(|a| a == "--once");

    loop {
        let doc = match http_get(&addr, "/debug/status?format=json") {
            Ok((200, body)) => match serde_json::from_str(&body) {
                Ok(v) => v,
                Err(e) => {
                    writeln!(err, "top: {addr} sent unparseable status JSON: {e}")?;
                    return Ok(1);
                }
            },
            Ok((status, body)) => {
                writeln!(err, "top: {addr} answered {status}: {}", body.trim())?;
                return Ok(1);
            }
            Err(msg) => {
                writeln!(err, "top: {msg}\n\n{SUBCOMMAND_HELP}")?;
                return Ok(1);
            }
        };
        if once {
            write!(out, "{}", render_status(&addr, &doc))?;
            return Ok(0);
        }
        // Clear the terminal between frames so the dashboard redraws in
        // place, like top(1).
        write!(out, "\x1b[2J\x1b[H{}", render_status(&addr, &doc))?;
        out.flush()?;
        std::thread::sleep(Duration::from_millis(interval.max(100)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn run(f: impl FnOnce(&mut Vec<u8>, &mut Vec<u8>) -> std::io::Result<i32>) -> (i32, String) {
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = f(&mut out, &mut err).unwrap();
        (code, String::from_utf8(out).unwrap())
    }

    fn folded_fixture(name: &str) -> String {
        let dir = std::env::temp_dir().join("orex-cli-diag-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(
            &path,
            "server.request;server.query_us 30\nserver.request 10\nauthority.power 60\n",
        )
        .unwrap();
        path.display().to_string()
    }

    #[test]
    fn profile_renders_top_table_from_folded_file() {
        let path = folded_fixture("table.folded");
        let (code, out) = run(|o, e| run_profile(&args(&["--in", &path]), o, e));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("100 samples"), "{out}");
        // authority.power: 60 self of 100 total samples.
        assert!(out.contains("60.0%"), "{out}");
        assert!(out.contains("authority.power"), "{out}");
        // server.request: 10 self, 40 on-stack.
        assert!(out.contains("server.request"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_reemits_folded_and_chrome_views() {
        let path = folded_fixture("formats.folded");
        let (code, out) =
            run(|o, e| run_profile(&args(&["--in", &path, "--format", "folded"]), o, e));
        assert_eq!(code, 0);
        assert!(out.contains("server.request;server.query_us 30"), "{out}");

        let (code, out) =
            run(|o, e| run_profile(&args(&["--in", &path, "--format", "chrome"]), o, e));
        assert_eq!(code, 0);
        let parsed: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
        assert!(
            parsed
                .get("traceEvents")
                .and_then(|e| e.as_array())
                .is_some_and(|e| !e.is_empty()),
            "{out}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_rejects_bad_flags() {
        for bad in [
            vec!["--format", "svg"],
            vec!["--seconds", "soon"],
            vec!["--top", "-1"],
            vec!["--in", "/nonexistent/orex.folded"],
        ] {
            let list: Vec<&str> = bad.clone();
            let (code, _) = run(|o, e| run_profile(&args(&list), o, e));
            assert_eq!(code, 2, "args {bad:?} must be rejected");
        }
    }

    #[test]
    fn profile_unreachable_server_exits_1() {
        // Port 9 (discard) on loopback is not listening in the test
        // environment; connect fails fast.
        let (code, _) = run(|o, e| run_profile(&args(&["--addr", "127.0.0.1:9"]), o, e));
        assert_eq!(code, 1);
    }

    #[test]
    fn top_renders_fleet_status_docs_with_per_worker_rows() {
        let doc: serde_json::Value = serde_json::from_str(
            r#"{
              "router": {"addr": "127.0.0.1:7470", "workers": 2, "healthy": 1,
                         "requests": 42, "retries": 3, "worker_restarts": 1,
                         "uptime_s": 12.5},
              "workers": [
                {"index": 0, "addr": "127.0.0.1:7480", "healthy": true, "restarts": 0,
                 "status": {
                   "endpoints": [
                     {"name": "query", "requests": 30, "rate_per_s": 3.0,
                      "errors_5xx": 0, "p50_us": 100, "p95_us": 900},
                     {"name": "explain", "requests": 10, "rate_per_s": 1.0,
                      "errors_5xx": 1, "p50_us": 50, "p95_us": 400}
                   ],
                   "slos": [{"name": "availability", "burning": true,
                             "objective": 0.999, "burn_short": 2.0, "burn_long": 1.5}]
                 }},
                {"index": 1, "addr": "127.0.0.1:7481", "healthy": false, "restarts": 2,
                 "status": null}
              ]
            }"#,
        )
        .expect("fixture doc");
        let frame = render_status("127.0.0.1:7470", &doc);
        assert!(frame.contains("workers 2 (healthy 1)"), "{frame}");
        assert!(frame.contains("retries 3"), "{frame}");
        // Worker 0: folded RED row (30+10 requests, 1 5xx, worst p95).
        assert!(frame.contains("127.0.0.1:7480"), "{frame}");
        assert!(frame.contains("40"), "{frame}");
        assert!(frame.contains("900"), "{frame}");
        assert!(frame.contains("BURNING(1)"), "{frame}");
        assert!(frame.contains("worker0:availability"), "{frame}");
        // Worker 1 is down: dashes, no fabricated numbers.
        assert!(frame.contains("DOWN"), "{frame}");

        // A single-server doc still renders the classic dashboard.
        let single: serde_json::Value =
            serde_json::from_str(r#"{"uptime_s": 5.0, "recent_errors": 0, "endpoints": []}"#)
                .expect("single doc");
        let frame = render_status("127.0.0.1:7474", &single);
        assert!(frame.contains("orex top — 127.0.0.1:7474"), "{frame}");
    }

    #[test]
    fn top_rejects_bad_flags_and_unreachable_server() {
        let (code, _) = run(|o, e| run_top(&args(&["--interval-ms", "soon"]), o, e));
        assert_eq!(code, 2);
        let (code, _) = run(|o, e| run_top(&args(&["--addr", "127.0.0.1:9", "--once"]), o, e));
        assert_eq!(code, 1);
    }

    #[test]
    fn render_status_formats_red_occupancy_slos_and_sparklines() {
        let doc: serde_json::Value = serde_json::from_str(
            r#"{
                "uptime_s": 12.7,
                "recent_errors": 2,
                "endpoints": [
                    {"name":"request","requests":120,"rate_per_s":3.5,
                     "errors_5xx":1,"p50_us":900.0,"p95_us":42000.0},
                    {"name":"query","requests":80,"rate_per_s":2.1,
                     "errors_5xx":0,"p50_us":1500.0,"p95_us":2500000.0}
                ],
                "occupancy": {"sessions":4,"cache":7,"precompute_terms":0,
                              "traces":12,"logs":300},
                "slos": [
                    {"name":"request-availability","objective":0.999,
                     "burn_short":0.0,"burn_long":0.0,"burning":false},
                    {"name":"query-latency","objective":0.99,
                     "burn_short":12.5,"burn_long":3.2,"burning":true}
                ],
                "history": {"samples":3,
                            "requests_per_s":[0.0,2.0,4.0],
                            "request_p95_us":[100.0,200.0,400.0]}
            }"#,
        )
        .unwrap();
        let text = render_status("127.0.0.1:7474", &doc);
        assert!(text.contains("up 13s"), "{text}");
        assert!(text.contains("recent errors: 2"), "{text}");
        assert!(text.contains("request"), "{text}");
        assert!(
            text.contains("2.5M"),
            "large p95 rendered compactly: {text}"
        );
        assert!(text.contains("sessions 4"), "{text}");
        assert!(text.contains("BURNING"), "{text}");
        assert!(text.contains("ok"), "{text}");
        assert!(text.contains("req/s"), "{text}");
        assert!(text.contains('█'), "sparkline present: {text}");
    }
}
