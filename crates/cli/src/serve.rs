//! The `orex serve` subcommand: build a system and serve it over HTTP.
//!
//! The served dataset comes from a generator preset (same `--preset` /
//! `--scale` vocabulary as `orex trace`), so a full interactive-loop
//! deployment is one command:
//!
//! ```text
//! orex serve --addr 127.0.0.1:7474 --preset dblp-top --scale 0.1
//! ```
//!
//! Repeatable `--dataset NAME=PRESET:SCALE[:PRECOMPUTE]` flags serve
//! several named datasets from one process instead (the registry path);
//! clients pick one with the `dataset` field of `POST /query`. Datasets
//! build lazily on first use unless `--eager` builds them all upfront:
//!
//! ```text
//! orex serve --dataset dblp=dblp-top:0.05 --dataset bio=ds7-cancer:0.02 --eager
//! ```
//!
//! SIGTERM/ctrl-c drain in-flight requests before exit (see
//! `orex_server::install_signal_handlers`).

use orex_core::{ObjectRankSystem, SystemConfig};
use orex_datagen::Preset;
use orex_server::{install_signal_handlers, DatasetSpec, Server, ServerConfig, SystemRegistry};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use crate::subcommands::SUBCOMMAND_HELP;

fn flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    let Some(raw) = args.get(i + 1) else {
        return Err(format!("serve: {flag} expects a value"));
    };
    raw.parse()
        .map(Some)
        .map_err(|_| format!("serve: {flag} got invalid value '{raw}'"))
}

/// Every value following any occurrence of `flag` (repeatable flags).
fn flag_values(args: &[String], flag: &str) -> Vec<String> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect()
}

/// `orex serve [--addr A] [--preset NAME] [--scale F]
/// [--dataset NAME=PRESET:SCALE[:PRECOMPUTE]]... [--eager] [--threads N]
/// [--cache-entries N] [--session-ttl SECS] [--max-sessions N]
/// [--max-body-kb N] [--timeout-ms N] [--trace-sample N]
/// [--trace-slow-ms N] [--max-traces N] [--max-logs N] [--slow-ms N]
/// [--profile-hz N] [--status-interval-ms N] [--precompute FILE]
/// [--no-backfill]` — serve the interactive loop over HTTP, optionally
/// combining precomputed rank vectors from an `orex precompute`
/// artifact; `--profile-hz` tunes the continuous profiler's sampling
/// rate (0 disables it, `OREX_PROFILE_HZ` overrides). Returns the
/// process exit code.
pub fn run_serve(
    args: &[String],
    out: &mut dyn Write,
    err: &mut dyn Write,
) -> std::io::Result<i32> {
    let mut config = ServerConfig::default();
    let parsed: Result<(), String> = (|| {
        if let Some(addr) = flag::<String>(args, "--addr")? {
            config.addr = addr;
        }
        if let Some(threads) = flag::<usize>(args, "--threads")? {
            config.threads = threads.max(1);
        }
        if let Some(entries) = flag::<usize>(args, "--cache-entries")? {
            config.cache_entries = entries;
        }
        if let Some(secs) = flag::<u64>(args, "--session-ttl")? {
            config.session_ttl = Duration::from_secs(secs.max(1));
        }
        if let Some(max) = flag::<usize>(args, "--max-sessions")? {
            config.max_sessions = max;
        }
        if let Some(kb) = flag::<usize>(args, "--max-body-kb")? {
            config.max_body_bytes = kb * 1024;
        }
        if let Some(ms) = flag::<u64>(args, "--timeout-ms")? {
            config.io_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(max) = flag::<usize>(args, "--max-traces")? {
            config.max_traces = max;
        }
        if let Some(max) = flag::<usize>(args, "--max-logs")? {
            config.max_logs = max;
        }
        if let Some(hz) = flag::<u64>(args, "--profile-hz")? {
            config.profile_hz = hz;
        }
        if let Some(ms) = flag::<u64>(args, "--status-interval-ms")? {
            config.status_interval = Duration::from_millis(ms.max(100));
        }
        if let Some(ms) = flag::<u64>(args, "--slow-ms")? {
            config.slow_request = Duration::from_millis(ms.max(1));
        }
        if let Some(path) = flag::<String>(args, "--precompute")? {
            config.precompute_path = Some(path.into());
        }
        if args.iter().any(|a| a == "--no-backfill") {
            config.backfill = false;
        }
        Ok(())
    })();
    if let Err(msg) = parsed {
        writeln!(err, "{msg}\n\n{SUBCOMMAND_HELP}")?;
        return Ok(2);
    }

    let preset_name = flag::<String>(args, "--preset")
        .unwrap_or_default()
        .unwrap_or_else(|| "dblp-top".into());
    let Some(preset) = Preset::parse(&preset_name) else {
        writeln!(
            err,
            "serve: unknown preset '{preset_name}' (dblp-top, dblp-complete, ds7, ds7-cancer)"
        )?;
        return Ok(2);
    };
    let scale = match flag::<f64>(args, "--scale") {
        Ok(v) => v.unwrap_or(0.05),
        Err(msg) => {
            writeln!(err, "{msg}")?;
            return Ok(2);
        }
    };

    // Trace sampling for the serving workload: 1-in-N requests traced,
    // slow requests always traced.
    let tracer = orex_telemetry::tracer();
    match (
        flag::<u64>(args, "--trace-sample"),
        flag::<u64>(args, "--trace-slow-ms"),
    ) {
        (Ok(sample), Ok(slow_ms)) => {
            if let Some(every) = sample {
                tracer.set_sample_every(every);
            }
            if let Some(ms) = slow_ms {
                tracer.set_slow_threshold(Some(Duration::from_millis(ms)));
            }
        }
        (Err(msg), _) | (_, Err(msg)) => {
            writeln!(err, "{msg}")?;
            return Ok(2);
        }
    }

    let dataset_flags = flag_values(args, "--dataset");
    let eager = args.iter().any(|a| a == "--eager");
    let server = if dataset_flags.is_empty() {
        let dataset = preset.generate(scale);
        let (nodes, edges) = dataset.sizes();
        writeln!(
            err,
            "[serve] {} at scale {scale}: {nodes} nodes, {edges} edges",
            preset.name()
        )?;
        let system = Arc::new(ObjectRankSystem::new(
            dataset.graph,
            dataset.ground_truth,
            SystemConfig::default(),
        ));
        match Server::bind(Arc::clone(&system), config.clone()) {
            Ok(s) => s,
            Err(e) => {
                writeln!(err, "serve: binding {}: {e}", config.addr)?;
                return Ok(1);
            }
        }
    } else {
        let mut specs = Vec::with_capacity(dataset_flags.len());
        for raw in &dataset_flags {
            match DatasetSpec::parse(raw) {
                Ok(spec) => specs.push(spec),
                Err(msg) => {
                    writeln!(err, "serve: {msg}")?;
                    return Ok(2);
                }
            }
        }
        let registry = match SystemRegistry::new(specs, config.cache_entries, config.backfill) {
            Ok(r) => r,
            Err(msg) => {
                writeln!(err, "serve: {msg}")?;
                return Ok(2);
            }
        };
        writeln!(
            err,
            "[serve] datasets: {} (default {}; {})",
            registry.names().join(", "),
            registry.default_name(),
            if eager {
                "built eagerly"
            } else {
                "built lazily on first use"
            }
        )?;
        match Server::bind_registry(registry, config.clone()) {
            Ok(s) => s,
            Err(e) => {
                writeln!(err, "serve: binding {}: {e}", config.addr)?;
                return Ok(1);
            }
        }
    };
    if eager {
        if let Err(e) = server.build_all_datasets() {
            writeln!(err, "serve: building datasets eagerly: {e}")?;
            return Ok(1);
        }
    }
    install_signal_handlers();
    let addr = server.local_addr()?;
    writeln!(
        out,
        "serving on http://{addr} ({} workers, cache {} entries, session ttl {:?})",
        config.threads, config.cache_entries, config.session_ttl
    )?;
    writeln!(
        out,
        "try: curl -s http://{addr}/healthz ; curl -s -XPOST http://{addr}/query -d '{{\"query\": \"data mining\"}}'"
    )?;
    writeln!(
        out,
        "logs: curl -s 'http://{addr}/logs?level=info' | orex logs   (OREX_LOG tunes capture)"
    )?;
    out.flush()?;
    match server.run() {
        Ok(()) => {
            writeln!(err, "[serve] drained in-flight requests; clean shutdown")?;
            Ok(0)
        }
        Err(e) => {
            writeln!(err, "serve: accept loop failed: {e}")?;
            Ok(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn bad_flag_values_exit_2() {
        for bad in [
            vec!["--threads", "many"],
            vec!["--session-ttl", "-3"],
            vec!["--scale", "huge"],
            vec!["--preset", "nope"],
            vec!["--timeout-ms"],
            vec!["--max-traces", "lots"],
            vec!["--profile-hz", "fast"],
            vec!["--status-interval-ms", "-2"],
            vec!["--dataset", "missing-equals"],
            vec!["--dataset", "d=nope:0.05"],
            vec!["--dataset", "d=dblp-top:tiny"],
        ] {
            let mut out = Vec::new();
            let mut err = Vec::new();
            let code = run_serve(&argv(&bad), &mut out, &mut err).unwrap();
            assert_eq!(code, 2, "args {bad:?} must be rejected");
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn bind_failure_exits_1() {
        // An unroutable bind address fails fast, after system build.
        let mut out = Vec::new();
        let mut err = Vec::new();
        let code = run_serve(
            &argv(&["--addr", "256.0.0.1:0", "--scale", "0.01"]),
            &mut out,
            &mut err,
        )
        .unwrap();
        assert_eq!(code, 1);
        let msg = String::from_utf8(err).unwrap();
        assert!(msg.contains("serve: binding"), "{msg}");
    }
}
