//! Scripted end-to-end CLI session: feeds a realistic command transcript
//! through the parser and executor and checks the conversation flows.

use orex_cli::{parse, App};

/// Runs a script of lines, returning per-line outputs. Stops on `quit`.
fn run_script(lines: &[&str]) -> Vec<String> {
    let mut app = App::new();
    let mut outputs = Vec::new();
    for line in lines {
        let mut out = Vec::new();
        match parse(line) {
            Ok(Some(cmd)) => {
                let quit = app.execute(cmd, &mut out).expect("io to a Vec cannot fail");
                outputs.push(String::from_utf8(out).unwrap());
                if quit {
                    break;
                }
            }
            Ok(None) => outputs.push(String::new()),
            Err(e) => outputs.push(format!("{e}\n")),
        }
    }
    outputs
}

#[test]
fn full_session_transcript() {
    let out = run_script(&[
        "# a realistic exploratory session",
        "help",
        "generate dblp-top 0.02",
        "info",
        "query data mining",
        "top 5",
        "explain 1 2",
        "set cf 0.7",
        "feedback 1 2",
        "rates",
        "dot 1",
        "quit",
    ]);
    assert!(out[1].contains("commands:"), "help text");
    assert!(out[2].contains("generated DBLPtop"), "{}", out[2]);
    assert!(out[3].contains("edge types"), "{}", out[3]);
    assert!(out[4].contains("converged in"), "{}", out[4]);
    assert!(out[5].lines().count() >= 5, "top 5 rows:\n{}", out[5]);
    assert!(
        out[6].contains("Why") || out[6].contains("explain failed"),
        "{}",
        out[6]
    );
    assert!(out[7].contains("cf = 0.7"));
    assert!(out[8].contains("reformulated (round 1)"), "{}", out[8]);
    assert!(out[9].contains("cites"), "{}", out[9]);
    assert!(out[10].contains("digraph"), "{}", out[10]);
}

#[test]
fn errors_do_not_poison_the_session() {
    let out = run_script(&[
        "frobnicate",
        "generate nope 0.1",
        "generate dblp-top 0.01",
        "query zzzznonexistent",
        "query data",
    ]);
    assert!(out[0].contains("unknown command"));
    assert!(out[1].contains("unknown preset"));
    assert!(out[2].contains("generated"));
    assert!(out[3].contains("query failed"));
    assert!(out[4].contains("converged"), "session recovers: {}", out[4]);
}

#[test]
fn rates_training_visible_through_cli() {
    let out = run_script(&[
        "generate dblp-top 0.02",
        "query data",
        "rates",
        "feedback 1",
        "rates",
    ]);
    // Rates print before and after feedback; after a structure-only
    // round they must differ somewhere.
    assert_ne!(out[2], out[4], "feedback should change the printed rates");
}
