//! # orex-core — the ObjectRank2 query & reformulation system
//!
//! The facade crate of the `orex` workspace: [`ObjectRankSystem`] bundles
//! a data graph, its authority transfer topology and a full-text index;
//! [`QuerySession`] runs the interactive loop of the paper — execute an
//! ObjectRank2 query (Section 3), explain any result (Section 4), accept
//! relevance feedback and reformulate (Section 5) — recording the
//! per-stage timings and iteration counts that Section 6's performance
//! experiments report.
//!
//! ```no_run
//! use orex_core::{ObjectRankSystem, QuerySession, SystemConfig};
//! use orex_datagen::Preset;
//! use orex_ir::Query;
//!
//! let dataset = Preset::DblpTop.generate(0.05);
//! let system = ObjectRankSystem::new(dataset.graph, dataset.ground_truth,
//!                                    SystemConfig::default());
//! let mut session = QuerySession::start(&system, &Query::parse("olap")).unwrap();
//! let top = session.top_k(10);
//! let explanation = session.explain(top[0].node).unwrap();
//! println!("{}", orex_explain::to_text(&explanation, system.graph(), 3));
//! session.feedback(&[top[0].node]).unwrap(); // learn from the click
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod session;
mod system;

pub use session::{QuerySession, ResultObject, SessionError, SessionSnapshot, StepStats};
pub use system::{ObjectRankSystem, SystemConfig};
