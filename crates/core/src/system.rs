//! The ObjectRank2 query / explanation / reformulation system facade.
//!
//! [`ObjectRankSystem`] bundles everything a deployment needs — the data
//! graph, its transfer-graph topology, the inverted index over node text,
//! and the default parameters — and hands out [`crate::QuerySession`]s
//! that execute queries, explain results, and learn from feedback. This is
//! the programmatic equivalent of the system the paper deployed at
//! `http://dbir.cis.fiu.edu/ObjectRankReformulation/`.

use orex_authority::{global_object_rank, RankParams, TransitionMatrix};
use orex_explain::ExplainParams;
use orex_graph::{DataGraph, NodeId, TransferGraph, TransferRates};
use orex_ir::{Analyzer, IndexBuilder, InvertedIndex, Okapi};
use orex_reformulate::ReformulateParams;

/// System-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Power-iteration parameters (damping 0.85, threshold 0.002 per the
    /// paper's performance experiments).
    pub rank: RankParams,
    /// Explaining-subgraph parameters (radius L = 3 per Section 4).
    pub explain: ExplainParams,
    /// Reformulation parameters (structure-only with C_f = 0.5 won the
    /// surveys, but the default keeps both components per Section 5).
    pub reformulate: ReformulateParams,
    /// Okapi weighting parameters for base-set IR scores (Equation 3).
    pub okapi: Okapi,
    /// Precompute global ObjectRank at system construction and use it to
    /// warm-start initial queries (the Section 6.2 optimization).
    pub global_warm_start: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            rank: RankParams::default(),
            explain: ExplainParams::default(),
            reformulate: ReformulateParams::default(),
            okapi: Okapi::default(),
            global_warm_start: true,
        }
    }
}

/// The deployed system: immutable data + index, shared by query sessions.
pub struct ObjectRankSystem {
    graph: DataGraph,
    transfer: TransferGraph,
    index: InvertedIndex,
    initial_rates: TransferRates,
    config: SystemConfig,
    /// Global ObjectRank scores under `initial_rates`, used to warm-start
    /// initial queries. `None` when disabled.
    global_scores: Option<Vec<f64>>,
}

impl ObjectRankSystem {
    /// Builds the system: derives the transfer graph, indexes every node's
    /// attribute text, and (optionally) precomputes global ObjectRank.
    ///
    /// # Panics
    /// Panics if `initial_rates` is invalid for the graph's schema.
    pub fn new(graph: DataGraph, initial_rates: TransferRates, config: SystemConfig) -> Self {
        initial_rates
            .validate(graph.schema())
            // orex::allow(ORX008): documented `# Panics` contract — the
            // constructor's precondition is that the rates match the
            // schema; every workspace caller builds both from the same
            // preset so the validation cannot fail there.
            .expect("initial rates must be valid");
        let transfer = TransferGraph::build(&graph);
        let mut builder = IndexBuilder::new(Analyzer::new());
        for node in graph.nodes() {
            builder.add_document(node.raw(), &graph.node_text(node));
        }
        let index = builder.build();
        let global_scores = if config.global_warm_start {
            let matrix = TransitionMatrix::new(&transfer, &initial_rates);
            Some(global_object_rank(&matrix, &config.rank).scores)
        } else {
            None
        };
        Self {
            graph,
            transfer,
            index,
            initial_rates,
            config,
            global_scores,
        }
    }

    /// The data graph.
    #[inline]
    pub fn graph(&self) -> &DataGraph {
        &self.graph
    }

    /// The authority transfer data graph.
    #[inline]
    pub fn transfer(&self) -> &TransferGraph {
        &self.transfer
    }

    /// The inverted index over node text.
    #[inline]
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The system's initial (untrained) rates.
    #[inline]
    pub fn initial_rates(&self) -> &TransferRates {
        &self.initial_rates
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Global ObjectRank scores, when precomputed.
    #[inline]
    pub fn global_scores(&self) -> Option<&[f64]> {
        self.global_scores.as_deref()
    }

    /// Display name of a node (for result lists).
    pub fn display(&self, node: NodeId) -> String {
        self.graph.node_display(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_datagen::{generate_dblp, DblpConfig, TextConfig};

    fn tiny_system() -> ObjectRankSystem {
        let d = generate_dblp(
            "t",
            &DblpConfig {
                papers: 120,
                authors: 60,
                conferences: 3,
                years_per_conference: 3,
                text: TextConfig {
                    vocab_size: 600,
                    topics: 5,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        );
        ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default())
    }

    #[test]
    fn system_builds_and_indexes_all_nodes() {
        let sys = tiny_system();
        assert_eq!(
            sys.index().stats().doc_count as usize,
            sys.graph().node_count()
        );
        assert!(sys.global_scores().is_some());
        assert_eq!(sys.global_scores().unwrap().len(), sys.graph().node_count());
    }

    #[test]
    fn global_warm_start_can_be_disabled() {
        let d = generate_dblp(
            "t2",
            &DblpConfig {
                papers: 50,
                authors: 20,
                conferences: 2,
                years_per_conference: 2,
                ..DblpConfig::default()
            },
        );
        let sys = ObjectRankSystem::new(
            d.graph,
            d.ground_truth,
            SystemConfig {
                global_warm_start: false,
                ..SystemConfig::default()
            },
        );
        assert!(sys.global_scores().is_none());
    }

    #[test]
    #[should_panic(expected = "initial rates must be valid")]
    fn invalid_rates_rejected() {
        let d = generate_dblp(
            "t3",
            &DblpConfig {
                papers: 20,
                authors: 10,
                conferences: 1,
                years_per_conference: 1,
                ..DblpConfig::default()
            },
        );
        let bad = orex_graph::TransferRates::uniform(d.graph.schema(), 0.9);
        let _ = ObjectRankSystem::new(d.graph, bad, SystemConfig::default());
    }
}
