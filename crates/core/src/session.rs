//! Query sessions: execute, inspect, explain, give feedback, repeat.
//!
//! A [`QuerySession`] owns the evolving state of one user interaction —
//! the query vector, the authority transfer rates, and the converged
//! ObjectRank2 scores — and implements the feedback loop of Section 5:
//! each [`QuerySession::feedback`] call explains the selected objects,
//! reformulates query and rates, and re-executes with the previous scores
//! as warm start (Section 6.2). Per-stage wall times and iteration counts
//! are recorded so the Figures 14–17 experiments read them off directly.

use crate::system::ObjectRankSystem;
use orex_authority::{object_rank2, top_k, Ranked, RankingError, TransitionMatrix};
use orex_explain::{ExplainError, Explanation};
use orex_graph::{NodeId, TransferRates};
use orex_ir::{Query, QueryVector};
use orex_reformulate::{reformulate, ReformulateParams};
use std::time::{Duration, Instant};

/// A ranked result with its display name.
#[derive(Clone, Debug)]
pub struct ResultObject {
    /// The node.
    pub node: NodeId,
    /// Its ObjectRank2 score.
    pub score: f64,
    /// The node's type label.
    pub label: String,
    /// A short display name.
    pub display: String,
}

/// Timing and iteration record of one pipeline step (initial query or one
/// feedback/reformulation round) — the raw data behind Figures 14–17 and
/// Table 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// ObjectRank2 execution wall time.
    pub rank_time: Duration,
    /// ObjectRank2 power iterations.
    pub rank_iterations: usize,
    /// Whether ObjectRank2 converged within the threshold.
    pub rank_converged: bool,
    /// Explaining-subgraph construction wall time (zero for the initial
    /// query).
    pub explain_construction_time: Duration,
    /// Explaining-ObjectRank2 (flow-adjustment fixpoint) wall time.
    pub explain_adjustment_time: Duration,
    /// Mean fixpoint iterations across the feedback objects (Table 3).
    pub explain_iterations: f64,
    /// Query reformulation wall time.
    pub reformulate_time: Duration,
}

/// Errors surfaced by sessions.
#[derive(Debug)]
pub enum SessionError {
    /// The (possibly reformulated) query produced no base set.
    Ranking(RankingError),
    /// A feedback object could not be explained.
    Explain(ExplainError),
    /// Feedback was given with no objects selected.
    NoFeedbackObjects,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Ranking(e) => write!(f, "ranking failed: {e}"),
            SessionError::Explain(e) => write!(f, "explanation failed: {e}"),
            SessionError::NoFeedbackObjects => write!(f, "no feedback objects given"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<RankingError> for SessionError {
    fn from(e: RankingError) -> Self {
        SessionError::Ranking(e)
    }
}

impl From<ExplainError> for SessionError {
    fn from(e: ExplainError) -> Self {
        SessionError::Explain(e)
    }
}

/// A captured session state (see [`QuerySession::snapshot`]).
#[derive(Clone, Debug)]
pub struct SessionSnapshot {
    query: QueryVector,
    rates: TransferRates,
    scores: Vec<f64>,
    history: Vec<StepStats>,
}

impl SessionSnapshot {
    /// Assembles a snapshot from externally computed state — the entry
    /// point for serving paths that obtain scores without running a
    /// session, e.g. by combining precomputed single-keyword vectors
    /// (the paper's Linearity property). The resulting snapshot resumes
    /// like any other: feedback rounds re-rank live from these scores.
    ///
    /// `history` starts with a single default step (index 0 is the
    /// initial query, whose iteration count is genuinely 0 here).
    pub fn from_parts(query: QueryVector, rates: TransferRates, scores: Vec<f64>) -> Self {
        Self {
            query,
            rates,
            scores,
            history: vec![StepStats::default()],
        }
    }

    /// The score vector captured in this snapshot.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The query vector captured in this snapshot.
    pub fn query_vector(&self) -> &QueryVector {
        &self.query
    }

    /// The rates captured in this snapshot.
    pub fn rates(&self) -> &TransferRates {
        &self.rates
    }
}

/// One user's evolving query interaction.
pub struct QuerySession<'s> {
    system: &'s ObjectRankSystem,
    query: QueryVector,
    rates: TransferRates,
    /// Per-transfer-edge alpha weights for `rates`.
    weights: Vec<f64>,
    /// Converged ObjectRank2 scores of the current query.
    scores: Vec<f64>,
    /// Stats per step: index 0 is the initial query.
    history: Vec<StepStats>,
}

impl<'s> QuerySession<'s> {
    /// Executes the initial query with the system's initial rates.
    pub fn start(system: &'s ObjectRankSystem, query: &Query) -> Result<Self, SessionError> {
        Self::start_with(system, query, system.initial_rates().clone())
    }

    /// Executes the initial query with explicit starting rates (used by
    /// the training experiments, which initialize all rates to 0.3).
    pub fn start_with(
        system: &'s ObjectRankSystem,
        query: &Query,
        rates: TransferRates,
    ) -> Result<Self, SessionError> {
        let telemetry = orex_telemetry::global();
        let tracer = orex_telemetry::tracer();
        telemetry.counter("session.queries").incr();
        // Root span of the query's trace; every engine span below nests
        // under it via the thread-local active-span stack.
        let mut query_span = tracer.span("session.query");
        if query_span.is_recording() {
            query_span.attr_str("query", query.keywords.join(" "));
        }
        let log = orex_telemetry::logger();
        if log.enabled(orex_telemetry::Level::Info, "core.session") {
            log.info("core.session", "query started")
                .field_str("query", query.keywords.join(" "))
                .field_u64("keywords", query.keywords.len() as u64)
                .emit();
        }
        let qv = {
            let _analyze = tracer.span("session.analyze");
            let analysis = telemetry.span("session.query_analysis_us");
            let qv = QueryVector::initial(query, system.index().analyzer());
            drop(analysis);
            qv
        };
        let weights = system.transfer().weights(&rates);
        let matrix = TransitionMatrix::from_edge_weights(system.transfer(), weights);
        let start = Instant::now();
        let rank_span = telemetry.span("session.rank_us");
        let mut rank_tspan = tracer.span("session.rank");
        let result = object_rank2(
            &matrix,
            system.index(),
            &qv,
            &system.config().okapi,
            &system.config().rank,
            system.global_scores(),
        )?;
        if rank_tspan.is_recording() {
            rank_tspan.attr_u64("iterations", result.iterations as u64);
            rank_tspan.attr_u64("converged", u64::from(result.converged));
        }
        drop(rank_tspan);
        drop(rank_span);
        let stats = StepStats {
            rank_time: start.elapsed(),
            rank_iterations: result.iterations,
            rank_converged: result.converged,
            ..StepStats::default()
        };
        // Reclaim the weights from the matrix by recomputing once — the
        // matrix borrowed them; sessions keep their own copy for
        // explanation calls.
        let weights = system.transfer().weights(&rates);
        Ok(Self {
            system,
            query: qv,
            rates,
            weights,
            scores: result.scores,
            history: vec![stats],
        })
    }

    /// Reconstructs a session from a snapshot without re-ranking.
    ///
    /// Where [`Self::restore`] rewinds an existing session, `resume`
    /// builds one from scratch — the shape a server needs when sessions
    /// outlive any single borrow of the system: keep the [`SessionSnapshot`]
    /// (plain owned data, `Send`) between requests and resume it against
    /// the shared system when the next request arrives. The converged
    /// scores come straight from the snapshot, so resuming costs one
    /// weight recomputation, not a power iteration.
    ///
    /// # Panics
    /// Panics if the snapshot comes from a different graph (score
    /// dimension mismatch).
    pub fn resume(system: &'s ObjectRankSystem, snapshot: SessionSnapshot) -> Self {
        assert_eq!(
            snapshot.scores.len(),
            system.graph().node_count(),
            "snapshot belongs to a different graph"
        );
        let weights = system.transfer().weights(&snapshot.rates);
        Self {
            system,
            query: snapshot.query,
            rates: snapshot.rates,
            weights,
            scores: snapshot.scores,
            history: snapshot.history,
        }
    }

    /// The system this session runs against.
    #[inline]
    pub fn system(&self) -> &'s ObjectRankSystem {
        self.system
    }

    /// The current (possibly expanded) query vector.
    #[inline]
    pub fn query_vector(&self) -> &QueryVector {
        &self.query
    }

    /// The current (possibly trained) rates.
    #[inline]
    pub fn rates(&self) -> &TransferRates {
        &self.rates
    }

    /// The converged score vector.
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Per-step statistics; index 0 is the initial query, subsequent
    /// entries are feedback rounds.
    #[inline]
    pub fn history(&self) -> &[StepStats] {
        &self.history
    }

    /// Number of reformulation rounds performed so far.
    #[inline]
    pub fn round(&self) -> usize {
        self.history.len() - 1
    }

    /// Captures the session's full state — query vector, rates, scores,
    /// history — so a later [`Self::restore`] can undo feedback rounds
    /// (users change their minds about what was relevant).
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            query: self.query.clone(),
            rates: self.rates.clone(),
            scores: self.scores.clone(),
            history: self.history.clone(),
        }
    }

    /// Restores a previously captured state.
    ///
    /// # Panics
    /// Panics if the snapshot comes from a different graph (score
    /// dimension mismatch).
    pub fn restore(&mut self, snapshot: SessionSnapshot) {
        assert_eq!(
            snapshot.scores.len(),
            self.system.graph().node_count(),
            "snapshot belongs to a different graph"
        );
        self.weights = self.system.transfer().weights(&snapshot.rates);
        self.query = snapshot.query;
        self.rates = snapshot.rates;
        self.scores = snapshot.scores;
        self.history = snapshot.history;
    }

    /// The top-`k` results, best first.
    pub fn top_k(&self, k: usize) -> Vec<ResultObject> {
        top_k(&self.scores, k, 0.0)
            .into_iter()
            .map(|Ranked { node, score }| {
                let node = NodeId::new(node);
                ResultObject {
                    node,
                    score,
                    label: self.system.graph().node_label(node).to_string(),
                    display: self.system.display(node),
                }
            })
            .collect()
    }

    /// Explains why `target` received its current score (Section 4).
    pub fn explain(&self, target: NodeId) -> Result<Explanation, SessionError> {
        let base = self.current_base_set()?;
        Ok(Explanation::explain(
            self.system.transfer(),
            &self.weights,
            &self.scores,
            &base,
            target,
            &self.system.config().explain,
        )?)
    }

    /// Explains `target` and summarizes the explanation by meta-path —
    /// the schema-level shapes of its strongest `k` authority paths
    /// ("Paper =cites=> Paper", "Paper =by=> Author <=by= Paper", ...).
    pub fn explain_summary(
        &self,
        target: NodeId,
        k: usize,
    ) -> Result<Vec<orex_explain::MetaPath>, SessionError> {
        let explanation = self.explain(target)?;
        Ok(orex_explain::summarize(
            &explanation,
            self.system.transfer(),
            self.system.graph(),
            k,
        ))
    }

    fn current_base_set(&self) -> Result<orex_authority::BaseSet, SessionError> {
        let _span = orex_telemetry::global().span("session.ir_lookup_us");
        let _tspan = orex_telemetry::tracer().span("session.ir_lookup");
        orex_authority::BaseSet::weighted(
            self.system
                .index()
                .base_set_scores(&self.query, &self.system.config().okapi),
        )
        .map_err(|e| SessionError::Ranking(RankingError::EmptyBaseSet(e)))
    }

    /// Marks `objects` as relevant, reformulates the query with the
    /// session's default parameters, and re-executes.
    pub fn feedback(&mut self, objects: &[NodeId]) -> Result<StepStats, SessionError> {
        let params = self.system.config().reformulate;
        self.feedback_with(objects, &params)
    }

    /// Feedback with explicit reformulation parameters (the survey
    /// experiments sweep `C_e` / `C_f`).
    pub fn feedback_with(
        &mut self,
        objects: &[NodeId],
        params: &ReformulateParams,
    ) -> Result<StepStats, SessionError> {
        if objects.is_empty() {
            return Err(SessionError::NoFeedbackObjects);
        }
        let telemetry = orex_telemetry::global();
        let tracer = orex_telemetry::tracer();
        telemetry.counter("session.feedback_rounds").incr();
        // Root span of this feedback round's trace.
        let mut round_span = tracer.span("session.feedback");
        if round_span.is_recording() {
            round_span.attr_u64("round", self.history.len() as u64);
            round_span.attr_u64("feedback_objects", objects.len() as u64);
        }

        // Stage 1 + 2: explain every feedback object.
        let base = self.current_base_set()?;
        let mut explanations = Vec::with_capacity(objects.len());
        let mut construction = Duration::ZERO;
        let mut adjustment = Duration::ZERO;
        let mut fixpoint_iters = 0usize;
        for &obj in objects {
            let e = Explanation::explain(
                self.system.transfer(),
                &self.weights,
                &self.scores,
                &base,
                obj,
                &self.system.config().explain,
            )?;
            construction += e.construction_time();
            adjustment += e.adjustment_time();
            fixpoint_iters += e.iterations();
            explanations.push(e);
        }

        // Stage 3: reformulate.
        let refs: Vec<&Explanation> = explanations.iter().collect();
        let t = Instant::now();
        let outcome = reformulate(
            &self.query,
            &self.rates,
            self.system.graph().schema(),
            self.system.transfer(),
            self.system.index(),
            &refs,
            params,
        );
        let reformulate_time = t.elapsed();

        // Stage 4: re-execute with warm start from the previous scores.
        let new_weights = self.system.transfer().weights(&outcome.rates);
        let matrix =
            TransitionMatrix::from_edge_weights(self.system.transfer(), new_weights.clone());
        let t = Instant::now();
        let rank_span = telemetry.span("session.rank_us");
        let mut rank_tspan = tracer.span("session.rank");
        let result = object_rank2(
            &matrix,
            self.system.index(),
            &outcome.query,
            &self.system.config().okapi,
            &self.system.config().rank,
            Some(&self.scores),
        )?;
        if rank_tspan.is_recording() {
            rank_tspan.attr_u64("iterations", result.iterations as u64);
            rank_tspan.attr_u64("converged", u64::from(result.converged));
        }
        drop(rank_tspan);
        drop(rank_span);
        let stats = StepStats {
            rank_time: t.elapsed(),
            rank_iterations: result.iterations,
            rank_converged: result.converged,
            explain_construction_time: construction,
            explain_adjustment_time: adjustment,
            explain_iterations: fixpoint_iters as f64 / objects.len() as f64,
            reformulate_time,
        };

        orex_telemetry::logger()
            .info("core.session", "feedback applied")
            .field_u64("round", self.history.len() as u64)
            .field_u64("objects", objects.len() as u64)
            .field_u64("expansion_terms", outcome.expansion_terms.len() as u64)
            .field_u64("rank_iterations", result.iterations as u64)
            .field_bool("rank_converged", result.converged)
            .emit();

        self.query = outcome.query;
        self.rates = outcome.rates;
        self.weights = new_weights;
        self.scores = result.scores;
        self.history.push(stats);
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{ObjectRankSystem, SystemConfig};
    use orex_datagen::{generate_dblp, DblpConfig, TextConfig};

    fn system() -> ObjectRankSystem {
        let d = generate_dblp(
            "s",
            &DblpConfig {
                papers: 400,
                authors: 150,
                conferences: 4,
                years_per_conference: 4,
                text: TextConfig {
                    vocab_size: 800,
                    topics: 6,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        );
        ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default())
    }

    #[test]
    fn initial_query_returns_results() {
        let sys = system();
        let session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let top = session.top_k(10);
        assert!(!top.is_empty());
        assert!(top.len() <= 10);
        // Sorted descending.
        for w in top.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        assert_eq!(session.round(), 0);
        assert!(session.history()[0].rank_iterations > 0);
    }

    #[test]
    fn unknown_keyword_errors() {
        let sys = system();
        assert!(matches!(
            QuerySession::start(&sys, &Query::parse("qqqqzzzz")),
            Err(SessionError::Ranking(_))
        ));
    }

    #[test]
    fn explain_top_result_succeeds() {
        let sys = system();
        let session = QuerySession::start(&sys, &Query::parse("query")).unwrap();
        let top = session.top_k(5);
        let expl = session.explain(top[0].node).unwrap();
        assert!(expl.node_count() >= 1);
        assert!(expl.target_inflow() >= 0.0);
    }

    #[test]
    fn feedback_round_updates_state_and_history() {
        let sys = system();
        let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let before_rates = session.rates().clone();
        let top = session.top_k(10);
        let stats = session.feedback(&[top[0].node, top[1].node]).unwrap();
        assert_eq!(session.round(), 1);
        assert!(stats.rank_iterations > 0);
        assert!(stats.explain_iterations > 0.0);
        assert_ne!(session.rates(), &before_rates, "rates should train");
        assert!(!session.query_vector().is_empty());
    }

    #[test]
    fn warm_start_speeds_up_reformulated_queries() {
        let sys = system();
        let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let initial_iters = session.history()[0].rank_iterations;
        let top = session.top_k(5);
        let stats = session.feedback(&[top[0].node]).unwrap();
        // The Figures 14(b)-17(b) claim: reformulated queries converge in
        // fewer iterations thanks to score reuse.
        assert!(
            stats.rank_iterations <= initial_iters,
            "warm {} vs cold {}",
            stats.rank_iterations,
            initial_iters
        );
    }

    #[test]
    fn empty_feedback_rejected() {
        let sys = system();
        let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        assert!(matches!(
            session.feedback(&[]),
            Err(SessionError::NoFeedbackObjects)
        ));
    }

    #[test]
    fn multiple_rounds_accumulate_history() {
        let sys = system();
        let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        for _ in 0..3 {
            let top = session.top_k(3);
            session.feedback(&[top[0].node]).unwrap();
        }
        assert_eq!(session.history().len(), 4);
        assert_eq!(session.round(), 3);
    }

    #[test]
    fn explain_summary_produces_meta_paths() {
        let sys = system();
        let session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let top = session.top_k(3);
        let summary = session.explain_summary(top[0].node, 5).unwrap();
        assert!(!summary.is_empty());
        for m in &summary {
            assert!(m.count >= 1);
            assert!(
                m.signature.contains("Paper")
                    || m.signature.contains("Year")
                    || m.signature.contains("Author")
                    || m.signature.contains("Conference")
            );
        }
    }

    #[test]
    fn snapshot_restore_undoes_feedback() {
        let sys = system();
        let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let checkpoint = session.snapshot();
        let before_top: Vec<u32> = session.top_k(10).iter().map(|r| r.node.raw()).collect();
        let top = session.top_k(3);
        session.feedback(&[top[0].node]).unwrap();
        assert_eq!(session.round(), 1);
        session.restore(checkpoint);
        assert_eq!(session.round(), 0);
        let after_top: Vec<u32> = session.top_k(10).iter().map(|r| r.node.raw()).collect();
        assert_eq!(before_top, after_top);
        // The restored session is fully functional: feedback again.
        let top = session.top_k(3);
        session.feedback(&[top[0].node]).unwrap();
        assert_eq!(session.round(), 1);
    }

    #[test]
    fn resume_rebuilds_an_equivalent_session() {
        let sys = system();
        let mut original = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let top = original.top_k(3);
        original.feedback(&[top[0].node]).unwrap();
        let snapshot = original.snapshot();
        let expected: Vec<u32> = original.top_k(10).iter().map(|r| r.node.raw()).collect();

        let mut resumed = QuerySession::resume(&sys, snapshot);
        assert_eq!(resumed.round(), 1);
        let got: Vec<u32> = resumed.top_k(10).iter().map(|r| r.node.raw()).collect();
        assert_eq!(expected, got, "resume must not perturb the ranking");

        // The resumed session continues the feedback loop identically to
        // the original (same warm-start scores, same rates).
        let pick = original.top_k(3)[0].node;
        original.feedback(&[pick]).unwrap();
        resumed.feedback(&[pick]).unwrap();
        let a: Vec<u32> = original.top_k(10).iter().map(|r| r.node.raw()).collect();
        let b: Vec<u32> = resumed.top_k(10).iter().map(|r| r.node.raw()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn resume_rejects_foreign_snapshots() {
        let sys = system();
        let session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let mut snapshot = session.snapshot();
        snapshot.scores.pop();
        let _ = QuerySession::resume(&sys, snapshot);
    }

    #[test]
    fn structure_only_feedback_keeps_query() {
        let sys = system();
        let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let q_before = session.query_vector().clone();
        let top = session.top_k(3);
        session
            .feedback_with(&[top[0].node], &ReformulateParams::structure_only(0.5))
            .unwrap();
        assert_eq!(session.query_vector(), &q_before);
    }
}
