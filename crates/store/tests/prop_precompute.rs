//! Property-based check of the Linearity combination (Section 6.2):
//! for ANY multi-keyword query covered by the precomputed store — any
//! subset of stored terms, any positive weights — the combined vector
//! matches a live power iteration within the convergence epsilon (plus
//! f32 storage rounding).

use orex_authority::{object_rank2, RankParams, TransitionMatrix};
use orex_core::{ObjectRankSystem, SystemConfig};
use orex_datagen::{generate_dblp, DblpConfig, TextConfig};
use orex_ir::{Okapi, QueryVector};
use orex_store::PrecomputedRanks;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One system + precomputed store shared by every proptest case: the
/// build is the expensive part, the property varies only the query.
struct Fixture {
    system: ObjectRankSystem,
    params: RankParams,
    store: PrecomputedRanks,
    terms: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let d = generate_dblp(
            "prop-precompute",
            &DblpConfig {
                papers: 200,
                authors: 80,
                conferences: 3,
                years_per_conference: 3,
                text: TextConfig {
                    vocab_size: 500,
                    topics: 5,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        );
        let system = ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default());
        let params = RankParams {
            epsilon: 1e-8,
            max_iterations: 1000,
            ..system.config().rank
        };
        let index = system.index();
        let mut by_df: Vec<(u32, String)> = (0..index.vocabulary_size() as u32)
            .map(|t| (index.df(t), index.term_text(t).to_string()))
            .collect();
        by_df.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let requested: Vec<String> = by_df.into_iter().take(24).map(|(_, t)| t).collect();
        let matrix = TransitionMatrix::new(system.transfer(), system.initial_rates());
        let store = PrecomputedRanks::build(
            &matrix,
            system.index(),
            &Okapi::default(),
            &requested,
            &params,
            42,
        );
        let terms: Vec<String> = store.terms().iter().map(|t| t.to_string()).collect();
        assert!(terms.len() >= 8, "too few terms built for the property");
        Fixture {
            system,
            params,
            store,
            terms,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn combined_matches_live_for_any_covered_query(
        picks in proptest::collection::vec(0usize..8, 1..5),
        weights in proptest::collection::vec(0.1f64..8.0, 4..5),
    ) {
        let fx = fixture();
        let mut picks = picks;
        picks.sort_unstable();
        picks.dedup();
        let pairs: Vec<(String, f64)> = picks
            .iter()
            .enumerate()
            .map(|(i, &p)| (fx.terms[p].clone(), weights[i % weights.len()]))
            .collect();
        let qv = QueryVector::from_weights(pairs);
        prop_assert!(fx.store.covers(&qv, fx.system.index()));
        let combined = fx.store.combine(&qv, &Okapi::default()).unwrap();
        let matrix = TransitionMatrix::new(fx.system.transfer(), fx.system.initial_rates());
        let live = object_rank2(
            &matrix,
            fx.system.index(),
            &qv,
            &Okapi::default(),
            &fx.params,
            None,
        )
        .unwrap();
        let diff: f64 = combined
            .iter()
            .zip(&live.scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        // Convex combination of vectors each within eps of their
        // fixpoint, plus f32 storage rounding of unit-scale scores.
        prop_assert!(
            diff < fx.params.epsilon * 10.0 + 1e-4,
            "L1 divergence {} for query {:?}",
            diff,
            qv
        );
    }
}
