//! Property-based tests for the persistence layer: arbitrary payloads
//! round-trip exactly; arbitrary single-byte corruption is detected.

use bytes::Bytes;
use orex_store::{Reader, Writer};
use proptest::prelude::*;

const MAGIC: &[u8; 8] = b"OREXPROP";

/// A mixed payload of primitives and strings.
#[derive(Clone, Debug)]
enum Item {
    U32(u32),
    U64(u64),
    F64(f64),
    Str(String),
}

fn item_strategy() -> impl Strategy<Value = Item> {
    prop_oneof![
        any::<u32>().prop_map(Item::U32),
        any::<u64>().prop_map(Item::U64),
        // Finite floats only: NaN round-trips bitwise but compares unequal.
        (-1e12f64..1e12).prop_map(Item::F64),
        "[a-zA-Z0-9 äöü]{0,40}".prop_map(Item::Str),
    ]
}

proptest! {
    /// Encode/decode round-trips any payload exactly.
    #[test]
    fn payload_roundtrip(items in proptest::collection::vec(item_strategy(), 0..50)) {
        let mut w = Writer::with_magic(MAGIC);
        for item in &items {
            match item {
                Item::U32(v) => w.put_u32(*v),
                Item::U64(v) => w.put_u64(*v),
                Item::F64(v) => w.put_f64(*v),
                Item::Str(s) => w.put_str(s),
            }
        }
        let data = w.finish();
        let mut r = Reader::open(data, MAGIC).unwrap();
        for item in &items {
            match item {
                Item::U32(v) => prop_assert_eq!(r.get_u32().unwrap(), *v),
                Item::U64(v) => prop_assert_eq!(r.get_u64().unwrap(), *v),
                Item::F64(v) => prop_assert_eq!(r.get_f64().unwrap(), *v),
                Item::Str(s) => prop_assert_eq!(&r.get_str().unwrap(), s),
            }
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Any single flipped bit anywhere in the snapshot is detected
    /// (either by the checksum or as a structural error).
    #[test]
    fn single_bit_corruption_detected(
        items in proptest::collection::vec(item_strategy(), 1..20),
        byte_pos in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut w = Writer::with_magic(MAGIC);
        for item in &items {
            match item {
                Item::U32(v) => w.put_u32(*v),
                Item::U64(v) => w.put_u64(*v),
                Item::F64(v) => w.put_f64(*v),
                Item::Str(s) => w.put_str(s),
            }
        }
        let data = w.finish();
        let mut corrupt = data.to_vec();
        let pos = byte_pos.index(corrupt.len());
        corrupt[pos] ^= 1 << bit;
        // Open must fail: the checksum covers the body, and a flipped
        // trailer bit breaks the stored checksum itself.
        prop_assert!(Reader::open(Bytes::from(corrupt), MAGIC).is_err());
    }

    /// Truncation at any point is detected.
    #[test]
    fn truncation_detected(
        items in proptest::collection::vec(item_strategy(), 1..20),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut w = Writer::with_magic(MAGIC);
        for item in &items {
            match item {
                Item::U32(v) => w.put_u32(*v),
                Item::U64(v) => w.put_u64(*v),
                Item::F64(v) => w.put_f64(*v),
                Item::Str(s) => w.put_str(s),
            }
        }
        let data = w.finish();
        let keep = cut.index(data.len()); // 0 <= keep < len: always shorter
        prop_assert!(Reader::open(data.slice(..keep), MAGIC).is_err());
    }
}
