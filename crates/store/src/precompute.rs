//! Precomputed single-keyword rank vectors with **exact** query-time
//! combination.
//!
//! Section 6.2's scalability answer (following BHP04) is to compute
//! single-keyword ObjectRank2 vectors offline and answer multi-keyword
//! queries by the Linearity property: the fixpoint of Equation 4 is
//! linear in the jump vector `s`, so for a query `Q` whose normalized
//! base set decomposes as `s_Q = Σ_t c_t · s_t` the ranking is exactly
//! `r_Q = Σ_t c_t · r_t` — no iteration at serving time.
//!
//! Unlike [`crate::RankCache`] (which composes an *approximate*
//! warm-start seed), this store keeps the ingredient the exact
//! combination needs: each term's **unit base mass** — the L1 weight of
//! its raw IR base-set scores at query weight 1.0. The live path builds
//! `s_Q` by summing `query_factor(w_t) ·` (raw per-term scores) and
//! normalizing, so the correct coefficients are
//! `c_t = query_factor(w_t)·mass_t / Σ_u query_factor(w_u)·mass_u`
//! (any factor common to all terms cancels in the normalization). The
//! per-term vectors are converged to the same epsilon as a live run, and
//! the coefficients are a convex combination, so the combined vector
//! matches live iteration within that epsilon (plus f32 storage
//! rounding).
//!
//! A manifest travels with the vectors: dataset hash (FNV-1a of the
//! encoded graph snapshot), node count, damping, epsilon and the term
//! list, so a serving process can refuse vectors computed for a
//! different graph or iteration regime.

use crate::codec::{Reader, Writer};
use crate::error::{Result, StoreError};
use bytes::Bytes;
use orex_authority::{
    global_object_rank, power_iteration_batch, BaseSet, RankParams, TransitionMatrix,
};
use orex_ir::{InvertedIndex, QueryVector, Scorer};
use std::collections::HashMap;
use std::path::Path;

const PRECOMPUTE_MAGIC: &[u8; 8] = b"OREXPREC";

const LOG_TARGET: &str = "store.precompute";

/// One precomputed term: its converged rank vector (f32 to halve the
/// footprint) and the unit base mass used by the exact combination.
#[derive(Clone, Debug)]
struct TermVector {
    /// L1 weight of the term's raw base-set scores at query weight 1.0.
    mass: f64,
    scores: Vec<f32>,
}

/// A store of precomputed single-keyword ObjectRank2 vectors plus the
/// manifest needed to combine and validate them.
#[derive(Clone, Debug)]
pub struct PrecomputedRanks {
    /// FNV-1a hash of the encoded graph snapshot the vectors were
    /// computed against.
    dataset_hash: u64,
    node_count: usize,
    damping: f64,
    epsilon: f64,
    entries: HashMap<String, TermVector>,
}

/// The raw base-set scores and unit mass of a single term at query
/// weight 1.0, shared by offline builds and online backfill.
///
/// Returns `None` when the term does not occur in the index (its base
/// set is empty — live ranking would skip it too).
pub fn term_base(index: &InvertedIndex, scorer: &dyn Scorer, term: &str) -> Option<(f64, BaseSet)> {
    let qv = QueryVector::from_weights([(term.to_string(), 1.0)]);
    let pairs = index.base_set_scores(&qv, scorer);
    let mass: f64 = pairs.iter().map(|&(_, s)| s.max(0.0)).sum();
    if mass <= 0.0 {
        return None;
    }
    BaseSet::weighted(pairs).ok().map(|base| (mass, base))
}

impl PrecomputedRanks {
    /// An empty store for a graph with `node_count` nodes.
    pub fn new(dataset_hash: u64, node_count: usize, damping: f64, epsilon: f64) -> Self {
        Self {
            dataset_hash,
            node_count,
            damping,
            epsilon,
            entries: HashMap::new(),
        }
    }

    /// Builds vectors for `terms` through the batched power-iteration
    /// kernel: every term's base-set column advances through one shared
    /// matrix sweep per iteration, warm-started from the global
    /// ObjectRank vector. Terms that never occur in the index are
    /// skipped (they contribute nothing to any live base set either).
    pub fn build(
        matrix: &TransitionMatrix<'_>,
        index: &InvertedIndex,
        scorer: &dyn Scorer,
        terms: &[String],
        params: &RankParams,
        dataset_hash: u64,
    ) -> Self {
        let telemetry = orex_telemetry::global();
        let _span = telemetry.span("store.precompute.build_us");
        let mut store = Self::new(
            dataset_hash,
            matrix.node_count(),
            params.damping,
            params.epsilon,
        );
        let global = global_object_rank(matrix, params);
        let mut kept: Vec<(&String, f64)> = Vec::with_capacity(terms.len());
        let mut bases: Vec<BaseSet> = Vec::with_capacity(terms.len());
        for term in terms {
            if let Some((mass, base)) = term_base(index, scorer, term) {
                kept.push((term, mass));
                bases.push(base);
            }
        }
        let results = power_iteration_batch(matrix, &bases, params, Some(&global.scores));
        let mut unconverged = 0usize;
        for ((term, mass), result) in kept.into_iter().zip(results) {
            if !result.converged {
                unconverged += 1;
            }
            store.insert(term.clone(), mass, &result.scores);
        }
        telemetry
            .counter("store.precompute.terms_built")
            .add(store.len() as u64);
        orex_telemetry::logger()
            .info(LOG_TARGET, "precompute build finished")
            .field_u64("requested", terms.len() as u64)
            .field_u64("built", store.len() as u64)
            .field_u64("unconverged", unconverged as u64)
            .field_u64("dataset_hash", dataset_hash)
            .emit();
        store
    }

    /// Stores one term's vector and unit mass (the online backfill path).
    ///
    /// # Panics
    /// Panics on dimension mismatch or non-positive mass.
    pub fn insert(&mut self, term: impl Into<String>, mass: f64, scores: &[f64]) {
        assert_eq!(scores.len(), self.node_count, "score dimension mismatch");
        assert!(mass > 0.0, "unit base mass must be positive");
        self.entries.insert(
            term.into(),
            TermVector {
                mass,
                scores: scores.iter().map(|&s| s as f32).collect(),
            },
        );
    }

    /// Dataset fingerprint the vectors were computed against.
    pub fn dataset_hash(&self) -> u64 {
        self.dataset_hash
    }

    /// Node dimension of every stored vector.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Damping factor the vectors were converged under.
    pub fn damping(&self) -> f64 {
        self.damping
    }

    /// Convergence epsilon the vectors were converged under.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of stored term vectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if a term's vector is stored.
    pub fn contains(&self, term: &str) -> bool {
        self.entries.contains_key(term)
    }

    /// Stored terms, sorted (for deterministic manifests).
    pub fn terms(&self) -> Vec<&str> {
        let mut terms: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        terms.sort_unstable();
        terms
    }

    /// A term's unit base mass, when stored.
    pub fn mass(&self, term: &str) -> Option<f64> {
        self.entries.get(term).map(|e| e.mass)
    }

    /// The query terms the combination would miss: positively-weighted,
    /// present in the index (so they shape the live base set), but not
    /// stored here. An empty return means the query is covered.
    pub fn missing_terms(&self, query: &QueryVector, index: &InvertedIndex) -> Vec<String> {
        query
            .iter()
            .filter(|&(term, weight)| {
                weight > 0.0 && index.term_id(term).is_some() && !self.contains(term)
            })
            .map(|(term, _)| term.to_string())
            .collect()
    }

    /// True when every index-matching query term has a stored vector.
    pub fn covers(&self, query: &QueryVector, index: &InvertedIndex) -> bool {
        self.missing_terms(query, index).is_empty()
    }

    /// Answers a query by the exact linear combination
    /// `r_Q = Σ_t c_t · r_t` with
    /// `c_t = query_factor(w_t)·mass_t / Σ_u query_factor(w_u)·mass_u`.
    ///
    /// Only stored terms participate; callers wanting live-equivalence
    /// must check [`Self::covers`] first. Returns `None` when no stored
    /// term carries positive combined weight (the live path would reject
    /// the query with an empty base set in that case). The scorer must be
    /// the one the index's base sets are scored with — its
    /// `query_factor` shapes the coefficients.
    pub fn combine(&self, query: &QueryVector, scorer: &dyn Scorer) -> Option<Vec<f64>> {
        let telemetry = orex_telemetry::global();
        let mut combined = vec![0.0f64; self.node_count];
        let mut total = 0.0f64;
        for (term, weight) in query.iter() {
            let qf = scorer.query_factor(weight);
            if qf <= 0.0 {
                continue;
            }
            if let Some(entry) = self.entries.get(term) {
                let c = qf * entry.mass;
                for (acc, &s) in combined.iter_mut().zip(&entry.scores) {
                    *acc += c * s as f64;
                }
                total += c;
            }
        }
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        for v in &mut combined {
            *v /= total;
        }
        telemetry.counter("store.precompute.combines").incr();
        Some(combined)
    }

    /// Serializes the store (manifest header, then sorted term entries).
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_magic(PRECOMPUTE_MAGIC);
        w.put_u64(self.dataset_hash);
        w.put_f64(self.damping);
        w.put_f64(self.epsilon);
        w.put_u32(self.node_count as u32);
        w.put_u32(self.entries.len() as u32);
        let mut terms: Vec<&String> = self.entries.keys().collect();
        terms.sort_unstable();
        for term in terms {
            let entry = &self.entries[term];
            w.put_str(term);
            w.put_f64(entry.mass);
            for &v in &entry.scores {
                w.put_f32(v);
            }
        }
        w.finish()
    }

    /// Deserializes a store.
    pub fn decode(data: Bytes) -> Result<Self> {
        let mut r = Reader::open(data, PRECOMPUTE_MAGIC)?;
        let dataset_hash = r.get_u64()?;
        let damping = r.get_f64()?;
        let epsilon = r.get_f64()?;
        if !(0.0..1.0).contains(&damping) {
            return Err(StoreError::Corrupt(format!("bad damping {damping}")));
        }
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(StoreError::Corrupt(format!("bad epsilon {epsilon}")));
        }
        let node_count = r.get_u32()? as usize;
        let entry_count = r.get_u32()? as usize;
        let mut entries = HashMap::with_capacity(entry_count);
        for _ in 0..entry_count {
            let term = r.get_str()?;
            let mass = r.get_f64()?;
            if !(mass > 0.0 && mass.is_finite()) {
                return Err(StoreError::Corrupt(format!("bad mass for '{term}'")));
            }
            if node_count.checked_mul(4).is_none_or(|n| n > r.remaining()) {
                return Err(StoreError::Corrupt("vector exceeds data".into()));
            }
            let mut scores = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                scores.push(r.get_f32()?);
            }
            entries.insert(term, TermVector { mass, scores });
        }
        if r.remaining() != 0 {
            return Err(StoreError::Corrupt("trailing bytes after vectors".into()));
        }
        Ok(Self {
            dataset_hash,
            node_count,
            damping,
            epsilon,
            entries,
        })
    }

    /// Writes the store to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let telemetry = orex_telemetry::global();
        let _span = telemetry.span("store.precompute.save_us");
        let data = self.encode();
        let bytes = data.len() as u64;
        std::fs::write(&path, data)?;
        orex_telemetry::logger()
            .info(LOG_TARGET, "precomputed ranks saved")
            .field_str("path", path.as_ref().to_string_lossy())
            .field_u64("bytes", bytes)
            .field_u64("terms", self.entries.len() as u64)
            .emit();
        Ok(())
    }

    /// Loads a store from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let telemetry = orex_telemetry::global();
        let _span = telemetry.span("store.precompute.load_us");
        let data = std::fs::read(&path)?;
        let bytes = data.len() as u64;
        let store = Self::decode(Bytes::from(data))?;
        orex_telemetry::logger()
            .info(LOG_TARGET, "precomputed ranks loaded")
            .field_str("path", path.as_ref().to_string_lossy())
            .field_u64("bytes", bytes)
            .field_u64("terms", store.entries.len() as u64)
            .emit();
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_authority::object_rank2;
    use orex_core::{ObjectRankSystem, SystemConfig};
    use orex_datagen::{generate_dblp, DblpConfig, TextConfig};
    use orex_ir::Okapi;

    fn system() -> ObjectRankSystem {
        let d = generate_dblp(
            "precompute",
            &DblpConfig {
                papers: 300,
                authors: 120,
                conferences: 4,
                years_per_conference: 4,
                text: TextConfig {
                    vocab_size: 800,
                    topics: 6,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        );
        ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default())
    }

    /// Terms sorted by descending document frequency, the precompute
    /// selection order.
    fn top_terms(sys: &ObjectRankSystem, n: usize) -> Vec<String> {
        let index = sys.index();
        let mut by_df: Vec<(u32, String)> = (0..index.vocabulary_size() as u32)
            .map(|t| (index.df(t), index.term_text(t).to_string()))
            .collect();
        by_df.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        by_df.into_iter().take(n).map(|(_, t)| t).collect()
    }

    #[test]
    fn combined_matches_live_iteration_within_epsilon() {
        let sys = system();
        let matrix = TransitionMatrix::new(sys.transfer(), sys.initial_rates());
        let params = RankParams {
            epsilon: 1e-8,
            max_iterations: 1000,
            ..sys.config().rank
        };
        let terms = top_terms(&sys, 32);
        let store =
            PrecomputedRanks::build(&matrix, sys.index(), &Okapi::default(), &terms, &params, 7);
        assert!(store.len() > 8, "expected most top terms to build");
        // A multi-keyword query fully covered by the store, with uneven
        // weights to exercise the query_factor path.
        let mut qv = QueryVector::from_weights([
            (terms[0].clone(), 1.0),
            (terms[3].clone(), 2.5),
            (terms[5].clone(), 0.5),
        ]);
        qv.add_weight(&terms[1], 1.0);
        assert!(store.covers(&qv, sys.index()));
        let combined = store.combine(&qv, &Okapi::default()).unwrap();
        let live =
            object_rank2(&matrix, sys.index(), &qv, &Okapi::default(), &params, None).unwrap();
        let diff: f64 = combined
            .iter()
            .zip(&live.scores)
            .map(|(a, b)| (a - b).abs())
            .sum();
        // Convex combination of vectors each within eps of their fixpoint,
        // plus f32 storage rounding of unit-scale scores.
        assert!(diff < params.epsilon * 10.0 + 1e-4, "L1 diff {diff}");
    }

    #[test]
    fn coverage_distinguishes_unknown_and_uncached_terms() {
        let sys = system();
        let matrix = TransitionMatrix::new(sys.transfer(), sys.initial_rates());
        let terms = top_terms(&sys, 4);
        let store = PrecomputedRanks::build(
            &matrix,
            sys.index(),
            &Okapi::default(),
            &terms,
            &sys.config().rank,
            1,
        );
        // A term absent from the vocabulary contributes nothing to a live
        // base set, so it must not break coverage.
        let qv =
            QueryVector::from_weights([(terms[0].clone(), 1.0), ("zzzzunknown".to_string(), 1.0)]);
        assert!(store.covers(&qv, sys.index()));
        // A real vocabulary term without a stored vector does.
        let uncached = (0..sys.index().vocabulary_size() as u32)
            .map(|t| sys.index().term_text(t).to_string())
            .find(|t| !store.contains(t) && sys.index().term_id(t).is_some())
            .expect("some term is uncached");
        let qv = QueryVector::from_weights([(terms[0].clone(), 1.0), (uncached.clone(), 1.0)]);
        assert!(!store.covers(&qv, sys.index()));
        assert_eq!(store.missing_terms(&qv, sys.index()), vec![uncached]);
    }

    #[test]
    fn combine_returns_none_without_applicable_terms() {
        let store = PrecomputedRanks::new(0, 3, 0.85, 0.002);
        let qv = QueryVector::from_weights([("anything", 1.0)]);
        assert!(store.combine(&qv, &Okapi::default()).is_none());
    }

    #[test]
    fn backfill_insert_matches_offline_build() {
        let sys = system();
        let matrix = TransitionMatrix::new(sys.transfer(), sys.initial_rates());
        let params = sys.config().rank;
        let terms = top_terms(&sys, 6);
        let offline =
            PrecomputedRanks::build(&matrix, sys.index(), &Okapi::default(), &terms, &params, 3);
        // Rebuild one term the way the server backfill does.
        let term = &terms[0];
        let (mass, base) = term_base(sys.index(), &Okapi::default(), term).unwrap();
        let global = global_object_rank(&matrix, &params);
        let results = power_iteration_batch(&matrix, &[base], &params, Some(&global.scores));
        let mut online =
            PrecomputedRanks::new(3, matrix.node_count(), params.damping, params.epsilon);
        online.insert(term.clone(), mass, &results[0].scores);
        assert_eq!(offline.mass(term), online.mass(term));
        let qv = QueryVector::from_weights([(term.clone(), 1.0)]);
        assert_eq!(
            offline.combine(&qv, &Okapi::default()),
            online.combine(&qv, &Okapi::default())
        );
    }

    #[test]
    fn encode_decode_roundtrip_preserves_manifest() {
        let mut store = PrecomputedRanks::new(0xDEADBEEF, 3, 0.8, 0.001);
        store.insert("alpha", 2.5, &[0.1, 0.2, 0.7]);
        store.insert("beta", 0.5, &[0.6, 0.3, 0.1]);
        let decoded = PrecomputedRanks::decode(store.encode()).unwrap();
        assert_eq!(decoded.dataset_hash(), 0xDEADBEEF);
        assert_eq!(decoded.node_count(), 3);
        assert_eq!(decoded.damping(), 0.8);
        assert_eq!(decoded.epsilon(), 0.001);
        assert_eq!(decoded.terms(), vec!["alpha", "beta"]);
        assert_eq!(decoded.mass("alpha"), Some(2.5));
        let qv = QueryVector::from_weights([("alpha", 1.0), ("beta", 1.0)]);
        assert_eq!(
            decoded.combine(&qv, &Okapi::default()),
            store.combine(&qv, &Okapi::default())
        );
    }

    #[test]
    fn decode_rejects_corruption_and_bad_manifest() {
        let mut store = PrecomputedRanks::new(1, 2, 0.85, 0.002);
        store.insert("x", 1.0, &[0.4, 0.6]);
        let mut data = store.encode().to_vec();
        let mid = data.len() - 10;
        data[mid] ^= 0x40;
        assert!(PrecomputedRanks::decode(Bytes::from(data)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut store = PrecomputedRanks::new(9, 2, 0.85, 0.002);
        store.insert("k", 1.5, &[0.3, 0.7]);
        let path = std::env::temp_dir().join("orex-precompute-test.bin");
        store.save(&path).unwrap();
        let loaded = PrecomputedRanks::load(&path).unwrap();
        assert_eq!(loaded.terms(), store.terms());
        assert_eq!(loaded.mass("k"), store.mass("k"));
        let _ = std::fs::remove_file(&path);
    }
}
