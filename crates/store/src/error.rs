//! Error type for the persistence layer.

use std::fmt;

/// Errors raised while reading or writing snapshots and caches.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The payload fails structural validation (bad magic, truncated
    /// buffer, checksum mismatch, dangling reference...).
    Corrupt(String),
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// Reconstructed graph failed conformance checks.
    Graph(orex_graph::GraphError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            StoreError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found}, this build reads {expected}")
            }
            StoreError::Graph(e) => write!(f, "invalid graph in snapshot: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<orex_graph::GraphError> for StoreError {
    fn from(e: orex_graph::GraphError) -> Self {
        StoreError::Graph(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StoreError::VersionMismatch {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = StoreError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }
}
