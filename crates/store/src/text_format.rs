//! Plain-text dataset format: import your own data graph.
//!
//! Snapshots (`snapshot.rs`) are for round-tripping `orex`'s own data; a
//! downstream user bringing their *own* database needs a format they can
//! emit from any scripting language. The `.orexg` text format is
//! line-oriented:
//!
//! ```text
//! # comments and blank lines are ignored
//! nodetype Paper
//! nodetype Author
//! edgetype cites Paper Paper
//! edgetype by    Paper Author
//!
//! node p1 Paper Title="Data Cube: A Relational Aggregation Operator" Year="1996"
//! node a1 Author Name="R. Agrawal"
//! edge p1 by a1
//! edge p1 cites p0
//! ```
//!
//! Node ids are arbitrary strings, resolved to dense [`NodeId`]s in
//! declaration order. Attribute values are double-quoted with `\"` and
//! `\\` escapes (bare values without spaces are also accepted). Every
//! error reports its line number.

use crate::error::{Result, StoreError};
use orex_graph::{Attribute, DataGraph, DataGraphBuilder, NodeId, SchemaGraph};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

fn corrupt(line_no: usize, msg: impl std::fmt::Display) -> StoreError {
    StoreError::Corrupt(format!("line {line_no}: {msg}"))
}

/// Parses a dataset from the text format.
pub fn parse_text(input: &str) -> Result<DataGraph> {
    let mut schema = SchemaGraph::new();
    let mut node_types = HashMap::new();
    let mut edge_types: HashMap<String, orex_graph::EdgeTypeId> = HashMap::new();
    // Builder is created lazily at the first node line, freezing the
    // schema section.
    let mut builder: Option<DataGraphBuilder> = None;
    let mut node_ids: HashMap<String, NodeId> = HashMap::new();

    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match verb {
            "nodetype" => {
                if builder.is_some() {
                    return Err(corrupt(
                        line_no,
                        "schema lines must precede node/edge lines",
                    ));
                }
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(corrupt(line_no, "usage: nodetype <Label>"));
                }
                let id = schema
                    .add_node_type(rest)
                    .map_err(|e| corrupt(line_no, e))?;
                node_types.insert(rest.to_string(), id);
            }
            "edgetype" => {
                if builder.is_some() {
                    return Err(corrupt(
                        line_no,
                        "schema lines must precede node/edge lines",
                    ));
                }
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [label, src, dst] = parts.as_slice() else {
                    return Err(corrupt(
                        line_no,
                        "usage: edgetype <label> <SrcType> <DstType>",
                    ));
                };
                let &src_t = node_types
                    .get(*src)
                    .ok_or_else(|| corrupt(line_no, format!("unknown node type '{src}'")))?;
                let &dst_t = node_types
                    .get(*dst)
                    .ok_or_else(|| corrupt(line_no, format!("unknown node type '{dst}'")))?;
                let id = schema
                    .add_edge_type(src_t, dst_t, *label)
                    .map_err(|e| corrupt(line_no, e))?;
                edge_types.insert((*label).to_string(), id);
            }
            "node" => {
                let b = builder.get_or_insert_with(|| DataGraphBuilder::new(schema.clone()));
                let (key, rest) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| corrupt(line_no, "usage: node <id> <Type> [attrs]"))?;
                let (type_label, attr_text) = rest
                    .trim()
                    .split_once(char::is_whitespace)
                    .unwrap_or((rest.trim(), ""));
                let &nt = node_types
                    .get(type_label)
                    .ok_or_else(|| corrupt(line_no, format!("unknown node type '{type_label}'")))?;
                let attrs = parse_attributes(attr_text, line_no)?;
                let node = b.add_node(nt, attrs).map_err(|e| corrupt(line_no, e))?;
                if node_ids.insert(key.to_string(), node).is_some() {
                    return Err(corrupt(line_no, format!("duplicate node id '{key}'")));
                }
            }
            "edge" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| corrupt(line_no, "edge before any node"))?;
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [src, label, dst] = parts.as_slice() else {
                    return Err(corrupt(line_no, "usage: edge <src> <label> <dst>"));
                };
                let &s = node_ids
                    .get(*src)
                    .ok_or_else(|| corrupt(line_no, format!("unknown node '{src}'")))?;
                let &d = node_ids
                    .get(*dst)
                    .ok_or_else(|| corrupt(line_no, format!("unknown node '{dst}'")))?;
                let &et = edge_types
                    .get(*label)
                    .ok_or_else(|| corrupt(line_no, format!("unknown edge type '{label}'")))?;
                b.add_edge(s, d, et).map_err(|e| corrupt(line_no, e))?;
            }
            other => return Err(corrupt(line_no, format!("unknown directive '{other}'"))),
        }
    }
    let builder = builder.unwrap_or_else(|| DataGraphBuilder::new(schema));
    Ok(builder.freeze())
}

/// Parses `Name="value with spaces" Year=1996 ...`.
fn parse_attributes(text: &str, line_no: usize) -> Result<Vec<Attribute>> {
    let mut attrs = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(attrs);
        }
        let mut name = String::new();
        let mut found_eq = false;
        for c in chars.by_ref() {
            if c == '=' {
                found_eq = true;
                break;
            }
            if c.is_whitespace() {
                break;
            }
            name.push(c);
        }
        if !found_eq {
            return Err(corrupt(line_no, format!("attribute '{name}' missing '='")));
        }
        if name.is_empty() {
            return Err(corrupt(line_no, "empty attribute name"));
        }
        let mut value = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut closed = false;
            while let Some(c) = chars.next() {
                match c {
                    '"' => {
                        closed = true;
                        break;
                    }
                    '\\' => match chars.next() {
                        Some(e @ ('"' | '\\')) => value.push(e),
                        Some(other) => {
                            return Err(corrupt(
                                line_no,
                                format!("bad escape '\\{other}' in attribute '{name}'"),
                            ))
                        }
                        None => break,
                    },
                    _ => value.push(c),
                }
            }
            if !closed {
                return Err(corrupt(
                    line_no,
                    format!("unterminated string for '{name}'"),
                ));
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                value.push(c);
                chars.next();
            }
        }
        attrs.push(Attribute { name, value });
    }
}

/// Renders a data graph in the text format (inverse of [`parse_text`],
/// with node ids `n0, n1, ...`).
pub fn to_text(graph: &DataGraph) -> String {
    let schema = graph.schema();
    let mut out = String::new();
    for nt in schema.node_types() {
        let _ = writeln!(out, "nodetype {}", schema.node_label(nt));
    }
    for et in schema.edge_types() {
        let sig = schema.edge_type(et);
        let _ = writeln!(
            out,
            "edgetype {} {} {}",
            sig.label,
            schema.node_label(sig.source),
            schema.node_label(sig.target)
        );
    }
    out.push('\n');
    for node in graph.nodes() {
        let rec = graph.node(node);
        let _ = write!(
            out,
            "node n{} {}",
            node.raw(),
            schema.node_label(rec.node_type)
        );
        for attr in &rec.attributes {
            let escaped = attr.value.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = write!(out, " {}=\"{}\"", attr.name, escaped);
        }
        out.push('\n');
    }
    for edge in graph.edges() {
        let rec = graph.edge(edge);
        let _ = writeln!(
            out,
            "edge n{} {} n{}",
            rec.source.raw(),
            schema.edge_type(rec.edge_type).label,
            rec.target.raw()
        );
    }
    out
}

/// Loads a `.orexg` text-format dataset from a file.
pub fn load_text_graph(path: impl AsRef<Path>) -> Result<DataGraph> {
    let text = std::fs::read_to_string(path)?;
    parse_text(&text)
}

/// Saves a data graph in the text format.
pub fn save_text_graph(graph: &DataGraph, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, to_text(graph))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# a tiny bibliography
nodetype Paper
nodetype Author
edgetype cites Paper Paper
edgetype by Paper Author

node p0 Paper Title="Data Cube: A \"Relational\" Operator" Year=1996
node p1 Paper Title="Range Queries in OLAP"
node a0 Author Name="R. Agrawal"
edge p1 cites p0
edge p1 by a0
"#;

    #[test]
    fn parses_sample() {
        let g = parse_text(SAMPLE).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        g.verify_conformance().unwrap();
        // Quoted value with escapes.
        assert!(g.node_text(NodeId::new(0)).contains("\"Relational\""));
        // Bare value.
        assert!(g.node_text(NodeId::new(0)).contains("1996"));
    }

    #[test]
    fn roundtrips_through_to_text() {
        let g = parse_text(SAMPLE).unwrap();
        let rendered = to_text(&g);
        let g2 = parse_text(&rendered).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for node in g.nodes() {
            assert_eq!(g2.node_text(node), g.node_text(node));
            assert_eq!(g2.node_type(node), g.node_type(node));
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, &str)] = &[
            ("nodetype A\nnodetype A", "line 2"),
            ("bogus directive", "line 1"),
            ("nodetype A\nnode x B", "line 2"),
            ("nodetype A\nnode x A\nedge x r x", "line 3"),
            ("nodetype A\nnode x A\nnode x A", "line 3"),
            ("nodetype A\nnode x A Broken", "missing '='"),
            ("nodetype A\nnode x A V=\"unterminated", "unterminated"),
            ("nodetype A\nnode x A\nnodetype B", "must precede"),
        ];
        for (input, expect) in cases {
            let err = parse_text(input).unwrap_err().to_string();
            assert!(err.contains(expect), "{input:?}: {err}");
        }
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = parse_text("# nothing\n\n").unwrap();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn edge_type_signature_enforced() {
        let bad = "nodetype A\nnodetype B\nedgetype r A B\nnode x A\nnode y A\nedge x r y";
        let err = parse_text(bad).unwrap_err().to_string();
        assert!(err.contains("line 6"), "{err}");
    }

    #[test]
    fn file_roundtrip() {
        let g = parse_text(SAMPLE).unwrap();
        let path = std::env::temp_dir().join("orex-text-format-test.orexg");
        save_text_graph(&g, &path).unwrap();
        let g2 = load_text_graph(&path).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        let _ = std::fs::remove_file(&path);
    }

    use orex_graph::NodeId;
}
