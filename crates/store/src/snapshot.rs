//! Graph snapshots: serialize a [`DataGraph`] (with its schema) and a
//! [`TransferRates`] vector to a single binary blob / file.
//!
//! The paper's deployment keeps its datasets (Table 1) as databases; a
//! library needs an equivalent so large generated datasets and trained
//! rates survive process restarts. Loading re-runs conformance checks, so
//! a snapshot can never smuggle in an invalid graph.

use crate::codec::{Reader, Writer};
use crate::error::{Result, StoreError};
use bytes::Bytes;
use orex_graph::{
    Attribute, DataGraph, DataGraphBuilder, EdgeTypeId, NodeTypeId, SchemaGraph, TransferRates,
};
use std::path::Path;

const GRAPH_MAGIC: &[u8; 8] = b"OREXGRPH";
const RATES_MAGIC: &[u8; 8] = b"OREXRATE";

/// Serializes a data graph (schema + nodes + edges) to bytes.
pub fn encode_graph(graph: &DataGraph) -> Bytes {
    let schema = graph.schema();
    let mut w = Writer::with_magic(GRAPH_MAGIC);
    // Schema.
    w.put_u32(schema.node_type_count() as u32);
    for nt in schema.node_types() {
        w.put_str(schema.node_label(nt));
    }
    w.put_u32(schema.edge_type_count() as u32);
    for et in schema.edge_types() {
        let sig = schema.edge_type(et);
        w.put_u32(sig.source.raw());
        w.put_u32(sig.target.raw());
        w.put_str(&sig.label);
    }
    // Nodes.
    w.put_u32(graph.node_count() as u32);
    for node in graph.nodes() {
        let rec = graph.node(node);
        w.put_u32(rec.node_type.raw());
        w.put_u32(rec.attributes.len() as u32);
        for attr in &rec.attributes {
            w.put_str(&attr.name);
            w.put_str(&attr.value);
        }
    }
    // Edges.
    w.put_u32(graph.edge_count() as u32);
    for edge in graph.edges() {
        let rec = graph.edge(edge);
        w.put_u32(rec.source.raw());
        w.put_u32(rec.target.raw());
        w.put_u32(rec.edge_type.raw());
    }
    w.finish()
}

/// Reconstructs a data graph from bytes, re-validating conformance.
pub fn decode_graph(data: Bytes) -> Result<DataGraph> {
    let mut r = Reader::open(data, GRAPH_MAGIC)?;
    let mut schema = SchemaGraph::new();
    let node_types = r.get_u32()? as usize;
    for _ in 0..node_types {
        let label = r.get_str()?;
        schema.add_node_type(label)?;
    }
    let edge_types = r.get_u32()? as usize;
    for _ in 0..edge_types {
        let src = NodeTypeId::new(r.get_u32()?);
        let dst = NodeTypeId::new(r.get_u32()?);
        let label = r.get_str()?;
        schema.add_edge_type(src, dst, label)?;
    }
    let node_count = r.get_u32()? as usize;
    let mut builder = DataGraphBuilder::with_capacity(schema, node_count, 0);
    for _ in 0..node_count {
        let nt = NodeTypeId::new(r.get_u32()?);
        let attr_count = r.get_u32()? as usize;
        if attr_count > r.remaining() {
            return Err(StoreError::Corrupt("attribute count exceeds data".into()));
        }
        let mut attrs = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            attrs.push(Attribute {
                name: r.get_str()?,
                value: r.get_str()?,
            });
        }
        builder.add_node(nt, attrs)?;
    }
    let edge_count = r.get_u32()? as usize;
    for _ in 0..edge_count {
        let src = orex_graph::NodeId::new(r.get_u32()?);
        let dst = orex_graph::NodeId::new(r.get_u32()?);
        let et = EdgeTypeId::new(r.get_u32()?);
        builder.add_edge(src, dst, et)?;
    }
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt(format!(
            "{} trailing bytes after graph body",
            r.remaining()
        )));
    }
    Ok(builder.freeze())
}

/// Serializes a rates vector (dimension + dense values).
pub fn encode_rates(rates: &TransferRates) -> Bytes {
    let mut w = Writer::with_magic(RATES_MAGIC);
    w.put_u32(rates.len() as u32);
    for &r in rates.as_slice() {
        w.put_f64(r);
    }
    w.finish()
}

/// Reconstructs a rates vector; `schema` fixes the expected dimension and
/// validity constraints.
pub fn decode_rates(data: Bytes, schema: &SchemaGraph) -> Result<TransferRates> {
    let mut r = Reader::open(data, RATES_MAGIC)?;
    let len = r.get_u32()? as usize;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(r.get_f64()?);
    }
    if r.remaining() != 0 {
        return Err(StoreError::Corrupt("trailing bytes after rates".into()));
    }
    let rates = TransferRates::from_dense(schema, values)?;
    rates.validate(schema)?;
    Ok(rates)
}

/// Writes a graph snapshot to a file.
pub fn save_graph(graph: &DataGraph, path: impl AsRef<Path>) -> Result<()> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("store.snapshot.save_us");
    let data = encode_graph(graph);
    telemetry
        .counter("store.snapshot.bytes_written")
        .add(data.len() as u64);
    let bytes = data.len() as u64;
    std::fs::write(&path, data)?;
    orex_telemetry::logger()
        .info("store.snapshot", "graph snapshot saved")
        .field_str("path", path.as_ref().to_string_lossy())
        .field_u64("bytes", bytes)
        .field_u64("nodes", graph.node_count() as u64)
        .emit();
    Ok(())
}

/// Loads a graph snapshot from a file.
pub fn load_graph(path: impl AsRef<Path>) -> Result<DataGraph> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("store.snapshot.load_us");
    let data = std::fs::read(&path)?;
    telemetry
        .counter("store.snapshot.bytes_read")
        .add(data.len() as u64);
    orex_telemetry::logger()
        .info("store.snapshot", "graph snapshot loaded")
        .field_str("path", path.as_ref().to_string_lossy())
        .field_u64("bytes", data.len() as u64)
        .emit();
    decode_graph(Bytes::from(data))
}

/// Writes a rates snapshot to a file.
pub fn save_rates(rates: &TransferRates, path: impl AsRef<Path>) -> Result<()> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("store.snapshot.save_us");
    let data = encode_rates(rates);
    telemetry
        .counter("store.snapshot.bytes_written")
        .add(data.len() as u64);
    std::fs::write(path, data)?;
    Ok(())
}

/// Loads a rates snapshot from a file.
pub fn load_rates(path: impl AsRef<Path>, schema: &SchemaGraph) -> Result<TransferRates> {
    let telemetry = orex_telemetry::global();
    let _span = telemetry.span("store.snapshot.load_us");
    let data = std::fs::read(path)?;
    telemetry
        .counter("store.snapshot.bytes_read")
        .add(data.len() as u64);
    decode_rates(Bytes::from(data), schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_datagen::{generate_dblp, DblpConfig, TextConfig};

    fn sample() -> (DataGraph, TransferRates) {
        let d = generate_dblp(
            "snap",
            &DblpConfig {
                papers: 80,
                authors: 40,
                conferences: 3,
                years_per_conference: 3,
                text: TextConfig {
                    vocab_size: 500,
                    topics: 4,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        );
        (d.graph, d.ground_truth)
    }

    #[test]
    fn graph_roundtrip_preserves_everything() {
        let (graph, _) = sample();
        let decoded = decode_graph(encode_graph(&graph)).unwrap();
        assert_eq!(decoded.node_count(), graph.node_count());
        assert_eq!(decoded.edge_count(), graph.edge_count());
        assert_eq!(
            decoded.schema().node_type_count(),
            graph.schema().node_type_count()
        );
        for node in graph.nodes() {
            assert_eq!(decoded.node_text(node), graph.node_text(node));
            assert_eq!(decoded.node_type(node), graph.node_type(node));
        }
        for edge in graph.edges() {
            assert_eq!(decoded.edge(edge), graph.edge(edge));
        }
        decoded.verify_conformance().unwrap();
    }

    #[test]
    fn rates_roundtrip() {
        let (graph, rates) = sample();
        let decoded = decode_rates(encode_rates(&rates), graph.schema()).unwrap();
        assert_eq!(decoded, rates);
    }

    #[test]
    fn rates_dimension_checked_against_schema() {
        let (_graph, rates) = sample();
        let mut other_schema = SchemaGraph::new();
        let a = other_schema.add_node_type("A").unwrap();
        other_schema.add_edge_type(a, a, "r").unwrap();
        let err = decode_rates(encode_rates(&rates), &other_schema).unwrap_err();
        assert!(matches!(err, StoreError::Graph(_)));
    }

    #[test]
    fn corrupted_graph_rejected() {
        let (graph, _) = sample();
        let mut data = encode_graph(&graph).to_vec();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        assert!(decode_graph(Bytes::from(data)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let (graph, rates) = sample();
        let dir = std::env::temp_dir().join("orex-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("graph.orex");
        let rpath = dir.join("rates.orex");
        save_graph(&graph, &gpath).unwrap();
        save_rates(&rates, &rpath).unwrap();
        let g2 = load_graph(&gpath).unwrap();
        let r2 = load_rates(&rpath, g2.schema()).unwrap();
        assert_eq!(g2.edge_count(), graph.edge_count());
        assert_eq!(r2, rates);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_graph("/nonexistent/path/graph.orex").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
