//! # orex-store — persistence substrate
//!
//! Binary snapshots of data graphs and trained rates vectors, and the
//! precomputed rank-vector cache that Section 6.2 of the paper names as
//! the scalability path for exploratory search over the large datasets
//! ("precompute ObjectRank2 values as in \[BHP04\]"). All formats carry a
//! magic, a version and an FNV-1a checksum; loading re-validates graph
//! conformance and rates validity, so persistence cannot bypass the
//! invariants the in-memory builders enforce.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod codec;
mod error;
mod precompute;
mod rank_cache;
mod snapshot;
mod text_format;

pub use codec::{fnv1a, Reader, Writer, FORMAT_VERSION};
pub use error::{Result, StoreError};
pub use precompute::{term_base, PrecomputedRanks};
pub use rank_cache::{RankCache, GLOBAL_KEY};
pub use snapshot::{
    decode_graph, decode_rates, encode_graph, encode_rates, load_graph, load_rates, save_graph,
    save_rates,
};
pub use text_format::{load_text_graph, parse_text, save_text_graph, to_text};
