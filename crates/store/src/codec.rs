//! Low-level binary encoding: little-endian primitives, length-prefixed
//! strings, and an FNV-1a checksum trailer.
//!
//! The format favors simplicity and validation over cleverness: every
//! snapshot starts with an 8-byte magic and a u32 version, and ends with
//! a u64 FNV-1a checksum of everything before it, so truncation and
//! bit-rot are detected before any structure is trusted.

use crate::error::{Result, StoreError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Current snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// FNV-1a over a byte slice.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Binary writer accumulating into a [`BytesMut`].
#[derive(Debug, Default)]
pub struct Writer {
    buf: BytesMut,
}

impl Writer {
    /// Starts a snapshot with the given 8-byte magic.
    pub fn with_magic(magic: &[u8; 8]) -> Self {
        let mut w = Self {
            buf: BytesMut::with_capacity(4096),
        };
        w.buf.put_slice(magic);
        w.put_u32(FORMAT_VERSION);
        w
    }

    /// Appends a u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends an f32.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.put_f32_le(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        // orex::allow(ORX008): the u32 length prefix caps encodable
        // strings at 4 GiB; the strings written here are term and
        // label fields orders of magnitude below that, and a snapshot
        // that large would fail long before this conversion.
        self.put_u32(u32::try_from(s.len()).expect("string too long"));
        self.buf.put_slice(s.as_bytes());
    }

    /// Seals the snapshot: appends the checksum and returns the bytes.
    pub fn finish(mut self) -> Bytes {
        let checksum = fnv1a(&self.buf);
        self.buf.put_u64_le(checksum);
        self.buf.freeze()
    }
}

/// Binary reader over a validated snapshot body.
#[derive(Debug)]
pub struct Reader {
    buf: Bytes,
}

impl Reader {
    /// Validates magic, version and checksum, returning a reader over the
    /// body (everything after the header, before the checksum).
    pub fn open(data: Bytes, magic: &[u8; 8]) -> Result<Self> {
        if data.len() < 8 + 4 + 8 {
            return Err(StoreError::Corrupt("snapshot too small".into()));
        }
        let body_end = data.len() - 8;
        let mut trailer = &data[body_end..];
        let stored = trailer.get_u64_le();
        let actual = fnv1a(&data[..body_end]);
        if stored != actual {
            return Err(StoreError::Corrupt(format!(
                "checksum mismatch: stored {stored:#x}, computed {actual:#x}"
            )));
        }
        let mut buf = data.slice(..body_end);
        let mut found_magic = [0u8; 8];
        buf.copy_to_slice(&mut found_magic);
        if &found_magic != magic {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        let version = buf.get_u32_le();
        if version != FORMAT_VERSION {
            return Err(StoreError::VersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        Ok(Self { buf })
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            Err(StoreError::Corrupt(format!(
                "truncated: needed {n} bytes, {} left",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    /// Reads a u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads an f32.
    pub fn get_f32(&mut self) -> Result<f32> {
        self.need(4)?;
        Ok(self.buf.get_f32_le())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let bytes = self.buf.copy_to_bytes(len);
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("invalid utf-8 string".into()))
    }

    /// Remaining unread bytes (0 when fully consumed).
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"OREXTEST";

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::with_magic(MAGIC);
        w.put_u32(42);
        w.put_u64(1 << 40);
        w.put_f64(0.85);
        w.put_f32(0.5);
        w.put_str("olap cubes");
        w.put_str("");
        let data = w.finish();
        let mut r = Reader::open(data, MAGIC).unwrap();
        assert_eq!(r.get_u32().unwrap(), 42);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap(), 0.85);
        assert_eq!(r.get_f32().unwrap(), 0.5);
        assert_eq!(r.get_str().unwrap(), "olap cubes");
        assert_eq!(r.get_str().unwrap(), "");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn checksum_detects_flipped_bit() {
        let mut w = Writer::with_magic(MAGIC);
        w.put_str("payload");
        let data = w.finish();
        let mut corrupted = data.to_vec();
        corrupted[14] ^= 0x01;
        let err = Reader::open(Bytes::from(corrupted), MAGIC).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn wrong_magic_rejected() {
        let w = Writer::with_magic(MAGIC);
        let data = w.finish();
        let err = Reader::open(data, b"OTHERMAG").unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)));
    }

    #[test]
    fn truncated_rejected() {
        let mut w = Writer::with_magic(MAGIC);
        w.put_str("hello");
        let data = w.finish();
        let short = data.slice(..data.len() - 3);
        assert!(Reader::open(short, MAGIC).is_err());
    }

    #[test]
    fn truncated_read_within_body() {
        let mut w = Writer::with_magic(MAGIC);
        w.put_u32(1);
        let data = w.finish();
        let mut r = Reader::open(data, MAGIC).unwrap();
        r.get_u32().unwrap();
        assert!(r.get_u64().is_err());
    }

    #[test]
    fn fnv_known_values() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
