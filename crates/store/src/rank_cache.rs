//! Precomputed rank-vector cache.
//!
//! Section 6.2 of the paper notes that on-the-fly ObjectRank2 execution
//! over DBLPcomplete/DS7 is "clearly too long for exploratory searching"
//! and names precomputation "as in [BHP04]" as a remedy: BHP04 stores one
//! ObjectRank vector per keyword at crawl time. [`RankCache`] implements
//! that store — keyword-keyed score vectors (f32 to halve the footprint)
//! with binary persistence — plus the query-time composition that turns
//! cached single-keyword vectors into a warm-start seed for multi-keyword
//! queries.

use crate::codec::{Reader, Writer};
use crate::error::{Result, StoreError};
use bytes::Bytes;
use orex_authority::{object_rank2, RankParams, TransitionMatrix};
use orex_ir::{InvertedIndex, QueryVector, Scorer};
use std::collections::HashMap;
use std::path::Path;

const CACHE_MAGIC: &[u8; 8] = b"OREXRANK";

/// Reserved cache key for the query-independent global ObjectRank vector.
pub const GLOBAL_KEY: &str = "\u{0}global";

/// A keyword-keyed store of precomputed score vectors.
#[derive(Clone, Debug, Default)]
pub struct RankCache {
    node_count: usize,
    entries: HashMap<String, Vec<f32>>,
    /// Insertion order of keys, for capacity eviction. [`GLOBAL_KEY`] is
    /// exempt — evicting the global fallback would defeat the cache.
    insertion_order: Vec<String>,
    /// Maximum number of non-global entries; `None` = unbounded.
    capacity: Option<usize>,
}

impl RankCache {
    /// Empty cache for an `n`-node graph.
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count,
            entries: HashMap::new(),
            insertion_order: Vec::new(),
            capacity: None,
        }
    }

    /// Empty cache holding at most `capacity` non-global vectors; once
    /// full, inserting a new key evicts the oldest-inserted one
    /// (precomputation walks terms in descending document frequency, so
    /// oldest-in is the most conservative thing to drop re-computably).
    pub fn with_capacity(node_count: usize, capacity: usize) -> Self {
        Self {
            capacity: Some(capacity),
            ..Self::new(node_count)
        }
    }

    /// The eviction bound, when one was set.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Node dimension of every stored vector.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of cached vectors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores a vector under a key (downcast to f32), evicting the
    /// oldest-inserted non-global entry when over capacity.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn insert(&mut self, key: impl Into<String>, scores: &[f64]) {
        assert_eq!(scores.len(), self.node_count, "score dimension mismatch");
        let key = key.into();
        let fresh = self
            .entries
            .insert(key.clone(), scores.iter().map(|&s| s as f32).collect())
            .is_none();
        orex_telemetry::global()
            .counter("store.rank_cache.inserts")
            .incr();
        if key == GLOBAL_KEY {
            return;
        }
        if fresh {
            self.insertion_order.push(key);
        }
        if let Some(cap) = self.capacity {
            while self.insertion_order.len() > cap {
                let victim = self.insertion_order.remove(0);
                self.entries.remove(&victim);
                orex_telemetry::global()
                    .counter("store.rank_cache.evictions")
                    .incr();
                orex_telemetry::logger()
                    .debug("store.rank_cache", "evicted oldest entry")
                    .field_str("key", &victim)
                    .field_u64("capacity", cap as u64)
                    .emit();
            }
        }
    }

    /// True if a key is cached.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Fetches a vector (upcast to f64).
    pub fn get(&self, key: &str) -> Option<Vec<f64>> {
        let entry = self.entries.get(key);
        let telemetry = orex_telemetry::global();
        if entry.is_some() {
            telemetry.counter("store.rank_cache.hits").incr();
        } else {
            telemetry.counter("store.rank_cache.misses").incr();
        }
        entry.map(|v| v.iter().map(|&s| s as f64).collect())
    }

    /// The cached keys, sorted (for deterministic reporting).
    pub fn keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.entries.keys().map(String::as_str).collect();
        keys.sort_unstable();
        keys
    }

    /// Builds a warm-start seed for a query: the query-weighted average of
    /// the cached per-term vectors, falling back to the global vector for
    /// uncached terms, or `None` when nothing applicable is cached.
    ///
    /// This mirrors the BHP04 observation that the ObjectRank of a
    /// multi-keyword query is well-approximated near the combination of
    /// its single-keyword vectors — good enough to serve as an iteration
    /// seed even though the exact fixpoint differs.
    pub fn seed_for_query(&self, query: &QueryVector) -> Option<Vec<f64>> {
        let telemetry = orex_telemetry::global();
        let hits = telemetry.counter("store.rank_cache.hits");
        let misses = telemetry.counter("store.rank_cache.misses");
        let fallbacks = telemetry.counter("store.rank_cache.global_fallbacks");
        let mut seed = vec![0.0f64; self.node_count];
        let mut total_weight = 0.0;
        for (term, weight) in query.iter() {
            let entry = match self.entries.get(term) {
                Some(v) => {
                    hits.incr();
                    Some(v)
                }
                None => {
                    misses.incr();
                    let global = self.entries.get(GLOBAL_KEY);
                    if global.is_some() {
                        fallbacks.incr();
                    }
                    global
                }
            };
            if let Some(v) = entry {
                for (s, &x) in seed.iter_mut().zip(v) {
                    *s += weight * x as f64;
                }
                total_weight += weight;
            }
        }
        if total_weight <= 0.0 {
            return self.get(GLOBAL_KEY);
        }
        for s in &mut seed {
            *s /= total_weight;
        }
        Some(seed)
    }

    /// Precomputes single-keyword ObjectRank2 vectors for `terms`
    /// (analyzed terms), plus the global vector under [`GLOBAL_KEY`].
    /// Terms with empty base sets are skipped.
    pub fn precompute(
        matrix: &TransitionMatrix<'_>,
        index: &InvertedIndex,
        scorer: &dyn Scorer,
        terms: &[String],
        params: &RankParams,
    ) -> Self {
        let mut cache = Self::new(matrix.node_count());
        let global = orex_authority::global_object_rank(matrix, params);
        cache.insert(GLOBAL_KEY, &global.scores);
        for term in terms {
            let qv = QueryVector::from_weights([(term.clone(), 1.0)]);
            if let Ok(result) =
                object_rank2(matrix, index, &qv, scorer, params, Some(&global.scores))
            {
                cache.insert(term.clone(), &result.scores);
            }
        }
        cache
    }

    /// Serializes the cache.
    pub fn encode(&self) -> Bytes {
        let mut w = Writer::with_magic(CACHE_MAGIC);
        w.put_u32(self.node_count as u32);
        w.put_u32(self.entries.len() as u32);
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort_unstable();
        for key in keys {
            w.put_str(key);
            for &v in &self.entries[key] {
                w.put_f32(v);
            }
        }
        w.finish()
    }

    /// Deserializes a cache.
    pub fn decode(data: Bytes) -> Result<Self> {
        let mut r = Reader::open(data, CACHE_MAGIC)?;
        let node_count = r.get_u32()? as usize;
        let entry_count = r.get_u32()? as usize;
        let mut entries = HashMap::with_capacity(entry_count);
        for _ in 0..entry_count {
            let key = r.get_str()?;
            if node_count.checked_mul(4).is_none_or(|n| n > r.remaining()) {
                return Err(StoreError::Corrupt("vector exceeds data".into()));
            }
            let mut v = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                v.push(r.get_f32()?);
            }
            entries.insert(key, v);
        }
        if r.remaining() != 0 {
            return Err(StoreError::Corrupt("trailing bytes after cache".into()));
        }
        // The codec stores keys sorted; a decoded cache is unbounded, so
        // sorted order is as good an "insertion" order as any.
        let mut insertion_order: Vec<String> = entries
            .keys()
            .filter(|k| *k != GLOBAL_KEY)
            .cloned()
            .collect();
        insertion_order.sort_unstable();
        Ok(Self {
            node_count,
            entries,
            insertion_order,
            capacity: None,
        })
    }

    /// Writes the cache to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let telemetry = orex_telemetry::global();
        let _span = telemetry.span("store.rank_cache.save_us");
        let data = self.encode();
        telemetry
            .counter("store.rank_cache.bytes_written")
            .add(data.len() as u64);
        let bytes = data.len() as u64;
        std::fs::write(&path, data)?;
        orex_telemetry::logger()
            .info("store.rank_cache", "rank cache saved")
            .field_str("path", path.as_ref().to_string_lossy())
            .field_u64("bytes", bytes)
            .field_u64("entries", self.entries.len() as u64)
            .emit();
        Ok(())
    }

    /// Loads a cache from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let telemetry = orex_telemetry::global();
        let _span = telemetry.span("store.rank_cache.load_us");
        let data = std::fs::read(&path)?;
        telemetry
            .counter("store.rank_cache.bytes_read")
            .add(data.len() as u64);
        let bytes = data.len() as u64;
        let cache = Self::decode(Bytes::from(data))?;
        orex_telemetry::logger()
            .info("store.rank_cache", "rank cache loaded")
            .field_str("path", path.as_ref().to_string_lossy())
            .field_u64("bytes", bytes)
            .field_u64("entries", cache.entries.len() as u64)
            .emit();
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orex_core::{ObjectRankSystem, SystemConfig};
    use orex_datagen::{generate_dblp, DblpConfig, TextConfig};
    use orex_ir::{Okapi, Query};

    fn system() -> ObjectRankSystem {
        let d = generate_dblp(
            "cache",
            &DblpConfig {
                papers: 300,
                authors: 120,
                conferences: 4,
                years_per_conference: 4,
                text: TextConfig {
                    vocab_size: 800,
                    topics: 6,
                    ..TextConfig::default()
                },
                ..DblpConfig::default()
            },
        );
        ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default())
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut cache = RankCache::new(3);
        cache.insert("data", &[0.1, 0.2, 0.7]);
        let v = cache.get("data").unwrap();
        assert!((v[2] - 0.7).abs() < 1e-6);
        assert!(cache.get("missing").is_none());
        assert!(cache.contains("data"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn precompute_covers_terms_and_global() {
        let sys = system();
        let matrix = TransitionMatrix::new(sys.transfer(), sys.initial_rates());
        let terms = vec!["data".to_string(), "queri".to_string(), "zzzz".to_string()];
        let cache = RankCache::precompute(
            &matrix,
            sys.index(),
            &Okapi::default(),
            &terms,
            &sys.config().rank,
        );
        assert!(cache.contains(GLOBAL_KEY));
        assert!(cache.contains("data"));
        assert!(!cache.contains("zzzz"), "unmatched terms skipped");
    }

    #[test]
    fn seed_reduces_iterations() {
        let sys = system();
        let matrix = TransitionMatrix::new(sys.transfer(), sys.initial_rates());
        let terms = vec!["data".to_string(), "queri".to_string()];
        let params = RankParams {
            epsilon: 1e-10,
            max_iterations: 1000,
            ..sys.config().rank
        };
        let cache = RankCache::precompute(&matrix, sys.index(), &Okapi::default(), &terms, &params);
        // A multi-keyword query seeded from single-keyword vectors.
        let qv = QueryVector::initial(&Query::parse("data query"), sys.index().analyzer());
        let seed = cache.seed_for_query(&qv).unwrap();
        let cold =
            object_rank2(&matrix, sys.index(), &qv, &Okapi::default(), &params, None).unwrap();
        let warm = object_rank2(
            &matrix,
            sys.index(),
            &qv,
            &Okapi::default(),
            &params,
            Some(&seed),
        )
        .unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "seeded {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        // Same fixpoint.
        for (a, b) in warm.scores.iter().zip(&cold.scores) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn seed_falls_back_to_global() {
        let mut cache = RankCache::new(2);
        cache.insert(GLOBAL_KEY, &[0.5, 0.5]);
        let qv = QueryVector::from_weights([("unknown", 1.0)]);
        let seed = cache.seed_for_query(&qv).unwrap();
        assert_eq!(seed, vec![0.5, 0.5]);
        let empty = RankCache::new(2);
        assert!(empty.seed_for_query(&qv).is_none());
    }

    #[test]
    fn capacity_evicts_oldest_but_never_global() {
        let mut cache = RankCache::with_capacity(2, 2);
        assert_eq!(cache.capacity(), Some(2));
        cache.insert(GLOBAL_KEY, &[0.5, 0.5]);
        cache.insert("a", &[0.1, 0.9]);
        cache.insert("b", &[0.2, 0.8]);
        cache.insert("c", &[0.3, 0.7]);
        assert!(!cache.contains("a"), "oldest entry evicted");
        assert!(cache.contains("b") && cache.contains("c"));
        assert!(cache.contains(GLOBAL_KEY), "global vector is exempt");
        // Re-inserting an existing key is a replace, not an eviction.
        cache.insert("c", &[0.4, 0.6]);
        assert!(cache.contains("b") && cache.contains("c"));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut cache = RankCache::new(4);
        cache.insert("a", &[1.0, 0.0, 0.25, 0.5]);
        cache.insert("b", &[0.0, 1.0, 0.0, 0.0]);
        let decoded = RankCache::decode(cache.encode()).unwrap();
        assert_eq!(decoded.node_count(), 4);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded.get("a"), cache.get("a"));
        assert_eq!(decoded.keys(), vec!["a", "b"]);
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut cache = RankCache::new(2);
        cache.insert("x", &[0.1, 0.9]);
        let mut data = cache.encode().to_vec();
        let mid = data.len() - 10;
        data[mid] ^= 0x80;
        assert!(RankCache::decode(Bytes::from(data)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut cache = RankCache::new(2);
        cache.insert("k", &[0.3, 0.7]);
        let path = std::env::temp_dir().join("orex-rank-cache-test.bin");
        cache.save(&path).unwrap();
        let loaded = RankCache::load(&path).unwrap();
        assert_eq!(loaded.get("k"), cache.get("k"));
        let _ = std::fs::remove_file(&path);
    }
}
