//! Porter stemmer (M. F. Porter, "An algorithm for suffix stripping",
//! Program 14(3), 1980), including the two standard departures from the
//! published paper that Porter's reference implementation adopts
//! (`bli -> ble` in step 2 and the `logi -> log` rule).
//!
//! The stemmer conflates morphological variants ("mining", "mined",
//! "mines" -> "mine") so the inverted index and the content-based
//! reformulation of Section 5.1 treat them as one term. Only ASCII
//! lowercase words are stemmed; anything else is returned unchanged.

// The step functions keep the rule tables laid out exactly as in
// Porter's reference implementation (outer dispatch on the penultimate
// letter, one `if` chain per group), which trips these stylistic lints.
#![allow(clippy::collapsible_match, clippy::if_same_then_else)]

/// Stems a single lowercase word. Words shorter than 3 characters or
/// containing non-ASCII-alphabetic characters are returned unchanged.
pub fn stem(word: &str) -> String {
    if word.len() <= 2 || !word.bytes().all(|b| b.is_ascii_lowercase()) {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
        k: word.len() - 1,
        j1: 0,
    };
    s.step1ab();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5();
    // The buffer is ASCII throughout.
    // orex::allow(ORX008): the stemmer only ever writes ASCII bytes it
    // read from an ASCII-filtered input word, so the UTF-8 revalidation
    // cannot fail; returning Result here would force every analyzer
    // call site to handle an impossible error.
    String::from_utf8(s.b[..=s.k].to_vec()).expect("stemmer buffer is ASCII")
}

struct Stemmer {
    b: Vec<u8>,
    /// Index of the last character of the current word.
    k: usize,
    /// One past the last character of the current stem (set by `ends`).
    /// Stored as `j + 1` relative to Porter's reference code so that an
    /// empty stem (whole word matched as suffix, Porter's `j = -1`) is
    /// representable without signed arithmetic.
    j1: usize,
}

impl Stemmer {
    /// True if `b[i]` is a consonant.
    fn cons(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.cons(i - 1)
                }
            }
            _ => true,
        }
    }

    /// Measures the number of consonant-vowel sequences in the stem
    /// `b[0..j1]`: `[C](VC)^m[V]` has measure `m`.
    fn m(&self) -> usize {
        let mut n = 0;
        let mut i = 0;
        loop {
            if i >= self.j1 {
                return n;
            }
            if !self.cons(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            loop {
                if i >= self.j1 {
                    return n;
                }
                if self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            loop {
                if i >= self.j1 {
                    return n;
                }
                if !self.cons(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// True if the stem `b[0..j1]` contains a vowel.
    fn vowel_in_stem(&self) -> bool {
        (0..self.j1).any(|i| !self.cons(i))
    }

    /// True if `b[i-1..=i]` is a double consonant.
    fn doublec(&self, i: usize) -> bool {
        i >= 1 && self.b[i] == self.b[i - 1] && self.cons(i)
    }

    /// True if `b[i-2..=i]` is consonant-vowel-consonant and the final
    /// consonant is not `w`, `x` or `y` (the `*o` condition).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.cons(i) || self.cons(i - 1) || !self.cons(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    /// True if the word ends with `suffix`; sets the stem end `j1` to the
    /// position just before the suffix when it does. A suffix equal to the
    /// whole word is a legal match with an empty stem (`j1 = 0`).
    fn ends(&mut self, suffix: &str) -> bool {
        let s = suffix.as_bytes();
        let len = s.len();
        if len > self.k + 1 {
            return false;
        }
        if &self.b[self.k + 1 - len..=self.k] != s {
            return false;
        }
        self.j1 = self.k + 1 - len;
        true
    }

    /// Replaces the suffix (everything from `j1` on) with `s`.
    ///
    /// Only called after a successful `ends` whose replacement is
    /// non-empty, or under an `m() > 0` guard (non-empty stem), so the
    /// buffer never becomes empty.
    fn setto(&mut self, s: &str) {
        self.b.truncate(self.j1);
        self.b.extend_from_slice(s.as_bytes());
        self.k = self.b.len() - 1;
    }

    /// `setto(s)` when the stem measure is positive.
    fn r(&mut self, s: &str) {
        if self.m() > 0 {
            self.setto(s);
        }
    }

    /// Step 1ab: plurals and -ed / -ing.
    fn step1ab(&mut self) {
        if self.b[self.k] == b's' {
            if self.ends("sses") {
                self.k -= 2;
            } else if self.ends("ies") {
                self.setto("i");
            } else if self.k >= 1 && self.b[self.k - 1] != b's' {
                self.k -= 1;
            }
        }
        if self.ends("eed") {
            if self.m() > 0 {
                self.k -= 1;
            }
        } else if (self.ends("ed") || self.ends("ing")) && self.vowel_in_stem() {
            // A vowel in the stem implies the stem is non-empty (j1 >= 1).
            self.k = self.j1 - 1;
            self.b.truncate(self.k + 1);
            if self.ends("at") {
                self.setto("ate");
            } else if self.ends("bl") {
                self.setto("ble");
            } else if self.ends("iz") {
                self.setto("ize");
            } else if self.doublec(self.k) {
                if !matches!(self.b[self.k], b'l' | b's' | b'z') {
                    self.k -= 1;
                    self.b.truncate(self.k + 1);
                }
            } else if self.m() == 1 && self.cvc(self.k) {
                self.j1 = self.k + 1;
                self.setto("e");
            }
        }
        self.b.truncate(self.k + 1);
    }

    /// Step 1c: terminal `y` to `i` when there is another vowel in the stem.
    fn step1c(&mut self) {
        if self.ends("y") && self.vowel_in_stem() {
            self.b[self.k] = b'i';
        }
    }

    /// Step 2: double suffixes to single ones (measure > 0).
    fn step2(&mut self) {
        if self.k == 0 {
            return;
        }
        match self.b[self.k - 1] {
            b'a' => {
                if self.ends("ational") {
                    self.r("ate");
                } else if self.ends("tional") {
                    self.r("tion");
                }
            }
            b'c' => {
                if self.ends("enci") {
                    self.r("ence");
                } else if self.ends("anci") {
                    self.r("ance");
                }
            }
            b'e' => {
                if self.ends("izer") {
                    self.r("ize");
                }
            }
            b'l' => {
                if self.ends("bli") {
                    self.r("ble");
                } else if self.ends("alli") {
                    self.r("al");
                } else if self.ends("entli") {
                    self.r("ent");
                } else if self.ends("eli") {
                    self.r("e");
                } else if self.ends("ousli") {
                    self.r("ous");
                }
            }
            b'o' => {
                if self.ends("ization") {
                    self.r("ize");
                } else if self.ends("ation") {
                    self.r("ate");
                } else if self.ends("ator") {
                    self.r("ate");
                }
            }
            b's' => {
                if self.ends("alism") {
                    self.r("al");
                } else if self.ends("iveness") {
                    self.r("ive");
                } else if self.ends("fulness") {
                    self.r("ful");
                } else if self.ends("ousness") {
                    self.r("ous");
                }
            }
            b't' => {
                if self.ends("aliti") {
                    self.r("al");
                } else if self.ends("iviti") {
                    self.r("ive");
                } else if self.ends("biliti") {
                    self.r("ble");
                }
            }
            b'g' => {
                if self.ends("logi") {
                    self.r("log");
                }
            }
            _ => {}
        }
    }

    /// Step 3: -ic-, -full, -ness etc.
    fn step3(&mut self) {
        match self.b[self.k] {
            b'e' => {
                if self.ends("icate") {
                    self.r("ic");
                } else if self.ends("ative") {
                    self.r("");
                } else if self.ends("alize") {
                    self.r("al");
                }
            }
            b'i' => {
                if self.ends("iciti") {
                    self.r("ic");
                }
            }
            b'l' => {
                if self.ends("ical") {
                    self.r("ic");
                } else if self.ends("ful") {
                    self.r("");
                }
            }
            b's' => {
                if self.ends("ness") {
                    self.r("");
                }
            }
            _ => {}
        }
    }

    /// Step 4: strip -ant, -ence etc. when measure > 1.
    fn step4(&mut self) {
        if self.k == 0 {
            return;
        }
        let matched = match self.b[self.k - 1] {
            b'a' => self.ends("al"),
            b'c' => self.ends("ance") || self.ends("ence"),
            b'e' => self.ends("er"),
            b'i' => self.ends("ic"),
            b'l' => self.ends("able") || self.ends("ible"),
            b'n' => self.ends("ant") || self.ends("ement") || self.ends("ment") || self.ends("ent"),
            b'o' => {
                (self.ends("ion") && self.j1 > 0 && matches!(self.b[self.j1 - 1], b's' | b't'))
                    || self.ends("ou")
            }
            b's' => self.ends("ism"),
            b't' => self.ends("ate") || self.ends("iti"),
            b'u' => self.ends("ous"),
            b'v' => self.ends("ive"),
            b'z' => self.ends("ize"),
            _ => false,
        };
        if matched && self.m() > 1 {
            // m() > 1 implies a non-empty stem.
            self.k = self.j1 - 1;
            self.b.truncate(self.k + 1);
        }
    }

    /// Step 5: remove a final -e / double l when measure > 1.
    fn step5(&mut self) {
        self.j1 = self.k + 1;
        if self.b[self.k] == b'e' {
            let a = self.m();
            if a > 1 || (a == 1 && self.k >= 1 && !self.cvc(self.k - 1)) {
                self.k -= 1;
            }
        }
        if self.b[self.k] == b'l' && self.doublec(self.k) && self.m() > 1 {
            self.k -= 1;
        }
        self.b.truncate(self.k + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pairs: &[(&str, &str)]) {
        for (input, expected) in pairs {
            assert_eq!(stem(input), *expected, "stem({input})");
        }
    }

    #[test]
    fn step1a_plurals() {
        check(&[
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("ties", "ti"),
            ("caress", "caress"),
            ("cats", "cat"),
        ]);
    }

    #[test]
    fn step1b_ed_ing() {
        check(&[
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("bled", "bled"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubled", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("tanned", "tan"),
            ("falling", "fall"),
            ("hissing", "hiss"),
            ("fizzed", "fizz"),
            ("failing", "fail"),
            ("filing", "file"),
        ]);
    }

    #[test]
    fn step1c_y_to_i() {
        check(&[("happy", "happi"), ("sky", "sky")]);
    }

    #[test]
    fn step2_double_suffixes() {
        check(&[
            ("relational", "relat"),
            ("conditional", "condit"),
            ("rational", "ration"),
            ("valenci", "valenc"),
            ("hesitanci", "hesit"),
            ("digitizer", "digit"),
            ("conformabli", "conform"),
            ("radicalli", "radic"),
            ("differentli", "differ"),
            ("vileli", "vile"),
            ("analogousli", "analog"),
            ("vietnamization", "vietnam"),
            ("predication", "predic"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("decisiveness", "decis"),
            ("hopefulness", "hope"),
            ("callousness", "callous"),
            ("formaliti", "formal"),
            ("sensitiviti", "sensit"),
            ("sensibiliti", "sensibl"),
        ]);
    }

    #[test]
    fn step3() {
        check(&[
            ("triplicate", "triplic"),
            ("formative", "form"),
            ("formalize", "formal"),
            ("electriciti", "electr"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
        ]);
    }

    #[test]
    fn step4() {
        check(&[
            ("revival", "reviv"),
            ("allowance", "allow"),
            ("inference", "infer"),
            ("airliner", "airlin"),
            ("gyroscopic", "gyroscop"),
            ("adjustable", "adjust"),
            ("defensible", "defens"),
            ("irritant", "irrit"),
            ("replacement", "replac"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("adoption", "adopt"),
            ("homologou", "homolog"),
            ("communism", "commun"),
            ("activate", "activ"),
            ("angulariti", "angular"),
            ("homologous", "homolog"),
            ("effective", "effect"),
            ("bowdlerize", "bowdler"),
        ]);
    }

    #[test]
    fn step5() {
        check(&[
            ("probate", "probat"),
            ("rate", "rate"),
            ("cease", "ceas"),
            ("controll", "control"),
            ("roll", "roll"),
        ]);
    }

    #[test]
    fn domain_terms_conflate() {
        // Terms from the paper's running examples.
        assert_eq!(stem("mining"), stem("mined"));
        assert_eq!(stem("queries"), "queri");
        assert_eq!(stem("indexing"), "index");
        assert_eq!(stem("ranked"), stem("ranking"));
        assert_eq!(stem("databases"), stem("database"));
        assert_eq!(stem("multidimensional"), "multidimension");
    }

    #[test]
    fn short_and_non_ascii_unchanged() {
        assert_eq!(stem("by"), "by");
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("naïve"), "naïve");
        assert_eq!(stem("1997"), "1997");
        assert_eq!(stem("OLAP"), "OLAP"); // not lowercase -> unchanged
    }

    #[test]
    fn idempotent_on_typical_vocabulary() {
        for word in [
            "olap",
            "cube",
            "range",
            "modeling",
            "relational",
            "aggregation",
            "optimization",
            "proximity",
            "search",
        ] {
            let once = stem(word);
            let twice = stem(&once);
            // Porter is not idempotent in general, but it is on this
            // vocabulary — a sanity check that stems are stable keys.
            assert_eq!(once, twice, "stem not stable for {word}");
        }
    }
}
