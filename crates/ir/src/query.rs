//! Keyword queries and weighted query vectors (Section 3 of the paper).
//!
//! A keyword query `Q = [t1, ..., tm]` is a *tuple* of keywords — order
//! matters once weights enter the picture. The query vector
//! `Q = [w1, ..., wm]` carries a weight per keyword; the initial vector is
//! all ones, and content-based reformulation (Equation 12) appends new
//! weighted terms and rescales existing ones.

use crate::analyzer::Analyzer;

/// A raw user query: an ordered tuple of keywords.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// The keywords as typed by the user.
    pub keywords: Vec<String>,
}

impl Query {
    /// Builds a query from keyword strings.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(keywords: I) -> Self {
        Self {
            keywords: keywords.into_iter().map(Into::into).collect(),
        }
    }

    /// Parses a whitespace-separated query string.
    pub fn parse(text: &str) -> Self {
        Self::new(text.split_whitespace())
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}]", self.keywords.join(", "))
    }
}

/// A weighted query vector over *analyzed* terms, insertion-ordered.
///
/// Terms are unique; adding an existing term accumulates its weight.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryVector {
    terms: Vec<(String, f64)>,
}

impl QueryVector {
    /// An empty vector.
    pub fn empty() -> Self {
        Self { terms: Vec::new() }
    }

    /// Builds the initial query vector for a query: every keyword is
    /// analyzed and given weight 1. Keywords that analyze to nothing
    /// (stopwords, punctuation) are dropped; duplicate analyzed terms
    /// accumulate (weight 2 for a repeated keyword).
    pub fn initial(query: &Query, analyzer: &Analyzer) -> Self {
        let mut qv = Self::empty();
        for kw in &query.keywords {
            if let Some(term) = analyzer.analyze_term(kw) {
                qv.add_weight(&term, 1.0);
            }
        }
        qv
    }

    /// Builds from explicit `(term, weight)` pairs (terms must already be
    /// analyzed); duplicates accumulate.
    pub fn from_weights<S: Into<String>, I: IntoIterator<Item = (S, f64)>>(pairs: I) -> Self {
        let mut qv = Self::empty();
        for (t, w) in pairs {
            qv.add_weight(&t.into(), w);
        }
        qv
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms are present.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The weight of `term`, or 0 if absent.
    pub fn weight(&self, term: &str) -> f64 {
        self.terms
            .iter()
            .find(|(t, _)| t == term)
            .map_or(0.0, |&(_, w)| w)
    }

    /// True if `term` is present.
    pub fn contains(&self, term: &str) -> bool {
        self.terms.iter().any(|(t, _)| t == term)
    }

    /// Adds `weight` to `term`, inserting it at the end if new.
    pub fn add_weight(&mut self, term: &str, weight: f64) {
        if let Some(entry) = self.terms.iter_mut().find(|(t, _)| t == term) {
            entry.1 += weight;
        } else {
            self.terms.push((term.to_string(), weight));
        }
    }

    /// Multiplies every weight by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for (_, w) in &mut self.terms {
            *w *= factor;
        }
    }

    /// Mean weight of the current terms (`a_w` in the Section 5.1
    /// normalization), or 0 for an empty vector.
    pub fn mean_weight(&self) -> f64 {
        if self.terms.is_empty() {
            0.0
        } else {
            self.terms.iter().map(|&(_, w)| w).sum::<f64>() / self.terms.len() as f64
        }
    }

    /// Iterates over `(term, weight)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.terms.iter().map(|(t, w)| (t.as_str(), *w))
    }
}

impl std::fmt::Display for QueryVector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, (t, w)) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}:{w:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_vector_has_unit_weights() {
        let a = Analyzer::new();
        let q = Query::parse("query optimization");
        let qv = QueryVector::initial(&q, &a);
        assert_eq!(qv.len(), 2);
        for (_, w) in qv.iter() {
            assert_eq!(w, 1.0);
        }
    }

    #[test]
    fn stopword_keywords_dropped() {
        let a = Analyzer::new();
        let q = Query::parse("the olap");
        let qv = QueryVector::initial(&q, &a);
        assert_eq!(qv.len(), 1);
        assert!(qv.contains("olap"));
    }

    #[test]
    fn duplicate_keywords_accumulate() {
        let a = Analyzer::new();
        let q = Query::parse("olap olap");
        let qv = QueryVector::initial(&q, &a);
        assert_eq!(qv.len(), 1);
        assert_eq!(qv.weight("olap"), 2.0);
    }

    #[test]
    fn add_weight_inserts_and_accumulates() {
        let mut qv = QueryVector::empty();
        qv.add_weight("cube", 0.5);
        qv.add_weight("cube", 0.25);
        qv.add_weight("rang", 1.0);
        assert_eq!(qv.weight("cube"), 0.75);
        assert_eq!(qv.len(), 2);
        // Insertion order preserved.
        let terms: Vec<_> = qv.iter().map(|(t, _)| t.to_string()).collect();
        assert_eq!(terms, vec!["cube", "rang"]);
    }

    #[test]
    fn mean_weight() {
        let qv = QueryVector::from_weights([("a", 1.0), ("b", 3.0)]);
        assert_eq!(qv.mean_weight(), 2.0);
        assert_eq!(QueryVector::empty().mean_weight(), 0.0);
    }

    #[test]
    fn scale_multiplies_all() {
        let mut qv = QueryVector::from_weights([("a", 1.0), ("b", 2.0)]);
        qv.scale(0.5);
        assert_eq!(qv.weight("a"), 0.5);
        assert_eq!(qv.weight("b"), 1.0);
    }

    #[test]
    fn display_formats() {
        let q = Query::parse("ranked search");
        assert_eq!(q.to_string(), "[ranked, search]");
    }
}
