//! # orex-ir — information-retrieval substrate for ObjectRank2
//!
//! Implements the IR machinery of Section 3 of *"Explaining and
//! Reformulating Authority Flow Queries"*: the analysis pipeline
//! (tokenizer, stopwords, Porter stemmer), an inverted index with a
//! forward index, and the Okapi weighting of Equation 3 used to score the
//! weighted base set of ObjectRank2 (Equation 2).
//!
//! The crate is graph-agnostic: documents are `(DocId, text)` pairs; the
//! facade crate maps graph nodes onto document ids.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analyzer;
mod index;
mod query;
mod score;
mod stem;
mod stopwords;
mod tokenize;

pub use analyzer::Analyzer;
pub use index::{DocId, IndexBuilder, InvertedIndex, Posting, TermId};
pub use query::{Query, QueryVector};
pub use score::{CollectionStats, Okapi, PivotedNorm, Scorer, TfIdf};
pub use stem::stem;
pub use stopwords::{Stopwords, DEFAULT_STOPWORDS};
pub use tokenize::Tokenizer;
