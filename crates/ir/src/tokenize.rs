//! Tokenization of object attribute text into candidate terms.
//!
//! The paper treats each data-graph node as a document whose text is the
//! concatenation of its attribute values (Section 2). Tokenization is the
//! first stage of the analysis pipeline: lowercase, split on any
//! non-alphanumeric character, drop tokens outside a length window.

/// Tokenizer configuration.
#[derive(Clone, Debug)]
pub struct Tokenizer {
    /// Minimum token length (shorter tokens are dropped). Default 1.
    pub min_len: usize,
    /// Maximum token length (longer tokens are truncated). Default 64.
    pub max_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            min_len: 1,
            max_len: 64,
        }
    }
}

impl Tokenizer {
    /// Splits `text` into lowercase alphanumeric tokens.
    pub fn tokenize<'a>(&'a self, text: &'a str) -> impl Iterator<Item = String> + 'a {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(move |t| t.len() >= self.min_len && !t.is_empty())
            .map(move |t| {
                let mut s = t.to_lowercase();
                if s.len() > self.max_len {
                    s.truncate(
                        s.char_indices()
                            .map(|(i, _)| i)
                            .take_while(|&i| i <= self.max_len)
                            .last()
                            .unwrap_or(0),
                    );
                }
                s
            })
    }

    /// Tokenizes into an owned vector.
    pub fn tokenize_vec(&self, text: &str) -> Vec<String> {
        self.tokenize(text).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_lowercases() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize_vec("Data Cube: A Relational Aggregation Operator"),
            vec!["data", "cube", "a", "relational", "aggregation", "operator"]
        );
    }

    #[test]
    fn keeps_digits() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize_vec("ICDE 1997"), vec!["icde", "1997"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        let t = Tokenizer::default();
        assert!(t.tokenize_vec("").is_empty());
        assert!(t.tokenize_vec("--- ,,, !!!").is_empty());
    }

    #[test]
    fn min_len_filters_short_tokens() {
        let t = Tokenizer {
            min_len: 3,
            ..Tokenizer::default()
        };
        assert_eq!(t.tokenize_vec("a an olap"), vec!["olap"]);
    }

    #[test]
    fn unicode_is_handled() {
        let t = Tokenizer::default();
        let toks = t.tokenize_vec("naïve Gödel");
        assert_eq!(toks, vec!["naïve", "gödel"]);
    }

    #[test]
    fn hyphenated_words_split() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize_vec("group-by"), vec!["group", "by"]);
    }
}
