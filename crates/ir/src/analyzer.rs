//! The analysis pipeline: tokenize -> stopword filter -> stem.
//!
//! Both documents (node attribute text) and query keywords must pass
//! through the *same* pipeline so base-set lookup, IR scoring (Equation 2)
//! and query expansion (Section 5.1) agree on term identity.

use crate::stem::stem;
use crate::stopwords::Stopwords;
use crate::tokenize::Tokenizer;

/// A configured analysis pipeline.
#[derive(Clone, Debug)]
pub struct Analyzer {
    tokenizer: Tokenizer,
    stopwords: Stopwords,
    stemming: bool,
}

impl Default for Analyzer {
    fn default() -> Self {
        Self {
            tokenizer: Tokenizer::default(),
            stopwords: Stopwords::standard(),
            stemming: true,
        }
    }
}

impl Analyzer {
    /// Full pipeline with standard stopwords and Porter stemming.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pipeline without stemming (exact-term matching).
    pub fn without_stemming() -> Self {
        Self {
            stemming: false,
            ..Self::default()
        }
    }

    /// Pipeline without stopword filtering.
    pub fn without_stopwords() -> Self {
        Self {
            stopwords: Stopwords::none(),
            ..Self::default()
        }
    }

    /// Whether stemming is enabled.
    pub fn stems(&self) -> bool {
        self.stemming
    }

    /// Analyzes a full text into index terms (duplicates preserved — the
    /// caller counts term frequencies).
    pub fn analyze(&self, text: &str) -> Vec<String> {
        self.tokenizer
            .tokenize(text)
            .filter(|t| !self.stopwords.contains(t))
            .map(|t| if self.stemming { stem(&t) } else { t })
            .collect()
    }

    /// Analyzes a single query keyword. Returns `None` when the keyword is
    /// a stopword or tokenizes to nothing; multi-token keywords keep only
    /// the first token (query keywords are single words in the paper).
    pub fn analyze_term(&self, keyword: &str) -> Option<String> {
        self.tokenizer
            .tokenize(keyword)
            .find(|t| !self.stopwords.contains(t))
            .map(|t| if self.stemming { stem(&t) } else { t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline() {
        let a = Analyzer::new();
        let terms = a.analyze("Range Queries in OLAP Data Cubes.");
        assert_eq!(terms, vec!["rang", "queri", "olap", "data", "cube"]);
    }

    #[test]
    fn stopwords_removed() {
        let a = Analyzer::new();
        let terms = a.analyze("the quick and the dead");
        assert_eq!(terms, vec!["quick", "dead"]);
    }

    #[test]
    fn without_stemming_keeps_surface_forms() {
        let a = Analyzer::without_stemming();
        let terms = a.analyze("Range Queries");
        assert_eq!(terms, vec!["range", "queries"]);
    }

    #[test]
    fn analyze_term_matches_analyze() {
        let a = Analyzer::new();
        // A query keyword must map to the same term a document does.
        assert_eq!(a.analyze_term("Queries").unwrap(), "queri");
        assert_eq!(a.analyze("user queries")[1], "queri");
    }

    #[test]
    fn analyze_term_rejects_stopwords() {
        let a = Analyzer::new();
        assert_eq!(a.analyze_term("the"), None);
        assert_eq!(a.analyze_term("!!!"), None);
    }

    #[test]
    fn duplicates_preserved_for_tf() {
        let a = Analyzer::new();
        let terms = a.analyze("cube cube cubes");
        assert_eq!(terms, vec!["cube", "cube", "cube"]);
    }
}
