//! IR weighting models: Okapi (Equation 3 of the paper) and tf-idf.
//!
//! The paper defines `W(v, t)` — the IR weight of term `t` for document
//! (node) `v` — "using a traditional IR weighing formula like BM25 or
//! Okapi", giving the Okapi formula explicitly. The `IRScore(v, Q) = v · Q`
//! dot product of Equation 2 then splits per term into a document-side
//! weight and a query-side factor; the query-side factor consumes the
//! query-vector weight in the `qtf` position, so reformulated weights
//! from Equation 12 feed straight back into base-set scoring.

/// Collection-level statistics needed by the weighting models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CollectionStats {
    /// Total number of documents in the database (`n` in Equation 3).
    pub doc_count: u64,
    /// Average document length in characters (`avdl`).
    pub avg_doc_len: f64,
}

/// A term-weighting model.
pub trait Scorer: Send + Sync {
    /// Document-side weight of a term with frequency `tf` and document
    /// frequency `df` in a document of `dl` characters.
    fn term_weight(&self, stats: &CollectionStats, tf: u32, df: u32, dl: u32) -> f64;

    /// Query-side multiplier for a query-vector weight (`qtf` role).
    fn query_factor(&self, query_weight: f64) -> f64;
}

/// Okapi weighting (Equation 3): per query term,
///
/// ```text
/// ln((n - df + 0.5) / (df + 0.5))
///   * ((k1 + 1) tf) / (k1 (1 - b + b dl/avdl) + tf)
///   * ((k3 + 1) qtf) / (k3 + qtf)
/// ```
///
/// The raw Okapi idf goes negative for terms in more than half the
/// collection; we floor it at [`Okapi::IDF_FLOOR`] (the standard
/// Lucene-style fix) so common terms cannot produce negative base-set
/// probabilities, which Equation 4 cannot accommodate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Okapi {
    /// Term-frequency saturation, "between 1.0 and 2.0" per the paper.
    pub k1: f64,
    /// Length normalization, "usually 0.75".
    pub b: f64,
    /// Query-term-frequency saturation, "between 0 and 1000".
    pub k3: f64,
}

impl Default for Okapi {
    fn default() -> Self {
        Self {
            k1: 1.2,
            b: 0.75,
            k3: 8.0,
        }
    }
}

impl Okapi {
    /// Minimum idf (see type-level docs).
    pub const IDF_FLOOR: f64 = 1e-6;
}

impl Scorer for Okapi {
    fn term_weight(&self, stats: &CollectionStats, tf: u32, df: u32, dl: u32) -> f64 {
        if tf == 0 || df == 0 {
            return 0.0;
        }
        let n = stats.doc_count as f64;
        let df = df as f64;
        let idf = ((n - df + 0.5) / (df + 0.5)).ln().max(Self::IDF_FLOOR);
        let avdl = if stats.avg_doc_len > 0.0 {
            stats.avg_doc_len
        } else {
            1.0
        };
        let tf = tf as f64;
        let norm = self.k1 * (1.0 - self.b + self.b * dl as f64 / avdl);
        idf * ((self.k1 + 1.0) * tf) / (norm + tf)
    }

    fn query_factor(&self, query_weight: f64) -> f64 {
        if query_weight <= 0.0 {
            return 0.0;
        }
        ((self.k3 + 1.0) * query_weight) / (self.k3 + query_weight)
    }
}

/// Classic tf-idf weighting: `(1 + ln tf) * ln(n / df)` on the document
/// side, the raw query weight on the query side. Kept as the simplest
/// reference model and for ablations against Okapi.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TfIdf;

impl Scorer for TfIdf {
    fn term_weight(&self, stats: &CollectionStats, tf: u32, df: u32, _dl: u32) -> f64 {
        if tf == 0 || df == 0 {
            return 0.0;
        }
        let idf = (stats.doc_count as f64 / df as f64).ln().max(0.0);
        (1.0 + (tf as f64).ln()) * idf
    }

    fn query_factor(&self, query_weight: f64) -> f64 {
        query_weight.max(0.0)
    }
}

/// Pivoted length normalization (Singhal et al.; surveyed in the paper's
/// IR reference \[Sin01\]): `(1 + ln(1 + ln tf)) / (1 - s + s·dl/avdl) · idf`
/// with slope `s` (typically 0.2). A softer tf saturation than Okapi,
/// kept for ablations on the base-set weighting model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PivotedNorm {
    /// Pivot slope `s ∈ [0, 1]`.
    pub slope: f64,
}

impl Default for PivotedNorm {
    fn default() -> Self {
        Self { slope: 0.2 }
    }
}

impl Scorer for PivotedNorm {
    fn term_weight(&self, stats: &CollectionStats, tf: u32, df: u32, dl: u32) -> f64 {
        if tf == 0 || df == 0 {
            return 0.0;
        }
        let idf = ((stats.doc_count as f64 + 1.0) / df as f64).ln().max(0.0);
        let avdl = if stats.avg_doc_len > 0.0 {
            stats.avg_doc_len
        } else {
            1.0
        };
        let tf_part = 1.0 + (1.0 + (tf as f64).ln()).ln();
        let norm = 1.0 - self.slope + self.slope * dl as f64 / avdl;
        tf_part / norm * idf
    }

    fn query_factor(&self, query_weight: f64) -> f64 {
        query_weight.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STATS: CollectionStats = CollectionStats {
        doc_count: 1000,
        avg_doc_len: 40.0,
    };

    #[test]
    fn pivoted_norm_saturates_more_than_okapi_grows() {
        let s = PivotedNorm::default();
        let w1 = s.term_weight(&STATS, 1, 10, 40);
        let w10 = s.term_weight(&STATS, 10, 10, 40);
        let w100 = s.term_weight(&STATS, 100, 10, 40);
        assert!(w10 > w1);
        // Double-log saturation: the 10 -> 100 jump adds less than 1 -> 10.
        assert!(w100 - w10 < w10 - w1);
    }

    #[test]
    fn pivoted_norm_penalizes_long_docs() {
        let s = PivotedNorm::default();
        assert!(s.term_weight(&STATS, 2, 10, 20) > s.term_weight(&STATS, 2, 10, 200));
        assert_eq!(s.term_weight(&STATS, 0, 10, 40), 0.0);
    }

    #[test]
    fn okapi_rare_terms_score_higher() {
        let s = Okapi::default();
        let rare = s.term_weight(&STATS, 1, 2, 40);
        let common = s.term_weight(&STATS, 1, 400, 40);
        assert!(rare > common);
        assert!(rare > 0.0);
    }

    #[test]
    fn okapi_tf_saturates() {
        let s = Okapi::default();
        let w1 = s.term_weight(&STATS, 1, 10, 40);
        let w2 = s.term_weight(&STATS, 2, 10, 40);
        let w10 = s.term_weight(&STATS, 10, 10, 40);
        let w100 = s.term_weight(&STATS, 100, 10, 40);
        assert!(w2 > w1);
        assert!(w10 > w2);
        // Diminishing returns: the 2nd occurrence adds more than the jump
        // from 10 to 100 adds per occurrence.
        assert!((w2 - w1) > (w100 - w10) / 90.0);
        // Bounded by (k1 + 1) * idf.
        let idf = ((1000.0f64 - 10.0 + 0.5) / 10.5).ln();
        assert!(w100 < (s.k1 + 1.0) * idf);
    }

    #[test]
    fn okapi_long_documents_penalized() {
        let s = Okapi::default();
        let short = s.term_weight(&STATS, 2, 10, 20);
        let long = s.term_weight(&STATS, 2, 10, 200);
        assert!(short > long);
    }

    #[test]
    fn okapi_idf_floor_prevents_negative() {
        let s = Okapi::default();
        // df > n/2 would make raw idf negative.
        let w = s.term_weight(&STATS, 3, 900, 40);
        assert!(w > 0.0);
        assert!(w < 1e-4);
    }

    #[test]
    fn okapi_zero_tf_or_df_is_zero() {
        let s = Okapi::default();
        assert_eq!(s.term_weight(&STATS, 0, 10, 40), 0.0);
        assert_eq!(s.term_weight(&STATS, 3, 0, 40), 0.0);
    }

    #[test]
    fn okapi_query_factor_saturates() {
        let s = Okapi::default();
        let f1 = s.query_factor(1.0);
        let f2 = s.query_factor(2.0);
        let f100 = s.query_factor(100.0);
        assert!(f1 > 0.0 && f2 > f1 && f100 > f2);
        assert!(f100 < s.k3 + 1.0); // asymptote
        assert_eq!(s.query_factor(0.0), 0.0);
        assert_eq!(s.query_factor(-1.0), 0.0);
    }

    #[test]
    fn tfidf_monotone_in_tf_and_rarity() {
        let s = TfIdf;
        assert!(s.term_weight(&STATS, 2, 10, 40) > s.term_weight(&STATS, 1, 10, 40));
        assert!(s.term_weight(&STATS, 1, 5, 40) > s.term_weight(&STATS, 1, 50, 40));
        assert_eq!(s.term_weight(&STATS, 1, 1000, 40), 0.0); // idf floor
    }

    #[test]
    fn okapi_handles_degenerate_collection() {
        let s = Okapi::default();
        let stats = CollectionStats {
            doc_count: 1,
            avg_doc_len: 0.0,
        };
        let w = s.term_weight(&stats, 1, 1, 0);
        assert!(w.is_finite());
        assert!(w >= 0.0);
    }
}
