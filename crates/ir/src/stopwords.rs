//! English stopword list.
//!
//! Section 5.1 of the paper excludes stopwords from the expansion-term
//! candidates; the base-set retrieval also benefits from dropping them.
//! The list below is the classic Glasgow/SMART-style core set.

use std::collections::HashSet;

/// The default English stopword list.
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// A stopword filter backed by a hash set.
#[derive(Clone, Debug)]
pub struct Stopwords {
    set: HashSet<&'static str>,
}

impl Default for Stopwords {
    fn default() -> Self {
        Self::standard()
    }
}

impl Stopwords {
    /// The default English list.
    pub fn standard() -> Self {
        Self {
            set: DEFAULT_STOPWORDS.iter().copied().collect(),
        }
    }

    /// An empty list (no filtering).
    pub fn none() -> Self {
        Self {
            set: HashSet::new(),
        }
    }

    /// True if `term` (already lowercased) is a stopword.
    #[inline]
    pub fn contains(&self, term: &str) -> bool {
        self.set.contains(term)
    }

    /// Number of stopwords.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when the list is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_words_are_stopwords() {
        let s = Stopwords::standard();
        for w in ["the", "and", "of", "a", "in"] {
            assert!(s.contains(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_words_are_not() {
        let s = Stopwords::standard();
        for w in ["olap", "cube", "database", "ranking", "xml"] {
            assert!(!s.contains(w), "{w} should not be a stopword");
        }
    }

    #[test]
    fn none_filters_nothing() {
        let s = Stopwords::none();
        assert!(!s.contains("the"));
        assert!(s.is_empty());
    }

    #[test]
    fn list_has_no_duplicates() {
        let s = Stopwords::standard();
        assert_eq!(s.len(), DEFAULT_STOPWORDS.len());
    }
}
