//! Inverted index over data-graph nodes viewed as documents.
//!
//! Each node of the data graph is a document whose text is the
//! concatenation of its attribute values; the index supports the two
//! retrieval primitives the paper needs:
//!
//! - **base-set computation** (Section 3): the set of nodes containing at
//!   least one query term, each scored by `IRScore(v, Q)` (Equation 2 with
//!   the Okapi weights of Equation 3);
//! - **forward lookup** (Section 5.1): the terms of a given node, used to
//!   harvest expansion-term candidates from the explaining subgraph.
//!
//! Document lengths are measured in characters, following the paper's
//! definition of `dl`.

use crate::analyzer::Analyzer;
use crate::query::QueryVector;
use crate::score::{CollectionStats, Scorer};
use std::collections::HashMap;

/// Document identifier — by convention the raw `NodeId` of the graph node.
pub type DocId = u32;
/// Interned term identifier.
pub type TermId = u32;

/// One posting: a document and the term's frequency in it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// The document.
    pub doc: DocId,
    /// Term frequency.
    pub tf: u32,
}

/// Incremental index builder.
#[derive(Debug)]
pub struct IndexBuilder {
    analyzer: Analyzer,
    dict: HashMap<String, TermId>,
    terms: Vec<String>,
    postings: Vec<Vec<Posting>>,
    doc_lens: Vec<u32>,
    doc_terms: Vec<Vec<(TermId, u32)>>,
    total_chars: u64,
    doc_count: u64,
}

impl IndexBuilder {
    /// Starts an empty index with the given analyzer.
    pub fn new(analyzer: Analyzer) -> Self {
        Self {
            analyzer,
            dict: HashMap::new(),
            terms: Vec::new(),
            postings: Vec::new(),
            doc_lens: Vec::new(),
            doc_terms: Vec::new(),
            total_chars: 0,
            doc_count: 0,
        }
    }

    fn intern(&mut self, term: String) -> TermId {
        if let Some(&id) = self.dict.get(&term) {
            return id;
        }
        // orex::allow(ORX008): TermId is u32; overflowing it would need
        // four billion distinct terms, far past memory exhaustion for
        // the dictionaries this index holds.
        let id = TermId::try_from(self.terms.len()).expect("term id overflow");
        self.dict.insert(term.clone(), id);
        self.terms.push(term);
        self.postings.push(Vec::new());
        id
    }

    /// Indexes a document. Documents must be added with strictly
    /// increasing ids (gaps allowed; gap documents count as empty).
    ///
    /// # Panics
    /// Panics if `doc` is not greater than every previously added id.
    pub fn add_document(&mut self, doc: DocId, text: &str) {
        assert!(
            self.doc_lens.len() <= doc as usize,
            "documents must be added in increasing id order"
        );
        self.doc_lens.resize(doc as usize + 1, 0);
        self.doc_terms.resize(doc as usize + 1, Vec::new());
        let dl = u32::try_from(text.chars().count()).unwrap_or(u32::MAX);
        self.doc_lens[doc as usize] = dl;
        self.total_chars += dl as u64;
        self.doc_count += 1;

        let mut counts: HashMap<TermId, u32> = HashMap::new();
        for term in self.analyzer.analyze(text) {
            let id = self.intern(term);
            *counts.entry(id).or_insert(0) += 1;
        }
        let mut fwd: Vec<(TermId, u32)> = counts.into_iter().collect();
        fwd.sort_unstable_by_key(|&(t, _)| t);
        for &(term, tf) in &fwd {
            self.postings[term as usize].push(Posting { doc, tf });
        }
        self.doc_terms[doc as usize] = fwd;
    }

    /// Finalizes the index.
    pub fn build(self) -> InvertedIndex {
        let avg_doc_len = if self.doc_count > 0 {
            self.total_chars as f64 / self.doc_count as f64
        } else {
            0.0
        };
        orex_telemetry::logger()
            .info("ir.index", "inverted index built")
            .field_u64("documents", self.doc_count)
            .field_u64("terms", self.terms.len() as u64)
            .field_f64("avg_doc_len", avg_doc_len)
            .emit();
        InvertedIndex {
            analyzer: self.analyzer,
            dict: self.dict,
            terms: self.terms,
            postings: self.postings,
            doc_lens: self.doc_lens,
            doc_terms: self.doc_terms,
            stats: CollectionStats {
                doc_count: self.doc_count,
                avg_doc_len,
            },
        }
    }
}

/// The frozen inverted index.
#[derive(Debug)]
pub struct InvertedIndex {
    analyzer: Analyzer,
    dict: HashMap<String, TermId>,
    terms: Vec<String>,
    postings: Vec<Vec<Posting>>,
    doc_lens: Vec<u32>,
    doc_terms: Vec<Vec<(TermId, u32)>>,
    stats: CollectionStats,
}

impl InvertedIndex {
    /// The analyzer documents were indexed with (queries must use it too).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// Collection statistics for the scorers.
    pub fn stats(&self) -> &CollectionStats {
        &self.stats
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.terms.len()
    }

    /// Looks up an analyzed term.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.dict.get(term).copied()
    }

    /// The surface form of an interned term.
    pub fn term_text(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// Document frequency of a term.
    pub fn df(&self, id: TermId) -> u32 {
        self.postings[id as usize].len() as u32
    }

    /// Postings list of a term, sorted by document id.
    pub fn postings(&self, id: TermId) -> &[Posting] {
        &self.postings[id as usize]
    }

    /// Length (characters) of a document; 0 for unknown ids.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_lens.get(doc as usize).copied().unwrap_or(0)
    }

    /// Forward index: the `(term, tf)` pairs of a document, sorted by
    /// term id. Empty for unknown ids.
    pub fn doc_terms(&self, doc: DocId) -> &[(TermId, u32)] {
        self.doc_terms.get(doc as usize).map_or(&[], Vec::as_slice)
    }

    /// Term frequency of `term` in `doc`.
    pub fn tf(&self, doc: DocId, term: TermId) -> u32 {
        self.doc_terms(doc)
            .binary_search_by_key(&term, |&(t, _)| t)
            .map(|i| self.doc_terms(doc)[i].1)
            .unwrap_or(0)
    }

    /// Computes the query base set with IR scores (Sections 3):
    /// all documents containing at least one query term, each scored by
    /// `IRScore(v, Q) = Σ_t query_factor(w_t) · W(v, t)` (Equation 2).
    ///
    /// Returns `(doc, score)` pairs sorted by document id. Scores are raw
    /// (not normalized); the ranking layer normalizes them to probabilities.
    pub fn base_set_scores(&self, query: &QueryVector, scorer: &dyn Scorer) -> Vec<(DocId, f64)> {
        let mut span = orex_telemetry::tracer().span("ir.base_set_scores");
        let mut acc: HashMap<DocId, f64> = HashMap::new();
        let mut postings_scanned = 0u64;
        for (term, weight) in query.iter() {
            let Some(tid) = self.term_id(term) else {
                continue;
            };
            let qf = scorer.query_factor(weight);
            if qf == 0.0 {
                continue;
            }
            let df = self.df(tid);
            let postings = self.postings(tid);
            postings_scanned += postings.len() as u64;
            for p in postings {
                let w = scorer.term_weight(&self.stats, p.tf, df, self.doc_len(p.doc));
                *acc.entry(p.doc).or_insert(0.0) += qf * w;
            }
        }
        let mut out: Vec<(DocId, f64)> = acc.into_iter().collect();
        out.sort_unstable_by_key(|&(d, _)| d);
        if span.is_recording() {
            span.attr_u64("terms", query.len() as u64);
            span.attr_u64("postings_scanned", postings_scanned);
            span.attr_u64("matched_docs", out.len() as u64);
        }
        out
    }

    /// IR score of a single document for a query (Equation 2). Zero when
    /// the document contains none of the query terms.
    pub fn ir_score(&self, doc: DocId, query: &QueryVector, scorer: &dyn Scorer) -> f64 {
        let mut score = 0.0;
        for (term, weight) in query.iter() {
            let Some(tid) = self.term_id(term) else {
                continue;
            };
            let tf = self.tf(doc, tid);
            if tf == 0 {
                continue;
            }
            score += scorer.query_factor(weight)
                * scorer.term_weight(&self.stats, tf, self.df(tid), self.doc_len(doc));
        }
        score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use crate::score::Okapi;

    fn small_index() -> InvertedIndex {
        let mut b = IndexBuilder::new(Analyzer::new());
        b.add_document(0, "Index Selection for OLAP");
        b.add_document(1, "Data Cube: A Relational Aggregation Operator");
        b.add_document(3, "Range Queries in OLAP Data Cubes");
        b.add_document(5, "Modeling Multidimensional Databases");
        b.build()
    }

    #[test]
    fn vocabulary_and_df() {
        let idx = small_index();
        let olap = idx.term_id("olap").unwrap();
        assert_eq!(idx.df(olap), 2);
        let cube = idx.term_id("cube").unwrap();
        assert_eq!(idx.df(cube), 2); // "Cube" and "Cubes" both stem to cube
        assert!(idx.term_id("nonexistent").is_none());
    }

    #[test]
    fn base_set_contains_exactly_matching_docs() {
        let idx = small_index();
        let q = QueryVector::initial(&Query::parse("OLAP"), idx.analyzer());
        let base = idx.base_set_scores(&q, &Okapi::default());
        let docs: Vec<DocId> = base.iter().map(|&(d, _)| d).collect();
        assert_eq!(docs, vec![0, 3]);
        for &(_, s) in &base {
            assert!(s > 0.0);
        }
    }

    #[test]
    fn multi_keyword_base_set_is_union() {
        let idx = small_index();
        let q = QueryVector::initial(&Query::parse("olap modeling"), idx.analyzer());
        let base = idx.base_set_scores(&q, &Okapi::default());
        let docs: Vec<DocId> = base.iter().map(|&(d, _)| d).collect();
        assert_eq!(docs, vec![0, 3, 5]);
    }

    #[test]
    fn doc_containing_both_terms_scores_higher() {
        let mut b = IndexBuilder::new(Analyzer::new());
        b.add_document(0, "olap olap olap olap");
        b.add_document(1, "olap cube");
        b.add_document(2, "cube");
        b.add_document(3, "unrelated text entirely");
        let idx = b.build();
        let q = QueryVector::initial(&Query::parse("olap cube"), idx.analyzer());
        let base = idx.base_set_scores(&q, &Okapi::default());
        let get = |d: DocId| base.iter().find(|&&(x, _)| x == d).unwrap().1;
        assert!(get(1) > get(0), "two matched terms beat one saturated term");
        assert!(get(1) > get(2));
    }

    #[test]
    fn ir_score_matches_base_set_entry() {
        let idx = small_index();
        let q = QueryVector::initial(&Query::parse("olap data"), idx.analyzer());
        let scorer = Okapi::default();
        let base = idx.base_set_scores(&q, &scorer);
        for &(doc, score) in &base {
            assert!((idx.ir_score(doc, &q, &scorer) - score).abs() < 1e-12);
        }
        // A non-matching doc scores zero.
        assert_eq!(
            idx.ir_score(
                5,
                &QueryVector::initial(&Query::parse("olap"), idx.analyzer()),
                &scorer
            ),
            0.0
        );
    }

    #[test]
    fn forward_index_roundtrip() {
        let idx = small_index();
        let terms = idx.doc_terms(3);
        assert!(!terms.is_empty());
        let surface: Vec<&str> = terms.iter().map(|&(t, _)| idx.term_text(t)).collect();
        assert!(surface.contains(&"rang"));
        assert!(surface.contains(&"olap"));
        // tf lookup agrees.
        for &(t, tf) in terms {
            assert_eq!(idx.tf(3, t), tf);
        }
        assert_eq!(idx.tf(3, 9999).min(1), 0);
    }

    #[test]
    fn gap_documents_are_empty() {
        let idx = small_index();
        assert_eq!(idx.doc_len(2), 0);
        assert!(idx.doc_terms(2).is_empty());
        assert_eq!(idx.doc_len(100), 0);
    }

    #[test]
    fn stats_reflect_added_docs() {
        let idx = small_index();
        assert_eq!(idx.stats().doc_count, 4);
        assert!(idx.stats().avg_doc_len > 0.0);
    }

    #[test]
    #[should_panic(expected = "increasing id order")]
    fn out_of_order_docs_panic() {
        let mut b = IndexBuilder::new(Analyzer::new());
        b.add_document(5, "a");
        b.add_document(3, "b");
    }

    #[test]
    fn empty_query_has_empty_base_set() {
        let idx = small_index();
        let base = idx.base_set_scores(&QueryVector::empty(), &Okapi::default());
        assert!(base.is_empty());
    }

    #[test]
    fn tf_counts_repeated_terms() {
        let mut b = IndexBuilder::new(Analyzer::new());
        b.add_document(0, "cube cube cubes data");
        let idx = b.build();
        let cube = idx.term_id("cube").unwrap();
        assert_eq!(idx.tf(0, cube), 3);
    }
}
