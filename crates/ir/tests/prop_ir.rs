//! Property-based tests for the IR substrate: index/analyzer consistency
//! and scorer sanity over random documents.

use orex_ir::{Analyzer, IndexBuilder, Okapi, PivotedNorm, QueryVector, Scorer, TfIdf};
use proptest::prelude::*;

/// Strategy: documents over a small closed vocabulary so term overlap is
/// guaranteed.
fn docs_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..12, 0..30), 1..25)
}

const VOCAB: [&str; 12] = [
    "olap", "cube", "mining", "graph", "stream", "join", "index", "rank", "data", "query", "tree",
    "hash",
];

fn render(doc: &[u8]) -> String {
    doc.iter()
        .map(|&w| VOCAB[w as usize % VOCAB.len()])
        .collect::<Vec<_>>()
        .join(" ")
}

proptest! {
    /// df equals the number of documents whose analyzed term set contains
    /// the term; postings are sorted by doc id; tf sums match.
    #[test]
    fn index_statistics_consistent(docs in docs_strategy()) {
        let analyzer = Analyzer::new();
        let mut builder = IndexBuilder::new(analyzer.clone());
        let mut manual_df = std::collections::HashMap::new();
        for (i, doc) in docs.iter().enumerate() {
            let text = render(doc);
            builder.add_document(i as u32, &text);
            let mut seen = std::collections::HashSet::new();
            for term in analyzer.analyze(&text) {
                if seen.insert(term.clone()) {
                    *manual_df.entry(term).or_insert(0u32) += 1;
                }
            }
        }
        let index = builder.build();
        for (term, df) in manual_df {
            let tid = index.term_id(&term).expect("indexed term resolvable");
            prop_assert_eq!(index.df(tid), df);
            let postings = index.postings(tid);
            for w in postings.windows(2) {
                prop_assert!(w[0].doc < w[1].doc, "postings sorted, unique");
            }
            // Forward/inverted agreement.
            for p in postings {
                prop_assert_eq!(index.tf(p.doc, tid), p.tf);
            }
        }
    }

    /// The base set is exactly the union of the query terms' postings,
    /// and scores are positive and finite under all three models.
    #[test]
    fn base_set_is_posting_union(docs in docs_strategy(), q1 in 0u8..12, q2 in 0u8..12) {
        let analyzer = Analyzer::new();
        let mut builder = IndexBuilder::new(analyzer.clone());
        for (i, doc) in docs.iter().enumerate() {
            builder.add_document(i as u32, &render(doc));
        }
        let index = builder.build();
        let t1 = analyzer.analyze_term(VOCAB[q1 as usize]).unwrap();
        let t2 = analyzer.analyze_term(VOCAB[q2 as usize]).unwrap();
        let qv = QueryVector::from_weights([(t1.clone(), 1.0), (t2.clone(), 0.5)]);

        let mut expected: Vec<u32> = Vec::new();
        for t in [&t1, &t2] {
            if let Some(tid) = index.term_id(t) {
                expected.extend(index.postings(tid).iter().map(|p| p.doc));
            }
        }
        expected.sort_unstable();
        expected.dedup();

        for scorer in [&Okapi::default() as &dyn Scorer, &TfIdf, &PivotedNorm::default()] {
            let base = index.base_set_scores(&qv, scorer);
            let docs_found: Vec<u32> = base.iter().map(|&(d, _)| d).collect();
            prop_assert_eq!(&docs_found, &expected);
            for &(_, s) in &base {
                prop_assert!(s.is_finite());
                prop_assert!(s >= 0.0);
            }
        }
    }

    /// Okapi scores never exceed the theoretical (k1+1)*idf*(k3+1) bound
    /// per term and are monotone in query weight.
    #[test]
    fn okapi_query_weight_monotone(docs in docs_strategy(), q in 0u8..12, w in 1u32..50) {
        let analyzer = Analyzer::new();
        let mut builder = IndexBuilder::new(analyzer.clone());
        for (i, doc) in docs.iter().enumerate() {
            builder.add_document(i as u32, &render(doc));
        }
        let index = builder.build();
        let term = analyzer.analyze_term(VOCAB[q as usize]).unwrap();
        let light = QueryVector::from_weights([(term.clone(), 1.0)]);
        let heavy = QueryVector::from_weights([(term.clone(), w as f64)]);
        let s_light = index.base_set_scores(&light, &Okapi::default());
        let s_heavy = index.base_set_scores(&heavy, &Okapi::default());
        for (&(d1, a), &(d2, b)) in s_light.iter().zip(&s_heavy) {
            prop_assert_eq!(d1, d2);
            prop_assert!(b >= a - 1e-12, "weight {w}: {b} < {a}");
        }
    }
}

proptest! {
    /// The Porter stemmer never panics, never returns an empty string for
    /// non-empty input, never grows a word by more than one character
    /// (the only lengthening rules append a single 'e'), and lowercase
    /// ASCII stays lowercase ASCII.
    #[test]
    fn stemmer_total_and_bounded(word in "[a-z]{1,24}") {
        let out = orex_ir::stem(&word);
        prop_assert!(!out.is_empty());
        prop_assert!(out.len() <= word.len() + 1, "{word} -> {out}");
        prop_assert!(out.bytes().all(|b| b.is_ascii_lowercase()));
    }

    /// Arbitrary (possibly non-ASCII) strings never panic the stemmer.
    #[test]
    fn stemmer_handles_arbitrary_strings(word in ".{0,40}") {
        let _ = orex_ir::stem(&word);
    }

    /// Analyzer output terms are always non-empty, lowercase, and free of
    /// stopwords.
    #[test]
    fn analyzer_output_is_clean(text in ".{0,200}") {
        let a = orex_ir::Analyzer::new();
        let stop = orex_ir::Stopwords::standard();
        let _ = &stop;
        for term in a.analyze(&text) {
            prop_assert!(!term.is_empty());
            // Note: stopword filtering happens *before* stemming (the
            // standard pipeline order), so a stem may coincide with a
            // stopword ("ise" -> "is") — that is correct behavior, not
            // asserted against.
            // Lowercasing is idempotent on the output (some exotic
            // codepoints, e.g. mathematical capitals, have no lowercase
            // mapping at all — those pass through unchanged).
            prop_assert_eq!(term.to_lowercase(), term);
        }
    }
}
