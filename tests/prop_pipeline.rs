//! Cross-crate property tests: random small graphs + random queries must
//! uphold the paper's structural invariants end to end.

use orex::authority::{object_rank2, power_iteration, BaseSet, RankParams, TransitionMatrix};
use orex::explain::{ExplainParams, Explanation};
use orex::graph::{
    DataGraph, DataGraphBuilder, NodeId, SchemaGraph, TransferGraph, TransferRates, TransferTypeId,
};
use orex::ir::{Analyzer, IndexBuilder, InvertedIndex, Okapi, QueryVector};
use orex::reformulate::{edge_type_flows, structure_reformulate, StructureParams};
use proptest::prelude::*;

/// Builds a random two-type labeled graph with text drawn from a tiny
/// vocabulary (so base sets are non-trivial).
fn random_setup(
    papers: usize,
    cite_pairs: &[(u32, u32)],
    title_seed: &[u8],
) -> (DataGraph, TransferRates, TransferGraph, InvertedIndex) {
    const WORDS: [&str; 6] = ["olap", "cube", "mining", "graph", "stream", "join"];
    let mut schema = SchemaGraph::new();
    let p = schema.add_node_type("Paper").unwrap();
    let cites = schema.add_edge_type(p, p, "cites").unwrap();
    let mut b = DataGraphBuilder::new(schema);
    let nodes: Vec<_> = (0..papers)
        .map(|i| {
            let w1 = WORDS[title_seed[i % title_seed.len()] as usize % WORDS.len()];
            let w2 = WORDS[(i * 7 + 3) % WORDS.len()];
            let title = format!("{w1} {w2} paper {i}");
            b.add_node_with(p, &[("Title", title.as_str())]).unwrap()
        })
        .collect();
    for &(s, t) in cite_pairs {
        let s = s as usize % papers;
        let t = t as usize % papers;
        if s != t {
            b.add_edge(nodes[s], nodes[t], cites).unwrap();
        }
    }
    let g = b.freeze();
    let mut rates = TransferRates::zero(g.schema());
    rates.set(TransferTypeId::forward(cites), 0.7).unwrap();
    rates.set(TransferTypeId::backward(cites), 0.1).unwrap();
    let tg = TransferGraph::build(&g);
    let mut ib = IndexBuilder::new(Analyzer::new());
    for node in g.nodes() {
        ib.add_document(node.raw(), &g.node_text(node));
    }
    let idx = ib.build();
    (g, rates, tg, idx)
}

fn tight() -> RankParams {
    RankParams {
        epsilon: 1e-13,
        max_iterations: 5000,
        threads: 1,
        ..RankParams::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ObjectRank2 scores are a sub-probability vector and the ranking is
    /// invariant to warm starts.
    #[test]
    fn objectrank2_invariants(
        papers in 4usize..24,
        cite_pairs in proptest::collection::vec((0u32..40, 0u32..40), 1..80),
        title_seed in proptest::collection::vec(0u8..6, 1..8),
    ) {
        let (_, rates, tg, idx) = random_setup(papers, &cite_pairs, &title_seed);
        let m = TransitionMatrix::new(&tg, &rates);
        let q = QueryVector::from_weights([("olap", 1.0)]);
        let Ok(cold) = object_rank2(&m, &idx, &q, &Okapi::default(), &tight(), None) else {
            return Ok(()); // vocabulary roll produced no matching doc
        };
        let sum: f64 = cold.scores.iter().sum();
        prop_assert!(sum > 0.0 && sum <= 1.0 + 1e-9);
        prop_assert!(cold.scores.iter().all(|&s| s >= 0.0 && s.is_finite()));

        // Warm-start from a perturbed copy reaches the same fixpoint.
        let perturbed: Vec<f64> = cold.scores.iter().map(|&s| s * 0.9 + 1e-4).collect();
        let warm = object_rank2(&m, &idx, &q, &Okapi::default(), &tight(), Some(&perturbed)).unwrap();
        for (a, b) in cold.scores.iter().zip(&warm.scores) {
            prop_assert!((a - b).abs() < 1e-8, "fixpoint must be unique: {a} vs {b}");
        }
    }

    /// Explanation invariants: h factors in [0, 1], adjusted <= original
    /// flow, target inflow <= target score, every subgraph edge's alpha
    /// positive.
    #[test]
    fn explanation_invariants(
        papers in 4usize..20,
        cite_pairs in proptest::collection::vec((0u32..30, 0u32..30), 2..60),
        title_seed in proptest::collection::vec(0u8..6, 1..8),
        target_roll in 0usize..20,
    ) {
        let (_, rates, tg, idx) = random_setup(papers, &cite_pairs, &title_seed);
        let m = TransitionMatrix::new(&tg, &rates);
        let q = QueryVector::from_weights([("olap", 1.0)]);
        let Ok(result) = object_rank2(&m, &idx, &q, &Okapi::default(), &tight(), None) else {
            return Ok(());
        };
        let base = BaseSet::weighted(idx.base_set_scores(&q, &Okapi::default())).unwrap();
        let weights = tg.weights(&rates);
        let target = NodeId::from_usize(target_roll % papers);
        let Ok(expl) = Explanation::explain(
            &tg, &weights, &result.scores, &base, target,
            &ExplainParams { epsilon: 1e-12, ..ExplainParams::default() },
        ) else {
            return Ok(()); // unreachable target is a legal outcome
        };
        prop_assert!(expl.converged());
        for node in expl.nodes() {
            let h = expl.reduction_factor(node).unwrap();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&h), "h({node}) = {h}");
        }
        for e in expl.edges() {
            prop_assert!(e.alpha > 0.0);
            prop_assert!(e.adjusted_flow <= e.original_flow + 1e-12);
            prop_assert!(e.adjusted_flow >= 0.0);
        }
        let inflow = expl.target_inflow();
        let score = result.scores[target.index()];
        prop_assert!(inflow <= score + 1e-8, "inflow {inflow} > score {score}");
    }

    /// Structure reformulation always yields valid rates, for any flow
    /// vector and any C_f.
    #[test]
    fn structure_reformulation_stays_valid(
        papers in 4usize..16,
        cite_pairs in proptest::collection::vec((0u32..20, 0u32..20), 2..40),
        title_seed in proptest::collection::vec(0u8..6, 1..8),
        cf_percent in 1u8..=100,
        target_roll in 0usize..16,
    ) {
        let (g, rates, tg, idx) = random_setup(papers, &cite_pairs, &title_seed);
        let m = TransitionMatrix::new(&tg, &rates);
        let q = QueryVector::from_weights([("olap", 1.0), ("cube", 0.5)]);
        let Ok(result) = object_rank2(&m, &idx, &q, &Okapi::default(), &tight(), None) else {
            return Ok(());
        };
        let base = BaseSet::weighted(idx.base_set_scores(&q, &Okapi::default())).unwrap();
        let weights = tg.weights(&rates);
        let target = NodeId::from_usize(target_roll % papers);
        let Ok(expl) = Explanation::explain(
            &tg, &weights, &result.scores, &base, target, &ExplainParams::default(),
        ) else {
            return Ok(());
        };
        let flows = edge_type_flows(&expl, &tg);
        let new = structure_reformulate(
            &rates,
            &flows,
            g.schema(),
            &StructureParams::unpruned(cf_percent as f64 / 100.0),
        );
        prop_assert!(new.validate(g.schema()).is_ok());
    }

    /// The power iteration over any validated rates contracts: residuals
    /// are eventually monotonically non-increasing.
    #[test]
    fn residual_contraction(
        papers in 3usize..16,
        cite_pairs in proptest::collection::vec((0u32..20, 0u32..20), 1..40),
    ) {
        let (_, rates, tg, _) = random_setup(papers, &cite_pairs, &[1]);
        let m = TransitionMatrix::new(&tg, &rates);
        let base = BaseSet::global(papers).unwrap();
        let res = power_iteration(&m, &base, &tight(), None);
        prop_assert!(res.converged);
        // Skip the first couple of transient steps.
        for w in res.residuals.windows(2).skip(2) {
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-9), "{:?}", res.residuals);
        }
    }
}
