//! End-to-end integration tests across crates: generated dataset ->
//! system -> query -> explanation -> feedback -> reformulated query,
//! checking the cross-crate invariants the paper's equations impose.

use orex::authority::BaseSet;
use orex::core::{ObjectRankSystem, QuerySession, SystemConfig};
use orex::datagen::{generate_dblp, DblpConfig, Preset, TextConfig};
use orex::explain::to_text;
use orex::ir::Query;
use orex::reformulate::ReformulateParams;

fn system() -> ObjectRankSystem {
    let d = generate_dblp(
        "e2e",
        &DblpConfig {
            papers: 800,
            authors: 300,
            conferences: 6,
            years_per_conference: 5,
            text: TextConfig {
                vocab_size: 1500,
                topics: 10,
                ..TextConfig::default()
            },
            ..DblpConfig::default()
        },
    );
    ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default())
}

#[test]
fn scores_are_probability_like() {
    let sys = system();
    let session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
    let sum: f64 = session.scores().iter().sum();
    assert!(sum > 0.0 && sum <= 1.0 + 1e-6, "score mass {sum}");
    assert!(session.scores().iter().all(|&s| s >= 0.0 && s.is_finite()));
}

#[test]
fn explanation_accounts_for_target_score() {
    // For a target outside the base set, its converged score is exactly
    // its explained inflow (with an unbounded radius): with radius L the
    // explained inflow is a lower bound that should still cover most of
    // the score mass for well-connected targets. The identity only holds
    // at a tight fixpoint, so this test converges far past the paper's
    // operational 0.002 threshold.
    let d = generate_dblp(
        "e2e-tight",
        &DblpConfig {
            papers: 800,
            authors: 300,
            conferences: 6,
            years_per_conference: 5,
            text: TextConfig {
                vocab_size: 1500,
                topics: 10,
                ..TextConfig::default()
            },
            ..DblpConfig::default()
        },
    );
    let mut config = SystemConfig::default();
    config.rank.epsilon = 1e-12;
    config.rank.max_iterations = 2000;
    let sys = ObjectRankSystem::new(d.graph, d.ground_truth, config);
    let session = QuerySession::start(&sys, &Query::parse("mining")).unwrap();
    let analyzer = sys.index().analyzer();
    let term = analyzer.analyze_term("mining").unwrap();
    let tid = sys.index().term_id(&term).unwrap();
    let top = session.top_k(20);
    let outside = top
        .iter()
        .find(|r| sys.index().tf(r.node.raw(), tid) == 0)
        .expect("some top result lacks the keyword");
    let expl = session.explain(outside.node).unwrap();
    let inflow = expl.target_inflow();
    let score = session.scores()[outside.node.index()];
    assert!(inflow > 0.0);
    assert!(
        inflow <= score + 1e-9,
        "explained inflow {inflow} cannot exceed the score {score}"
    );
    assert!(
        inflow > 0.2 * score,
        "radius-3 explanation should cover a meaningful share: {inflow} of {score}"
    );
}

#[test]
fn feedback_improves_rates_similarity_to_ground_truth() {
    let d = generate_dblp(
        "train",
        &DblpConfig {
            papers: 800,
            authors: 300,
            conferences: 6,
            years_per_conference: 5,
            ..DblpConfig::default()
        },
    );
    let gt = d.ground_truth.clone();
    let sys = ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default());
    // Ground-truth session defines what "relevant" means.
    let query = Query::parse("data");
    let gt_session = QuerySession::start(&sys, &query).unwrap();
    let relevant: Vec<_> = gt_session.top_k(5).iter().map(|r| r.node).collect();

    // Trainee starts from rescaled-uniform rates.
    let start = orex::graph::TransferRates::normalized_uniform(sys.graph().schema(), 0.3);
    let before = start.cosine_similarity(&gt);
    let mut session = QuerySession::start_with(&sys, &query, start).unwrap();
    for _ in 0..3 {
        let _ = session.feedback_with(&relevant, &ReformulateParams::structure_only(0.5));
    }
    let after = session.rates().cosine_similarity(&gt);
    assert!(
        after > before,
        "training should approach ground truth: {before} -> {after}"
    );
}

#[test]
fn reformulated_rates_always_valid_across_rounds() {
    let sys = system();
    let mut session = QuerySession::start(&sys, &Query::parse("query")).unwrap();
    for _ in 0..4 {
        let top = session.top_k(3);
        if session.feedback(&[top[0].node]).is_ok() {
            session.rates().validate(sys.graph().schema()).unwrap();
        }
    }
}

#[test]
fn rendering_works_on_generated_data() {
    let sys = system();
    let session = QuerySession::start(&sys, &Query::parse("index")).unwrap();
    let top = session.top_k(3);
    let expl = session.explain(top[0].node).unwrap();
    let text = to_text(&expl, sys.graph(), 2);
    assert!(text.contains("Why"));
    let dot = orex::explain::to_dot(&expl, sys.graph());
    assert!(dot.starts_with("digraph"));
}

#[test]
fn bio_pipeline_end_to_end() {
    let d = Preset::Ds7Cancer.generate(0.03);
    let sys = ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default());
    let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
    let top = session.top_k(10);
    assert!(!top.is_empty());
    // Authority flows across source boundaries: some non-PubMed entity
    // appears despite keywords living mostly in abstracts.
    let stats = session.feedback(&[top[0].node]).unwrap();
    assert!(stats.rank_converged);
}

#[test]
fn base_set_matches_manual_ir_computation() {
    let sys = system();
    let q = orex::ir::QueryVector::initial(&Query::parse("graph data"), sys.index().analyzer());
    let pairs = sys.index().base_set_scores(&q, &sys.config().okapi);
    let base = BaseSet::weighted(pairs.clone()).unwrap();
    // Probabilities proportional to IR scores.
    let total: f64 = pairs.iter().map(|&(_, s)| s).sum();
    for &(doc, s) in pairs.iter().take(50) {
        assert!((base.probability(doc) - s / total).abs() < 1e-12);
    }
}

#[test]
fn sessions_are_deterministic() {
    let sys = system();
    let run = || {
        let mut s = QuerySession::start(&sys, &Query::parse("data")).unwrap();
        let top = s.top_k(5);
        s.feedback(&[top[0].node]).unwrap();
        s.top_k(10)
            .iter()
            .map(|r| (r.node.raw(), r.score))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a.len(), b.len());
    for ((n1, s1), (n2, s2)) in a.iter().zip(&b) {
        assert_eq!(n1, n2);
        assert_eq!(s1, s2);
    }
}

#[test]
fn reformulation_delta_explains_the_change() {
    // Explain the same target before and after a structure-only feedback
    // round; the delta shows how reformulation redistributed authority.
    let sys = system();
    let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
    let top = session.top_k(5);
    let target = top[0].node;
    let before = session.explain(target).unwrap();
    session
        .feedback_with(&[target], &ReformulateParams::structure_only(0.5))
        .unwrap();
    let after = session.explain(target).unwrap();
    let delta = orex::explain::diff(&before, &after, 10).unwrap();
    assert_eq!(delta.target, target);
    // The rates changed, so some edge flow must have changed.
    assert!(
        !delta.edge_changes.is_empty() || (delta.inflow_after - delta.inflow_before).abs() > 0.0,
        "a reformulation round should move some flow"
    );
    let text = orex::explain::delta_to_text(&delta, sys.graph());
    assert!(text.contains("Reformulation effect"));
}

#[test]
fn meta_path_summary_explains_dblp_results() {
    let sys = system();
    let session = QuerySession::start(&sys, &Query::parse("mining")).unwrap();
    let top = session.top_k(5);
    let summary = session.explain_summary(top[0].node, 8).unwrap();
    assert!(!summary.is_empty());
    // Signatures must be valid schema-level paths over DBLP labels.
    for m in &summary {
        assert!(
            m.signature.starts_with("Paper")
                || m.signature.starts_with("Year")
                || m.signature.starts_with("Author")
                || m.signature.starts_with("Conference"),
            "{}",
            m.signature
        );
        assert!(m.total_flow > 0.0);
    }
}

#[test]
fn topk_early_termination_agrees_on_pipeline_queries() {
    let sys = system();
    let qv = orex::ir::QueryVector::initial(&Query::parse("data"), sys.index().analyzer());
    let matrix = orex::authority::TransitionMatrix::new(sys.transfer(), sys.initial_rates());
    let base = BaseSet::weighted(sys.index().base_set_scores(&qv, &sys.config().okapi)).unwrap();
    let mut params = sys.config().rank;
    params.epsilon = 1e-9;
    params.max_iterations = 500;
    let full = orex::authority::power_iteration(&matrix, &base, &params, None);
    let early = orex::authority::power_iteration_topk(
        &matrix,
        &base,
        &params,
        &orex::authority::TopKParams::default(),
        None,
    );
    let full_top: Vec<u32> = orex::authority::top_k(&full.scores, 10, 0.0)
        .iter()
        .map(|r| r.node)
        .collect();
    let early_top: Vec<u32> = early.top.iter().map(|r| r.node).collect();
    assert_eq!(
        full_top, early_top,
        "early termination must not change the top-10"
    );
    assert!(early.result.iterations <= full.iterations);
}
