//! Integration tests for the persistence path: a trained system survives
//! a save/load cycle with its ranking intact, and the text format carries
//! user data into the full pipeline.

use orex::datagen::{generate_dblp, DblpConfig, TextConfig};
use orex::ir::Query;
use orex::{ObjectRankSystem, QuerySession, SystemConfig};
use orex_store::{
    decode_graph, decode_rates, encode_graph, encode_rates, parse_text, to_text, RankCache,
};

fn dataset() -> orex::datagen::Dataset {
    generate_dblp(
        "persist",
        &DblpConfig {
            papers: 400,
            authors: 160,
            conferences: 5,
            years_per_conference: 4,
            text: TextConfig {
                vocab_size: 900,
                topics: 6,
                ..TextConfig::default()
            },
            ..DblpConfig::default()
        },
    )
}

#[test]
fn trained_system_survives_snapshot_roundtrip() {
    let d = dataset();
    let gt = d.ground_truth.clone();
    let sys = ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default());

    // Train the rates for two rounds (structure-only, so the query
    // vector itself stays reconstructible from its keywords — content
    // expansion would add weighted terms that plain keywords cannot
    // carry).
    let mut session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
    for _ in 0..2 {
        let top = session.top_k(2);
        let nodes: Vec<_> = top.iter().map(|r| r.node).collect();
        session
            .feedback_with(
                &nodes,
                &orex::reformulate::ReformulateParams::structure_only(0.5),
            )
            .unwrap();
    }
    let trained_rates = session.rates().clone();
    let expected: Vec<(u32, f64)> = session
        .top_k(10)
        .iter()
        .map(|r| (r.node.raw(), r.score))
        .collect();

    // Snapshot graph + rates, reload into a fresh system.
    let graph2 = decode_graph(encode_graph(sys.graph())).unwrap();
    let rates2 = decode_rates(encode_rates(&trained_rates), graph2.schema()).unwrap();
    assert_eq!(rates2, trained_rates);
    let sys2 = ObjectRankSystem::new(graph2, rates2, SystemConfig::default());
    // Re-running the *expanded* query: reconstruct it from the session.
    let keywords: Vec<String> = session
        .query_vector()
        .iter()
        .map(|(t, _)| t.to_string())
        .collect();
    let session2 = QuerySession::start(&sys2, &Query::new(keywords)).unwrap();
    let got: Vec<(u32, f64)> = session2
        .top_k(10)
        .iter()
        .map(|r| (r.node.raw(), r.score))
        .collect();
    // Same nodes in the same order. (Scores match to convergence slack:
    // both sessions converge the same query under the same rates, but
    // warm-start seeds differ — sys2's global rank uses the trained
    // rates.)
    let nodes_a: Vec<u32> = expected.iter().map(|&(n, _)| n).collect();
    let nodes_b: Vec<u32> = got.iter().map(|&(n, _)| n).collect();
    assert_eq!(nodes_a, nodes_b);
    let _ = gt;
}

#[test]
fn rank_cache_accelerates_fresh_system() {
    let d = dataset();
    let sys = ObjectRankSystem::new(d.graph, d.ground_truth, SystemConfig::default());
    let matrix = orex::authority::TransitionMatrix::new(sys.transfer(), sys.initial_rates());
    let terms: Vec<String> = ["data", "queri", "graph"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let params = orex::authority::RankParams {
        epsilon: 1e-9,
        max_iterations: 500,
        ..sys.config().rank
    };
    let cache = RankCache::precompute(
        &matrix,
        sys.index(),
        &orex::ir::Okapi::default(),
        &terms,
        &params,
    );
    // Roundtrip the cache through bytes.
    let cache = RankCache::decode(cache.encode()).unwrap();
    let qv = orex::ir::QueryVector::initial(&Query::parse("data graph"), sys.index().analyzer());
    let seed = cache.seed_for_query(&qv).unwrap();
    let cold = orex::authority::object_rank2(
        &matrix,
        sys.index(),
        &qv,
        &orex::ir::Okapi::default(),
        &params,
        None,
    )
    .unwrap();
    let warm = orex::authority::object_rank2(
        &matrix,
        sys.index(),
        &qv,
        &orex::ir::Okapi::default(),
        &params,
        Some(&seed),
    )
    .unwrap();
    assert!(warm.iterations < cold.iterations);
}

#[test]
fn text_format_feeds_the_full_pipeline() {
    // Export a generated graph to text, re-import, and query it.
    let d = dataset();
    let text = to_text(&d.graph);
    let graph = parse_text(&text).unwrap();
    assert_eq!(graph.node_count(), d.graph.node_count());
    assert_eq!(graph.edge_count(), d.graph.edge_count());
    let sys = ObjectRankSystem::new(graph, d.ground_truth, SystemConfig::default());
    let session = QuerySession::start(&sys, &Query::parse("data")).unwrap();
    assert!(!session.top_k(5).is_empty());
}
