//! Integration test reconstructing the paper's running example: the DBLP
//! subset of Figure 1 with the authority transfer rates of Figure 3, the
//! "OLAP" query of Section 1, the authority flows of Figure 6 and the
//! explaining subgraph of Figure 9.

use orex::authority::{object_rank2, top_k, TransitionMatrix};
use orex::explain::{top_paths, ExplainParams, Explanation};
use orex::graph::{
    DataGraph, DataGraphBuilder, NodeId, SchemaGraph, TransferGraph, TransferRates, TransferTypeId,
};
use orex::ir::{Analyzer, IndexBuilder, InvertedIndex, Okapi, Query, QueryVector};
use orex::reformulate::{
    expansion_term_weights, reformulate, ContentParams, ReformulateParams, StructureParams,
};

/// Node indices following Figure 6's numbering: v1..v7 map to 0..6.
const V1_INDEX_SELECTION: u32 = 0;
const V2_ICDE: u32 = 1;
const V3_YEAR_1997: u32 = 2;
const V4_RANGE_QUERIES: u32 = 3;
const V5_MODELING: u32 = 4;
const V6_AGRAWAL: u32 = 5;
const V7_DATA_CUBE: u32 = 6;

struct Figure1 {
    graph: DataGraph,
    rates: TransferRates,
    transfer: TransferGraph,
    index: InvertedIndex,
}

fn figure1() -> Figure1 {
    let mut schema = SchemaGraph::new();
    let paper = schema.add_node_type("Paper").unwrap();
    let conf = schema.add_node_type("Conference").unwrap();
    let year = schema.add_node_type("Year").unwrap();
    let author = schema.add_node_type("Author").unwrap();
    let cites = schema.add_edge_type(paper, paper, "cites").unwrap();
    let by = schema.add_edge_type(paper, author, "by").unwrap();
    let has = schema.add_edge_type(conf, year, "has_instance").unwrap();
    let contains = schema.add_edge_type(year, paper, "contains").unwrap();

    let mut b = DataGraphBuilder::new(schema);
    let v1 = b
        .add_node_with(
            paper,
            &[
                ("Title", "Index Selection for OLAP."),
                ("Year", "ICDE 1997"),
            ],
        )
        .unwrap();
    let v2 = b.add_node_with(conf, &[("Name", "ICDE")]).unwrap();
    let v3 = b
        .add_node_with(
            year,
            &[
                ("Name", "ICDE"),
                ("Year", "1997"),
                ("Location", "Birmingham"),
            ],
        )
        .unwrap();
    let v4 = b
        .add_node_with(
            paper,
            &[
                ("Title", "Range Queries in OLAP Data Cubes."),
                ("Year", "SIGMOD 1997"),
            ],
        )
        .unwrap();
    let v5 = b
        .add_node_with(
            paper,
            &[
                ("Title", "Modeling Multidimensional Databases."),
                ("Year", "ICDE 1997"),
            ],
        )
        .unwrap();
    let v6 = b.add_node_with(author, &[("Name", "R. Agrawal")]).unwrap();
    let v7 = b
        .add_node_with(
            paper,
            &[
                (
                    "Title",
                    "Data Cube: A Relational Aggregation Operator Generalizing \
                     Group-By, Cross-Tab, and Sub-Total.",
                ),
                ("Year", "ICDE 1996"),
            ],
        )
        .unwrap();

    // Edges of Figure 1 / Figure 5.
    b.add_edge(v1, v7, cites).unwrap();
    b.add_edge(v2, v3, has).unwrap();
    b.add_edge(v3, v1, contains).unwrap();
    b.add_edge(v3, v5, contains).unwrap();
    b.add_edge(v4, v7, cites).unwrap();
    b.add_edge(v4, v5, cites).unwrap();
    b.add_edge(v5, v7, cites).unwrap();
    b.add_edge(v4, v6, by).unwrap();
    b.add_edge(v5, v6, by).unwrap();
    let graph = b.freeze();

    // Figure 3 rates: [PP, PPb, PA, AP, CY, YC, YP, PY].
    let mut rates = TransferRates::zero(graph.schema());
    rates.set(TransferTypeId::forward(cites), 0.7).unwrap();
    rates.set(TransferTypeId::backward(cites), 0.0).unwrap();
    rates.set(TransferTypeId::forward(by), 0.2).unwrap();
    rates.set(TransferTypeId::backward(by), 0.2).unwrap();
    rates.set(TransferTypeId::forward(has), 0.3).unwrap();
    rates.set(TransferTypeId::backward(has), 0.3).unwrap();
    rates.set(TransferTypeId::forward(contains), 0.3).unwrap();
    rates.set(TransferTypeId::backward(contains), 0.1).unwrap();
    rates.validate(graph.schema()).unwrap();

    let transfer = TransferGraph::build(&graph);
    let mut ib = IndexBuilder::new(Analyzer::new());
    for node in graph.nodes() {
        ib.add_document(node.raw(), &graph.node_text(node));
    }
    Figure1 {
        index: ib.build(),
        transfer,
        graph,
        rates,
    }
}

fn run_olap(f: &Figure1) -> (QueryVector, Vec<f64>, orex::authority::BaseSet) {
    let qv = QueryVector::initial(&Query::parse("OLAP"), f.index.analyzer());
    let matrix = TransitionMatrix::new(&f.transfer, &f.rates);
    let params = orex::authority::RankParams {
        epsilon: 1e-12,
        max_iterations: 2000,
        threads: 1,
        ..Default::default()
    };
    let result = object_rank2(&matrix, &f.index, &qv, &Okapi::default(), &params, None).unwrap();
    let base = orex::authority::BaseSet::weighted(f.index.base_set_scores(&qv, &Okapi::default()))
        .unwrap();
    (qv, result.scores, base)
}

#[test]
fn base_set_is_the_two_olap_papers() {
    let f = figure1();
    let (_, _, base) = run_olap(&f);
    let nodes: Vec<u32> = base.nodes().collect();
    assert_eq!(nodes, vec![V1_INDEX_SELECTION, V4_RANGE_QUERIES]);
}

#[test]
fn data_cube_ranks_top_without_containing_the_keyword() {
    // "Given the subgraph of Figure 1, the 'Data Cube' paper is ranked on
    // the top, even though it does not contain the keyword 'OLAP'."
    let f = figure1();
    let (_, scores, _) = run_olap(&f);
    let ranked = top_k(&scores, 7, 0.0);
    assert_eq!(ranked[0].node, V7_DATA_CUBE, "scores: {scores:?}");
    // The two base-set papers follow close behind (paper reports
    // r = [0.076, 0.002, 0.009, 0.076, 0.017, 0.025, 0.083]).
    assert!(scores[V7_DATA_CUBE as usize] > scores[V1_INDEX_SELECTION as usize]);
    assert!(scores[V1_INDEX_SELECTION as usize] > scores[V2_ICDE as usize]);
    assert!(scores[V4_RANGE_QUERIES as usize] > scores[V2_ICDE as usize]);
}

#[test]
fn score_ordering_matches_figure6() {
    // Figure 6's converged vector orders the nodes
    // v7 > v1 ≈ v4 > v6 > v5 > v3 > v2. The IR weighting perturbs the
    // v1/v4 tie; the rest of the order is structural.
    let f = figure1();
    let (_, scores, _) = run_olap(&f);
    let s = |v: u32| scores[v as usize];
    assert!(s(V7_DATA_CUBE) > s(V6_AGRAWAL));
    assert!(s(V6_AGRAWAL) > s(V3_YEAR_1997));
    assert!(s(V5_MODELING) > s(V3_YEAR_1997));
    assert!(s(V3_YEAR_1997) > s(V2_ICDE));
}

#[test]
fn explaining_subgraph_of_range_queries_excludes_data_cube() {
    // Example 1: "the 'Data Cube' paper is not in G_v^Q, since there is
    // no path from that paper to v4."
    let f = figure1();
    let (_, scores, base) = run_olap(&f);
    let weights = f.transfer.weights(&f.rates);
    let expl = Explanation::explain(
        &f.transfer,
        &weights,
        &scores,
        &base,
        NodeId::new(V4_RANGE_QUERIES),
        &ExplainParams::default(),
    )
    .unwrap();
    assert!(!expl.contains(NodeId::new(V7_DATA_CUBE)));
    // The target's reduction factor is pinned at 1: its incoming flows
    // are exactly the original ones.
    assert_eq!(
        expl.reduction_factor(NodeId::new(V4_RANGE_QUERIES)),
        Some(1.0)
    );
    for e in expl.in_edges(NodeId::new(V4_RANGE_QUERIES)) {
        assert!((e.adjusted_flow - e.original_flow).abs() < 1e-15);
    }
    // h factors of non-target nodes are strictly below 1 (flow leaks to
    // v7, which is outside the subgraph).
    for node in expl.nodes() {
        if node.raw() != V4_RANGE_QUERIES {
            let h = expl.reduction_factor(node).unwrap();
            assert!(h < 1.0, "h({node}) = {h}");
        }
    }
}

#[test]
fn explanation_paths_lead_from_base_set_to_target() {
    // Figure 9 includes v1's 4-hop path v1 -> v3 -> v5 -> v6 -> v4, so
    // the illustrative example uses a radius above the L = 3 the
    // performance experiments pick; radius 6 covers the whole subset.
    let f = figure1();
    let (_, scores, base) = run_olap(&f);
    let weights = f.transfer.weights(&f.rates);
    let expl = Explanation::explain(
        &f.transfer,
        &weights,
        &scores,
        &base,
        NodeId::new(V4_RANGE_QUERIES),
        &ExplainParams {
            radius: 6,
            ..ExplainParams::default()
        },
    )
    .unwrap();
    assert!(expl.contains(NodeId::new(V1_INDEX_SELECTION)));
    let paths = top_paths(&expl, 3);
    assert!(!paths.is_empty());
    for p in &paths {
        assert!(base.contains(p.nodes[0].raw()));
        assert_eq!(p.nodes.last().unwrap().raw(), V4_RANGE_QUERIES);
    }
}

#[test]
fn example2_expansion_terms_match_the_paper() {
    // Example 2: feedback object v4 ("Range Queries in OLAP Data Cubes"),
    // C_d = C_e = 0.5 — "the top-5 new terms are olap, cubes, range,
    // multidimensional and modeling" (we see their stems).
    let f = figure1();
    let (qv, scores, base) = run_olap(&f);
    let weights = f.transfer.weights(&f.rates);
    let expl = Explanation::explain(
        &f.transfer,
        &weights,
        &scores,
        &base,
        NodeId::new(V4_RANGE_QUERIES),
        &ExplainParams::default(),
    )
    .unwrap();
    let raw = expansion_term_weights(&expl, &f.index, &ContentParams::default());
    let top5: Vec<&str> = raw.iter().take(8).map(|(t, _)| t.as_str()).collect();
    for stem in ["olap", "cube", "rang"] {
        assert!(top5.contains(&stem), "{stem} missing from {top5:?}");
    }
    // The target's own terms outrank terms only found upstream.
    let weight_of = |t: &str| {
        raw.iter()
            .find(|(x, _)| x == t)
            .map(|&(_, w)| w)
            .unwrap_or(0.0)
    };
    assert!(weight_of("rang") > weight_of("multidimension"));
    assert!(weight_of("rang") > weight_of("model"));
    let _ = qv;
}

#[test]
fn example2_reformulated_query_boosts_olap() {
    let f = figure1();
    let (qv, scores, base) = run_olap(&f);
    let weights = f.transfer.weights(&f.rates);
    let expl = Explanation::explain(
        &f.transfer,
        &weights,
        &scores,
        &base,
        NodeId::new(V4_RANGE_QUERIES),
        &ExplainParams::default(),
    )
    .unwrap();
    let out = reformulate(
        &qv,
        &f.rates,
        f.graph.schema(),
        &f.transfer,
        &f.index,
        &[&expl],
        &ReformulateParams {
            content: ContentParams::default(),
            structure: StructureParams::unpruned(0.5),
        },
    );
    // "olap" was weight 1; expansion adds to it (the paper's Example 2
    // reformulated vector leads with olap at the highest weight).
    assert!(out.query.weight("olap") > 1.0);
    let max = out
        .query
        .iter()
        .map(|(_, w)| w)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(out.query.weight("olap"), max);
    // Structure side stays valid and keeps citation edges dominant
    // (Example 2 cont'd: PP stays the largest rate).
    out.rates.validate(f.graph.schema()).unwrap();
    let cites_fwd = out
        .rates
        .get(TransferTypeId::forward(orex::graph::EdgeTypeId::new(0)));
    for idx in 0..out.rates.len() {
        assert!(out.rates.as_slice()[idx] <= cites_fwd + 1e-12);
    }
}

#[test]
fn bidirectional_epsilon_keeps_data_cube_explainable() {
    // Section 4: "We assume all edges are bidirectional (arbitrarily
    // small flow rates can be assigned to direction of small importance)
    // to guarantee convergence" — with an epsilon back-rate, even the
    // Data Cube paper (a pure sink under Figure 3 rates) gets a
    // non-trivial explaining subgraph.
    let f = figure1();
    let mut rates = f.rates.clone();
    rates.ensure_bidirectional(1e-3);
    // Rescale: paper-type nodes now exceed 1.
    rates.rescale_outgoing(f.graph.schema());
    rates.validate(f.graph.schema()).unwrap();
    let qv = QueryVector::initial(&Query::parse("OLAP"), f.index.analyzer());
    let matrix = TransitionMatrix::new(&f.transfer, &rates);
    let params = orex::authority::RankParams {
        epsilon: 1e-12,
        max_iterations: 2000,
        threads: 1,
        ..Default::default()
    };
    let result = object_rank2(&matrix, &f.index, &qv, &Okapi::default(), &params, None).unwrap();
    let base = orex::authority::BaseSet::weighted(f.index.base_set_scores(&qv, &Okapi::default()))
        .unwrap();
    let weights = f.transfer.weights(&rates);
    let expl = Explanation::explain(
        &f.transfer,
        &weights,
        &result.scores,
        &base,
        NodeId::new(V7_DATA_CUBE),
        &ExplainParams::default(),
    )
    .unwrap();
    assert!(expl.converged());
    assert!(expl.edge_count() >= 3);
    assert!(expl.target_inflow() > 0.0);
}
