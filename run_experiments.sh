#!/bin/bash
# Regenerates every table and figure of the paper's evaluation.
# Quality experiments run at scale 0.5 of Table 1 (survey fidelity),
# performance experiments at full scale 1.0.
set -x
cargo run -p orex-bench --release --bin table1 -- --scale 1.0
cargo run -p orex-bench --release --bin fig10  -- --scale 0.5
cargo run -p orex-bench --release --bin fig11  -- --scale 0.5
cargo run -p orex-bench --release --bin fig12  -- --scale 0.5
cargo run -p orex-bench --release --bin fig13  -- --scale 0.5
cargo run -p orex-bench --release --bin table2 -- --scale 0.5
cargo run -p orex-bench --release --bin fig14_17 -- --scale 1.0 --queries 3
cargo run -p orex-bench --release --bin table3 -- --scale 0.25
cargo run -p orex-bench --release --bin ablation -- --scale 0.25
