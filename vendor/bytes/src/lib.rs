//! Minimal API-compatible stand-in for the `bytes` crate (1.x line).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `bytes` that `orex-store` uses: [`Bytes`] (a cheaply
//! cloneable, sliceable view over immutable bytes), [`BytesMut`] (a
//! growable buffer), and the [`Buf`]/[`BufMut`] cursor traits for
//! little-endian primitives.

#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable view over an immutable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Length of the view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view; the underlying buffer is shared, not copied.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&i) => i,
            Bound::Excluded(&i) => i + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&i) => i + 1,
            Bound::Excluded(&i) => i,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source: consuming reads of little-endian
/// primitives from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies bytes into `dst`, consuming them.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes `len` bytes into a fresh [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor: appends of little-endian primitives.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u32_le(7);
        w.put_u64_le(1 << 40);
        w.put_f32_le(0.5);
        w.put_f64_le(0.85);
        w.put_slice(b"abc");
        let mut b = w.freeze();
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_f32_le(), 0.5);
        assert_eq!(b.get_f64_le(), 0.85);
        let rest = b.copy_to_bytes(3);
        assert_eq!(rest.as_ref(), b"abc");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slicing_shares_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(s2.as_ref(), &[2, 3]);
        assert_eq!(b.len(), 5, "parent unchanged");
    }

    #[test]
    fn buf_for_slice_reads() {
        let data = 0xdead_beefu32.to_le_bytes();
        let mut s: &[u8] = &data;
        assert_eq!(s.get_u32_le(), 0xdead_beef);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let b = Bytes::from(vec![1u8, 2]);
        let _ = b.slice(..3);
    }
}
