//! Minimal API-compatible stand-in for the `serde_json` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `serde_json` that the bench harness uses: an owned
//! [`Value`] tree, an insertion-ordered [`Map`], the [`json!`] macro
//! (scalar, array, and flat-object forms), compact/pretty serialization,
//! and untyped deserialization via [`from_str`]. No `Serialize`/
//! `Deserialize` traits — values are built explicitly via `From`
//! conversions and inspected through the `as_*` accessors.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Number(N);

#[derive(Clone, Copy, Debug, PartialEq)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    fn write(&self, out: &mut String) {
        match self.0 {
            N::U(v) => {
                let _ = write!(out, "{v}");
            }
            N::I(v) => {
                let _ = write!(out, "{v}");
            }
            N::F(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            // JSON has no NaN/Infinity; serialize as null like a lossy
            // writer would.
            N::F(_) => out.push_str("null"),
        }
    }
}

/// An insertion-ordered string-keyed object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing any previous value under it.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Borrows the object map when this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the element vector when this value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string when this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean when this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Any number as an `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number(N::F(v))) => Some(*v),
            Value::Number(Number(N::U(v))) => Some(*v as f64),
            Value::Number(Number(N::I(v))) => Some(*v as f64),
            _ => None,
        }
    }

    /// The number as a `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number(N::U(v))) => Some(*v),
            Value::Number(Number(N::I(v))) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// True when this value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Mutably borrows the object map when this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => n.write(out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: Option<usize>) {
    if let Some(d) = depth {
        out.push('\n');
        for _ in 0..d {
            out.push_str("  ");
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number(N::U(v as u64)))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number(N::I(v as i64)))
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number(N::F(v)))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number(N::F(v as f64)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

/// Serialization/deserialization errors. The stub writer is infallible;
/// the parser reports the byte offset and a short description.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn at(offset: usize, msg: impl Into<String>) -> Self {
        Self {
            msg: format!("{} at byte {offset}", msg.into()),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document into an untyped [`Value`].
///
/// Supports the full JSON grammar (nested objects/arrays, escapes
/// including `\uXXXX` with surrogate pairs, scientific-notation numbers).
/// Trailing non-whitespace input is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at(p.pos, "trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(self.pos, format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::at(self.pos, format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(Error::at(self.pos, format!("unexpected '{}'", c as char))),
            None => Err(Error::at(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::at(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code)
                                    .ok_or_else(|| Error::at(self.pos, "bad surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::at(self.pos, "bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(Error::at(self.pos, "unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::at(self.pos, "invalid utf-8"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::at(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| Error::at(self.pos, "truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(Error::at(self.pos, "bad hex digit")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at(start, "invalid number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::U(u))));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number(N::I(i))));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number(N::F(f))))
            .map_err(|_| Error::at(start, "invalid number"))
    }
}

/// Serializes a value compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, None);
    Ok(out)
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, Some(0));
    Ok(out)
}

/// Builds a [`Value`] from a literal: `json!(null)`, `json!(expr)`,
/// `json!([e1, e2, ...])`, or a flat object `json!({ "k": expr, ... })`
/// (nest by passing an inner `json!` call as the expression).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_object_forms() {
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(3usize)).unwrap(), "3");
        assert_eq!(to_string(&json!(true)).unwrap(), "true");
        let v = json!({ "a": 1u32, "b": "x", "c": vec![1.5f64, 2.0] });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"x","c":[1.5,2]}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "rows": vec![json!({ "n": 1u32 })] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"rows\": [\n"), "{s}");
        assert!(s.ends_with("]\n}"), "{s}");
    }

    #[test]
    fn escaping() {
        let v = json!("quote \" backslash \\ newline \n");
        assert_eq!(
            to_string(&v).unwrap(),
            r#""quote \" backslash \\ newline \n""#
        );
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k".into(), json!(1u32)).is_none());
        assert!(m.insert("k".into(), json!(2u32)).is_some());
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&json!(2u32)));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), json!(true));
        assert_eq!(from_str("false").unwrap(), json!(false));
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-7").unwrap().as_f64(), Some(-7.0));
        assert_eq!(from_str("2.5e2").unwrap().as_f64(), Some(250.0));
        assert_eq!(from_str(r#""hi""#).unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parse_nested_and_roundtrip() {
        let v = json!({
            "name": "authority.power.iteration_us",
            "count": 12u64,
            "mean": 3.5,
            "tags": vec![json!("a"), json!("b")],
            "inner": json!({ "ok": true, "none": Value::Null }),
        });
        let text = to_string(&v).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(
            parsed.get("inner").and_then(|i| i.get("ok")),
            Some(&json!(true))
        );
    }

    #[test]
    fn parse_string_escapes() {
        let parsed = from_str(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\u{41}\u{1F600}"));
        // \u escapes, including a surrogate pair.
        let parsed = from_str("\"\\u0041\\uD83D\\uDE00\"").unwrap();
        assert_eq!(parsed.as_str(), Some("A\u{1F600}"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str(r#"{"k": }"#).is_err());
        assert!(from_str(r#""unterminated"#).is_err());
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let v = from_str(" { \"a\" : [ 1 , 2 ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_array).map(Vec::len), Some(2));
        assert!(v.get("b").and_then(Value::as_object).is_some());
    }
}
