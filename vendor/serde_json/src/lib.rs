//! Minimal API-compatible stand-in for the `serde_json` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `serde_json` that the bench harness uses: an owned
//! [`Value`] tree, an insertion-ordered [`Map`], the [`json!`] macro
//! (scalar, array, and flat-object forms), and compact/pretty
//! serialization. No deserialization and no `Serialize` trait — values
//! are built explicitly via `From` conversions.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Number(N);

#[derive(Clone, Copy, Debug, PartialEq)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    fn write(&self, out: &mut String) {
        match self.0 {
            N::U(v) => {
                let _ = write!(out, "{v}");
            }
            N::I(v) => {
                let _ = write!(out, "{v}");
            }
            N::F(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            // JSON has no NaN/Infinity; serialize as null like a lossy
            // writer would.
            N::F(_) => out.push_str("null"),
        }
    }
}

/// An insertion-ordered string-keyed object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing any previous value under it.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// An owned JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Borrows the object map when this value is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutably borrows the object map when this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => n.write(out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    item.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent.map(|d| d + 1));
                    write_escaped(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent.map(|d| d + 1));
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, depth: Option<usize>) {
    if let Some(d) = depth {
        out.push('\n');
        for _ in 0..d {
            out.push_str("  ");
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number(N::U(v as u64)))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number(N::I(v as i64)))
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number(N::F(v)))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number(N::F(v as f64)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Self {
        Value::Object(v)
    }
}

/// Serialization errors (the stub writer is infallible, but the signature
/// mirrors `serde_json` so call sites can `?`/`unwrap` identically).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes a value compactly.
pub fn to_string(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, None);
    Ok(out)
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    value.write(&mut out, Some(0));
    Ok(out)
}

/// Builds a [`Value`] from a literal: `json!(null)`, `json!(expr)`,
/// `json!([e1, e2, ...])`, or a flat object `json!({ "k": expr, ... })`
/// (nest by passing an inner `json!` call as the expression).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_object_forms() {
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(3usize)).unwrap(), "3");
        assert_eq!(to_string(&json!(true)).unwrap(), "true");
        let v = json!({ "a": 1u32, "b": "x", "c": vec![1.5f64, 2.0] });
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"x","c":[1.5,2]}"#);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({ "rows": vec![json!({ "n": 1u32 })] });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"rows\": [\n"), "{s}");
        assert!(s.ends_with("]\n}"), "{s}");
    }

    #[test]
    fn escaping() {
        let v = json!("quote \" backslash \\ newline \n");
        assert_eq!(
            to_string(&v).unwrap(),
            r#""quote \" backslash \\ newline \n""#
        );
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("k".into(), json!(1u32)).is_none());
        assert!(m.insert("k".into(), json!(2u32)).is_some());
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("k"), Some(&json!(2u32)));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&json!(f64::NAN)).unwrap(), "null");
    }
}
