//! Minimal API-compatible stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of `proptest` its test suites use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_flat_map`, [`Just`], range and
//! tuple strategies, `collection::vec`, character-class string patterns
//! (`"[a-z]{1,24}"`), [`any`] for primitives and [`sample::Index`],
//! [`prop_oneof!`], and [`ProptestConfig`].
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the sampled inputs unreduced, via the ordinary `assert!` message), and
//! sampling streams are deterministic per test name rather than driven by
//! an external seed file.

#![warn(missing_docs)]

/// Run configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic test RNGs.
pub mod test_runner {
    /// SplitMix64 generator seeded from the property's name, so every run
    /// of a given test explores the same cases.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from an arbitrary name (FNV-1a of the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut hash: u64 = 0xcbf29ce484222325;
            for &b in name.as_bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100000001b3);
            }
            Self(hash)
        }

        /// Next pseudo-random word.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        ///
        /// # Panics
        /// Panics when `n` is zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Failure value a property body may return (`return Ok(())` /
/// `Err(...)`), mirroring upstream's `TestCaseError`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// A generator of random values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// the result (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Character-class patterns: a `&'static str` of the shape
/// `"[class]{lo,hi}"` is a strategy over strings of `lo..=hi` characters
/// drawn from the class (literal characters and `a-z` style ranges).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self).unwrap_or_else(|| {
            panic!("unsupported string pattern {self:?} (expected \"[class]{{lo,hi}}\")")
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    // `.` matches any character; sample printable ASCII plus a few
    // multibyte characters so multi-byte handling still gets exercised.
    let (class, counts) = if let Some(counts) = pattern.strip_prefix('.') {
        (".", counts)
    } else {
        let rest = pattern.strip_prefix('[')?;
        rest.split_once(']')?
    };
    let counts = counts.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    if lo > hi {
        return None;
    }
    if class == "." {
        let mut chars: Vec<char> = (' '..='~').collect();
        chars.extend(['ä', 'ö', 'ü', 'ß', '文', '字', '\t']);
        return Some((chars, lo, hi));
    }
    let mut chars: Vec<char> = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut ahead = it.clone();
            ahead.next(); // consume '-'
            if let Some(&end) = ahead.peek() {
                it = ahead;
                it.next(); // consume range end
                for code in (c as u32)..=(end as u32) {
                    chars.extend(char::from_u32(code));
                }
                continue;
            }
        }
        chars.push(c);
    }
    (!chars.is_empty()).then_some((chars, lo, hi))
}

/// Strategies for collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` strategy: length uniform in `size`, elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Value-sampling helpers.
pub mod sample {
    /// An arbitrary index, resolved against a concrete collection length
    /// via [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolves to `[0, len)`.
        ///
        /// # Panics
        /// Panics when `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        sample::Index(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// A strategy over all values of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// A uniform choice between type-erased strategies (see [`prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds a union; used by the [`prop_oneof!`] macro.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// The common imports; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests: ordinary `#[test]` functions whose arguments
/// are sampled from strategies for `ProptestConfig::cases` rounds.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;
     $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                    // Bodies may early-exit with `return Ok(())`, as in
                    // upstream proptest where they run inside a
                    // Result-returning closure.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("property case rejected: {e:?}");
                    }
                }
            }
        )*
    };
}

/// Asserts a property-test condition (no shrinking: panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// A uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("t1");
        let s = (1usize..5, 0u32..10);
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!(b < 10);
        }
    }

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = crate::test_runner::TestRng::from_name("t2");
        for _ in 0..100 {
            let w = "[a-c9]{2,4}".sample(&mut rng);
            assert!((2..=4).contains(&w.chars().count()), "{w}");
            assert!(w.chars().all(|c| "abc9".contains(c)), "{w}");
        }
    }

    #[test]
    fn vec_strategy_and_flat_map() {
        let mut rng = crate::test_runner::TestRng::from_name("t3");
        let s = (1usize..10)
            .prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n as u32, 0..20)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut rng);
            assert!(v.len() < 20);
            assert!(v.iter().all(|&x| (x as usize) < n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple args, trailing comma.
        #[test]
        fn macro_samples_args(
            (a, b) in (0u8..5, 0u8..5),
            idx in any::<prop::sample::Index>(),
            choice in prop_oneof![Just(1u8), (2u8..4).prop_map(|x| x)],
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(idx.index(3) < 3);
            prop_assert!((1..4).contains(&choice));
            prop_assert_eq!(idx.index(1), 0);
        }
    }
}
