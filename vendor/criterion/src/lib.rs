//! Minimal API-compatible stand-in for the `criterion` crate (0.5 line).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `criterion` its benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size`/`throughput`/`bench_function`/
//! `bench_with_input`/`finish`, [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Each benchmark runs a warm-up pass plus `sample_size` timed
//! passes and prints the mean wall-clock time per iteration — no
//! statistics, outlier analysis, or report output.

#![warn(missing_docs)]

use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// A benchmark identifier of the form `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

impl From<&String> for BenchmarkId {
    fn from(id: &String) -> Self {
        Self { id: id.clone() }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Number of timed passes per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing).
    pub fn finish(&mut self) {}

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // Warm-up pass, untimed.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let total: f64 = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len().max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  ({:.1} MiB/s)", n as f64 / mean / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<32} {:>12}{}",
            self.name,
            id,
            format_seconds(mean),
            rate
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<f64>,
}

impl Bencher {
    /// Times one pass of `routine` and records it as a sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
}

/// Prevents the optimizer from discarding a value (re-export of
/// `std::hint::black_box` for call sites importing it from criterion).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main()` running the given groups (benches use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Bytes(1024));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // Warm-up + 3 samples for the first benchmark.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("damping", 0.85);
        assert_eq!(id.id, "damping/0.85");
    }
}
