//! Minimal API-compatible stand-in for the `rand` crate (0.8 line).
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: a seedable [`rngs::StdRng`]
//! (xoshiro256++ behind a SplitMix64 seed expander), [`Rng::gen`] for
//! `f64`/`u64`/`u32`/`bool`, and [`Rng::gen_range`] over half-open and
//! inclusive integer/float ranges. The streams differ from upstream
//! `rand` — callers in this workspace only rely on determinism for a
//! fixed seed and reasonable statistical quality, not on upstream's
//! exact bit streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core random-number generation: a source of `u64` words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce with the standard distribution.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range arguments accepted by [`Rng::gen_range`]. Generic over the
/// output type (like upstream) so untyped literal ranges infer their type
/// from the call site, e.g. `let i: usize = rng.gen_range(0..n)`.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution
    /// (`f64` in `[0, 1)`, full-width integers, fair `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 seed expansion, the reference initialization for
            // the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
            let v = rng.gen_range(2u8..=4);
            assert!((2..=4).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }
}
